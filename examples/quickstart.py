"""Quickstart: evaluate the paper's PIM targets in a few lines.

Runs every PIM target identified by the paper (browser, TensorFlow
Mobile, and video kernels) on the three machine models -- CPU-Only,
PIM-Core, and PIM-Acc -- and prints the normalized energy and speedup
table (the data behind Figures 18-20), plus the headline averages.

    python examples/quickstart.py
"""

from repro import ExperimentRunner
from repro.analysis.headline import all_pim_targets


def main():
    runner = ExperimentRunner()
    result = runner.evaluate(all_pim_targets())

    header = "%-26s %-12s %8s %8s %9s %9s" % (
        "kernel", "workload", "E core", "E acc", "S core", "S acc"
    )
    print(header)
    print("-" * len(header))
    for row in result.rows():
        print(
            "%-26s %-12s %8.2f %8.2f %8.2fx %8.2fx"
            % (
                row["target"],
                row["workload"].split(":")[0],
                row["energy_pim_core"],
                row["energy_pim_acc"],
                row["speedup_pim_core"],
                row["speedup_pim_acc"],
            )
        )
    print("-" * len(header))
    print(
        "mean energy reduction: PIM-Core %.1f%% (paper 49.1%%), "
        "PIM-Acc %.1f%% (paper 55.4%%)"
        % (
            100 * result.mean_pim_core_energy_reduction,
            100 * result.mean_pim_acc_energy_reduction,
        )
    )
    print(
        "mean speedup:          PIM-Core %.2fx (paper 1.45x), "
        "PIM-Acc %.2fx (paper 1.54x)"
        % (result.mean_pim_core_speedup, result.mean_pim_acc_speedup)
    )


if __name__ == "__main__":
    main()
