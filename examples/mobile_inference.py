"""TensorFlow Mobile analysis (paper Section 5).

Part 1 runs a real quantized inference on a small CNN -- quantize,
gemmlowp-style pack, int GEMM, requantize -- and checks it against the
float path.  Part 2 characterizes the paper's four networks (Figures 6
and 7) and reproduces the Figure 19 GEMM-pipeline sweep.

    python examples/mobile_inference.py
"""

import numpy as np

from repro.core.workload import characterize
from repro.workloads.tensorflow import (
    ConvLayer,
    FcLayer,
    Network,
    all_models,
    conv2d_quantized,
    infer,
    network_functions,
)
from repro.workloads.tensorflow.targets import GemmPipelineModel


def functional_demo():
    print("== functional quantized inference ==")
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, size=(16, 16, 3)).astype(np.float32)
    w = rng.uniform(-1, 1, size=(3, 3, 3, 8)).astype(np.float32)
    out = conv2d_quantized(x, w, padding=1)
    print("quantized Conv2D: %r -> %r" % (x.shape, out.shape))

    tiny = Network(
        "tiny-cnn",
        (
            ConvLayer("c1", 16, 16, 3, 8, kernel=3, padding=1),
            ConvLayer("c2", 16, 16, 8, 16, kernel=3, padding=1),
            FcLayer("fc", 16 * 16 * 16, 10),
        ),
    )
    logits = infer(tiny, x)
    print("tiny CNN inference -> logits %r, argmax=%d" % (logits.shape, logits.argmax()))


def characterization():
    print("\n== inference energy/time breakdown (Figures 6-7) ==")
    for net in all_models():
        ch = characterize(net.name, network_functions(net))
        s = ch.energy_shares()
        t = ch.time_shares()
        print(
            "%-18s (%3d convs)  E: pack %4.1f%% quant %4.1f%% gemm %4.1f%% "
            "| T: pack+quant %4.1f%%"
            % (
                net.name,
                net.num_conv2d,
                100 * s["packing"],
                100 * s["quantization"],
                100 * s["conv2d_matmul"],
                100 * (t["packing"] + t["quantization"]),
            )
        )


def pipeline_sweep():
    print("\n== pack/quantize offload pipeline (Figure 19 right) ==")
    for point in GemmPipelineModel().sweep([1, 2, 4, 8, 16]):
        print(
            "%2d GEMMs: PIM-Core %.2fx, PIM-Acc %.2fx"
            % (point.num_gemms, point.pim_core_speedup, point.pim_acc_speedup)
        )


if __name__ == "__main__":
    functional_demo()
    characterization()
    pipeline_sweep()
