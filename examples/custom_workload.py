"""Evaluating your own kernel as a PIM target.

This is the adoption path for downstream users: describe a kernel's
operation counts and memory behaviour as a KernelProfile (analytically
or via the trace recorder + cache simulator), run it through the
Section 3.2 identification criteria, and compare the three machine
models.

The example kernel is an image histogram (a classic streaming reduction)
evaluated two ways: from an analytic profile, and from a real recorded
trace replayed through the cache simulator.

    python examples/custom_workload.py
"""

import numpy as np

from repro.core.offload import OffloadEngine
from repro.core.target import PimTarget, evaluate_candidate
from repro.sim.cache import CacheHierarchy
from repro.sim.profile import KernelProfile
from repro.sim.trace import AddressSpace, TraceRecorder

MB = 1024 * 1024


def histogram_kernel(image: np.ndarray, recorder: TraceRecorder, base: int):
    """A real (instrumented) kernel: 256-bin histogram of an 8-bit image."""
    hist = np.zeros(256, dtype=np.int64)
    row_bytes = image.shape[1]
    for y in range(image.shape[0]):
        recorder.read(base + y * row_bytes, row_bytes)
        counts = np.bincount(image[y], minlength=256)
        hist += counts
    return hist


def analytic_profile(pixels: float) -> KernelProfile:
    """The same kernel described analytically: one streaming pass, one
    table update per pixel (the 1 kB histogram stays in L1)."""
    return KernelProfile.streaming(
        name="histogram",
        bytes_read=pixels,
        bytes_written=0,
        ops_per_byte=1.0,
        instruction_overhead=0.2,
        simd_fraction=0.8,
    )


def main():
    # --- 1. run + trace the real kernel at a validation scale ----------
    rng = np.random.default_rng(0)
    image = rng.integers(0, 256, size=(2048, 4096), dtype=np.uint8)  # 8 MB
    recorder = TraceRecorder(granularity=64)
    space = AddressSpace()
    hist = histogram_kernel(image, recorder, space.alloc(image.nbytes))
    assert hist.sum() == image.size
    stats = CacheHierarchy().replay(recorder.trace())
    print(
        "traced kernel: %.1f MB image -> %.1f MB DRAM traffic (simulated)"
        % (image.nbytes / MB, stats.dram_bytes / MB)
    )

    # --- 2. describe it analytically and cross-check -------------------
    profile = analytic_profile(float(image.size))
    print(
        "analytic profile: %.1f MB DRAM traffic, MPKI %.0f"
        % (profile.dram_bytes / MB, profile.mpki)
    )
    assert abs(profile.dram_bytes - stats.dram_bytes) / stats.dram_bytes < 0.05

    # --- 3. evaluate as a PIM target ------------------------------------
    engine = OffloadEngine()
    # Reuse the tiling accelerator slot for the area check: a histogram
    # unit is no bigger than an in-memory tiling unit.
    target = PimTarget(
        "histogram", profile, accelerator_key="texture_tiling", workload="custom"
    )
    comparison = engine.compare(target)
    evaluation = evaluate_candidate(
        name="histogram",
        profile=profile,
        energy_share=1.0,  # standalone kernel
        movement_share_of_workload=comparison.cpu.energy.data_movement_fraction,
        movement_fraction_of_function=comparison.cpu.energy.data_movement_fraction,
        pim_speedup=comparison.pim_core_speedup,
        accelerator_key="texture_tiling",
    )
    print(
        "identification: candidate=%s, no-slowdown=%s, fits-area=%s "
        "-> PIM target: %s"
        % (
            evaluation.is_candidate,
            evaluation.no_performance_loss,
            evaluation.fits_area_budget,
            evaluation.is_pim_target,
        )
    )
    print(
        "PIM-Core: %.2fx speedup, %.1f%% energy reduction; "
        "PIM-Acc: %.2fx, %.1f%%"
        % (
            comparison.pim_core_speedup,
            100 * comparison.pim_core_energy_reduction,
            comparison.pim_acc_speedup,
            100 * comparison.pim_acc_energy_reduction,
        )
    )
    if not evaluation.is_pim_target and evaluation.is_candidate:
        print(
            "verdict: the table-update chain is too serial for the 1-wide "
            "PIM core (criterion 5 fails), but a fixed-function histogram "
            "accelerator would be a clear win -- exactly the kind of "
            "per-kernel answer the Section 3.2 pipeline produces."
        )


if __name__ == "__main__":
    main()
