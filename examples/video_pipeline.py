"""VP9 video pipeline (paper Sections 6-7).

Part 1 encodes and decodes a synthetic clip with the functional
VP9-class codec and reports bitrate/PSNR plus the decoder's measured
reference-traffic statistics.  Part 2 characterizes 4K software decode
and HD software encode (Figures 10/15), and part 3 evaluates the
hardware codec with PIM (Figure 21).

    python examples/video_pipeline.py
"""

from repro.core.workload import characterize
from repro.workloads.vp9 import (
    HardwareDecoderModel,
    HardwareEncoderModel,
    synthetic_video,
)
from repro.workloads.vp9.decoder import decode_video
from repro.workloads.vp9.encoder import encode_video
from repro.workloads.vp9.profiles import decoder_functions, encoder_functions


def functional_demo():
    print("== functional codec ==")
    clip = synthetic_video(96, 64, 8, motion=2.8, objects=4, seed=9)
    encoded, encoder = encode_video(clip, qstep=16)
    decoded, decoder = decode_video(encoded)
    raw_bytes = 96 * 64 * len(clip)
    coded_bytes = sum(len(f.data) for f in encoded)
    psnr = sum(a.psnr(b) for a, b in zip(clip, decoded)) / len(clip)
    print(
        "8 frames 96x64: %.1f kB raw -> %.2f kB coded (%.1fx), %.1f dB PSNR"
        % (raw_bytes / 1024, coded_bytes / 1024, raw_bytes / coded_bytes, psnr)
    )
    print(
        "decoder stats: %d inter MBs, %d sub-pel blocks, %.2f reference "
        "pixels fetched per decoded pixel"
        % (
            decoder.stats.inter_macroblocks,
            decoder.stats.subpel_blocks,
            decoder.stats.reference_pixels_per_pixel,
        )
    )


def software_characterization():
    print("\n== software codec energy (Figures 10 / 15) ==")
    dec = characterize("decode-4K", decoder_functions(3840, 2160, 100))
    s = dec.energy_shares()
    print(
        "4K decode: sub-pel %4.1f%%, other MC %4.1f%%, deblock %4.1f%% "
        "| movement %4.1f%%"
        % (
            100 * s["sub_pixel_interpolation"],
            100 * s["other_mc"],
            100 * s["deblocking_filter"],
            100 * dec.data_movement_fraction,
        )
    )
    enc = characterize("encode-HD", encoder_functions(1280, 720, 10))
    s = enc.energy_shares()
    print(
        "HD encode: ME %4.1f%%, deblock %4.1f%%, other %4.1f%% "
        "| movement %4.1f%%"
        % (
            100 * s["motion_estimation"],
            100 * s["deblocking_filter"],
            100 * s["other"],
            100 * enc.data_movement_fraction,
        )
    )


def hardware_pim():
    print("\n== hardware codec with PIM (Figure 21) ==")
    for label, model in (
        ("4K decoder", HardwareDecoderModel(3840, 2160)),
        ("HD encoder", HardwareEncoderModel(1280, 720)),
    ):
        print(label + ":")
        for name, compression, placement in model.configurations():
            e = model.energy(compression, placement)
            print("  %-28s %6.2f mJ/frame" % (name, e.total * 1e3))


if __name__ == "__main__":
    functional_demo()
    software_characterization()
    hardware_pim()
