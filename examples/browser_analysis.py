"""Chrome browser analysis: scrolling and tab switching (paper Section 4).

Part 1 exercises the functional kernels: tiles a real bitmap, blits with
alpha blending, and round-trips browser-like memory through the LZO-class
compressor.  Part 2 runs the characterization pipeline: per-page energy
breakdowns (Figure 1), the Google Docs component breakdown (Figure 2),
and the 50-tab ZRAM experiment (Figure 4).

    python examples/browser_analysis.py
"""

import numpy as np

from repro.core.workload import characterize
from repro.workloads.chrome import (
    PAGES,
    PAGE_ORDER,
    TabSwitchingSession,
    alpha_blend,
    compress,
    decompress,
    generate_web_memory,
    linear_to_tiled,
    tiled_to_linear,
)

GB = 1024.0**3
MB = 1024.0**2


def functional_demo():
    print("== functional kernels ==")
    rng = np.random.default_rng(0)
    bitmap = rng.integers(0, 256, size=(256, 256, 4), dtype=np.uint8)

    tiled = linear_to_tiled(bitmap)
    assert np.array_equal(tiled_to_linear(tiled), bitmap)
    print("texture tiling: 256x256 RGBA -> %d 4kB tiles (lossless)" % tiled.num_tiles)

    overlay = rng.integers(0, 256, size=(128, 128, 4), dtype=np.uint8)
    stats = alpha_blend(bitmap, overlay, 64, 64)
    print("color blitting: src-over blended %d pixels" % stats.pixels_blended)

    memory = generate_web_memory(256 * 1024, seed=1)
    compressed, cstats = compress(memory)
    restored, _ = decompress(compressed)
    assert restored == memory
    print(
        "LZO-class compression: %d kB -> %d kB (ratio %.2fx, %d matches)"
        % (len(memory) // 1024, len(compressed) // 1024, cstats.ratio, cstats.matches)
    )


def scrolling_analysis():
    print("\n== page scrolling (Figure 1) ==")
    for name in PAGE_ORDER:
        ch = characterize(name, PAGES[name].scrolling_functions())
        s = ch.energy_shares()
        print(
            "%-16s tiling %4.1f%%  blitting %4.1f%%  other %4.1f%%  "
            "| data movement %4.1f%%"
            % (
                name,
                100 * s["texture_tiling"],
                100 * s["color_blitting"],
                100 * s["other"],
                100 * ch.data_movement_fraction,
            )
        )


def tab_switching_analysis():
    print("\n== tab switching (Figure 4) ==")
    session = TabSwitchingSession()
    timeline = session.run()
    print(
        "50 tabs: %.1f GB swapped out (peak %.0f MB/s), %.1f GB swapped in "
        "(peak %.0f MB/s)"
        % (
            timeline.total_out / GB,
            timeline.peak_out_rate / MB,
            timeline.total_in / GB,
            timeline.peak_in_rate / MB,
        )
    )
    ch = characterize("tab_switching", session.workload_functions())
    print(
        "compression+decompression: %.1f%% of energy, %.1f%% of time "
        "(paper: 18.1%% / 14.2%%)"
        % (
            100 * (ch.energy_share("compression") + ch.energy_share("decompression")),
            100 * (ch.time_share("compression") + ch.time_share("decompression")),
        )
    )


if __name__ == "__main__":
    functional_demo()
    scrolling_analysis()
    tab_switching_analysis()
