"""Extensions beyond the paper's evaluation.

Four analyses built on the reproduction's models:

1. device battery life with PIM (the paper's motivation, quantified);
2. user-transparent file-system compression (Section 4.3.2's use case);
3. float32 vs quantized vs quantized+PIM inference (Section 5.2's
   narrative about quantization overheads);
4. a two-way video call (encoder + decoder simultaneously).

    python examples/extensions.py
"""

from repro.energy.battery import BatteryModel, UsageMix
from repro.workloads.chrome.fscompress import FsCompressionModel
from repro.workloads.chrome.zram import switch_latency
from repro.workloads.tensorflow.float_baseline import quantization_tradeoff
from repro.workloads.tensorflow.models import resnet_v2_152
from repro.analysis.scenarios import evaluate_all as evaluate_scenarios
from repro.workloads.vp9.conferencing import evaluate_conferencing

MB = 1024.0 * 1024.0


def battery():
    print("== battery life ==")
    model = BatteryModel()
    for name, mix in (
        ("default mix", UsageMix()),
        ("video-heavy", UsageMix(0.1, 0.8, 0.02, 0.08)),
    ):
        e = model.estimate(mix)
        print(
            "%-12s CPU-only %.1f h -> PIM %.1f h (+%.0f%%)"
            % (name, e.cpu_only_hours, e.pim_hours, 100 * e.improvement)
        )


def filesystem():
    print("\n== transparent FS compression (400 MB read / 100 MB write) ==")
    for r in FsCompressionModel().compare(400 * MB, 100 * MB):
        print(
            "%-18s %7.1f mJ  %6.1f ms  flash %4.0f MB"
            % (r.config.value, r.energy_j * 1e3, r.latency_s * 1e3,
               r.flash_bytes / MB)
        )


def tab_switch():
    print("\n== tab-switch latency (150 MB compressed tab) ==")
    latency = switch_latency()
    print(
        "CPU %.0f ms -> PIM-Acc %.0f ms (%.2fx faster back-to-interactive)"
        % (latency.cpu_only_s * 1e3, latency.pim_acc_s * 1e3,
           latency.pim_acc_speedup)
    )


def quantization():
    print("\n== quantization trade-off (ResNet-v2-152) ==")
    t = quantization_tradeoff(resnet_v2_152())
    print("float32 inference:        %7.2f J" % t.float_energy_j)
    print(
        "quantized (CPU overheads): %6.2f J  (-%.0f%% vs float)"
        % (t.quantized_energy_j, 100 * t.quantization_saving)
    )
    print(
        "quantized + PIM:           %6.2f J  (-%.0f%% vs float; PIM removes "
        "%.0f%% of the quantized run's energy)"
        % (t.quantized_pim_energy_j, 100 * t.pim_saving,
           100 * t.overhead_recovered)
    )


def conferencing():
    print("\n== two-way HD video call (1 second) ==")
    r = evaluate_conferencing()
    print(
        "CPU-only %.2f J -> PIM %.2f J (-%.0f%%); offloadable kernels carry "
        "%.0f%% of call energy; movement fraction %.0f%%"
        % (r.cpu_energy_j, r.pim_energy_j, 100 * r.energy_reduction,
           100 * r.offloadable_share, 100 * r.movement_fraction)
    )


def scenarios():
    print("\n== end-to-end scenarios ==")
    for r in evaluate_scenarios():
        print(
            "%-32s -%.0f%% energy, +%.0f battery min"
            % (r.scenario, 100 * r.energy_reduction, r.battery_minutes_saved())
        )


if __name__ == "__main__":
    battery()
    filesystem()
    tab_switch()
    quantization()
    conferencing()
    scenarios()
