"""Setup shim for environments without the `wheel` package (offline).

`pip install -e .` falls back to this legacy path when PEP 517 editable
builds are unavailable.
"""
from setuptools import setup

setup()
