"""Wire protocol for the sweep fleet: JSON over HTTP, pickles in base64.

A job envelope (``POST /run``) looks like::

    {"protocol": "repro-fleet-job/v1",
     "version":  "<code_version_hash()>",
     "init":     "<b64 pickle of (initializer, initargs) or null>",
     "fn":       "<b64 pickle of the callable>",
     "args":     "<b64 pickle of the positional args>",
     "kwargs":   "<b64 pickle of the keyword args>"}

Pickles travel by *reference* for module-level callables (the normal
pickle contract), so both ends must import the same code — the
``version`` field enforces that with a 409 instead of letting divergent
trees silently disagree on results.

Error taxonomy (all subclass :class:`FleetError`):

- :class:`FleetTransportError` — the HTTP request itself failed
  (connection refused, reset, socket timeout).  The peer may never have
  seen the request.
- :class:`FleetWorkerError` — the worker accepted a job and then died or
  reported a failure that doesn't unpickle to the original exception.
- :class:`FleetBusyError` — the worker's single execution slot is taken
  (HTTP 503); not a failure, the client waits and retries.
- :class:`FleetVersionError` — code-version handshake mismatch (HTTP 409).
- :class:`FleetNoWorkersError` — every worker in the manifest is dead.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import urllib.error
import urllib.request

PROTOCOL = "repro-fleet-job/v1"


class FleetError(RuntimeError):
    """Base class for fleet failures."""


class FleetTransportError(FleetError):
    """The HTTP request failed below the protocol (refused/reset/timeout)."""


class FleetWorkerError(FleetError):
    """A worker accepted a job and then failed or disappeared."""


class FleetBusyError(FleetError):
    """The worker's execution slot is occupied (HTTP 503)."""


class FleetVersionError(FleetError):
    """Client and worker run different model code (HTTP 409)."""


class FleetNoWorkersError(FleetError):
    """No live worker remains to dispatch to."""


def encode_obj(obj) -> str:
    """Pickle ``obj`` and wrap it in URL/JSON-safe base64 text."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_obj(text: str):
    """Inverse of :func:`encode_obj`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def http_json(method: str, url: str, payload=None, timeout: float = 10.0):
    """One JSON request/response round trip.

    Returns ``(status, document)``.  Non-2xx responses are returned, not
    raised — protocol-level errors (busy, version mismatch, unknown job)
    carry meaning the caller maps to the taxonomy above.  Only failures
    *below* the protocol raise, as :class:`FleetTransportError`.
    """
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            status = response.status
    except urllib.error.HTTPError as exc:
        # An HTTP status is still an answer from a live peer.
        body = exc.read()
        status = exc.code
    except (urllib.error.URLError, socket.timeout, ConnectionError, OSError) as exc:
        raise FleetTransportError("%s %s failed: %s" % (method, url, exc)) from exc
    try:
        document = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        document = {"error": repr(body[:200])}
    return status, document
