"""Wire protocol for the sweep fleet: JSON over HTTP, pickles in base64.

A job envelope (``POST /run``) looks like::

    {"protocol": "repro-fleet-job/v1",
     "version":  "<code_version_hash()>",
     "init":     "<b64 pickle of (initializer, initargs) or null>",
     "fn":       "<b64 pickle of the callable>",
     "args":     "<b64 pickle of the positional args>",
     "kwargs":   "<b64 pickle of the keyword args>"}

Pickles travel by *reference* for module-level callables (the normal
pickle contract), so both ends must import the same code — the
``version`` field enforces that with a 409 instead of letting divergent
trees silently disagree on results.

Error taxonomy (all subclass :class:`FleetError`):

- :class:`FleetTransportError` — the HTTP request itself failed
  (connection refused, reset, socket timeout).  The peer may never have
  seen the request.
- :class:`FleetWorkerError` — the worker accepted a job and then died or
  reported a failure that doesn't unpickle to the original exception.
- :class:`FleetBusyError` — the worker's single execution slot is taken
  (HTTP 503); not a failure, the client waits and retries.
- :class:`FleetVersionError` — code-version handshake mismatch (HTTP 409).
- :class:`FleetNoWorkersError` — every worker in the manifest is dead.

Authentication: when a fleet leaves the loopback, every request —
worker, gateway, and cache endpoints alike — is signed with a shared
secret (``REPRO_FLEET_SECRET`` or the manifest's ``secret_file``).  The
signature is an HMAC-SHA256 over ``method \\n selector \\n body`` in the
``X-Repro-Fleet-Auth`` header, verified constant-time; a configured
server answers unsigned or wrongly-signed requests with 401 and a
``fleet.*.unauthorized`` counter.  With no secret configured nothing is
signed or checked, so loopback fleets keep working unchanged.  The
scheme authenticates peers and protects request integrity; it is not
transport encryption — non-loopback fleets should still ride a trusted
network or tunnel.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import pickle
import socket
import urllib.error
import urllib.request
from base64 import b64decode, b64encode
from http.server import BaseHTTPRequestHandler
from urllib.parse import urlsplit

PROTOCOL = "repro-fleet-job/v1"

#: Environment variable that provides the fleet's shared secret.
FLEET_SECRET_ENV = "REPRO_FLEET_SECRET"

#: Header carrying the request signature.
AUTH_HEADER = "X-Repro-Fleet-Auth"


class FleetError(RuntimeError):
    """Base class for fleet failures."""


class FleetTransportError(FleetError):
    """The HTTP request failed below the protocol (refused/reset/timeout)."""


class FleetWorkerError(FleetError):
    """A worker accepted a job and then failed or disappeared."""


class FleetBusyError(FleetError):
    """The worker's execution slot is occupied (HTTP 503)."""


class FleetVersionError(FleetError):
    """Client and worker run different model code (HTTP 409)."""


class FleetNoWorkersError(FleetError):
    """No live worker remains to dispatch to."""


def encode_obj(obj) -> str:
    """Pickle ``obj`` and wrap it in URL/JSON-safe base64 text."""
    return b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_obj(text: str):
    """Inverse of :func:`encode_obj`."""
    return pickle.loads(b64decode(text.encode("ascii")))


def _selector(url: str) -> str:
    """The request-line selector (path + query) the peer will see."""
    split = urlsplit(url)
    selector = split.path or "/"
    if split.query:
        selector += "?" + split.query
    return selector


def sign_request(secret: str, method: str, selector: str, body: bytes) -> str:
    """HMAC-SHA256 signature over one request's identity and content."""
    message = b"\n".join(
        [method.encode("utf-8"), selector.encode("utf-8"), body or b""]
    )
    return hmac.new(secret.encode("utf-8"), message, hashlib.sha256).hexdigest()


def verify_signature(
    secret: str, method: str, selector: str, body: bytes, header: str
) -> bool:
    """Constant-time check of a request signature."""
    expected = sign_request(secret, method, selector, body)
    return hmac.compare_digest(expected, str(header))


def http_json(
    method: str,
    url: str,
    payload=None,
    timeout: float = 10.0,
    secret: str | None = None,
):
    """One JSON request/response round trip.

    Returns ``(status, document)``.  Non-2xx responses are returned, not
    raised — protocol-level errors (busy, version mismatch, unknown job)
    carry meaning the caller maps to the taxonomy above.  Only failures
    *below* the protocol raise, as :class:`FleetTransportError`.

    With a ``secret`` the request is signed (see module docstring); the
    server must share the same secret or it answers 401.
    """
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if secret:
        headers[AUTH_HEADER] = sign_request(
            secret, method, _selector(url), data or b""
        )
    request = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            status = response.status
    except urllib.error.HTTPError as exc:
        # An HTTP status is still an answer from a live peer.
        body = exc.read()
        status = exc.code
    except (urllib.error.URLError, socket.timeout, ConnectionError, OSError) as exc:
        raise FleetTransportError("%s %s failed: %s" % (method, url, exc)) from exc
    try:
        document = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        document = {"error": repr(body[:200])}
    return status, document


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing for the fleet's HTTP servers (worker + gateway).

    Owns the hostile-input surface so the route code doesn't have to:

    - JSON replies with correct ``Content-Length`` (keep-alive safe);
    - body reads guarded against absent, garbage, or absurd
      ``Content-Length`` headers (400, never a blocked ``read``);
    - a socket ``timeout`` so a peer that stalls mid-body can't pin a
      handler thread forever;
    - optional shared-secret verification (401 + ``*.unauthorized``
      counter) before any route logic runs, when ``server.secret`` is
      set;
    - a catch-all that turns an unexpected route exception into a JSON
      500 instead of a traceback-and-dropped-connection.

    Subclasses implement :meth:`route_get` / :meth:`route_post` and set
    ``counter_ns``.
    """

    protocol_version = "HTTP/1.1"
    timeout = 60.0
    counter_ns = "fleet.server."
    max_body_bytes = 256 * 1024 * 1024

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _count(self, event: str, n: float = 1) -> None:
        from repro.obs.recorder import get_recorder

        get_recorder().counters.add(self.counter_ns + event, n)

    def _reply(self, status: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        """The request body, or None when Content-Length is unusable."""
        raw = self.headers.get("Content-Length")
        try:
            length = int(raw) if raw is not None else 0
        except (TypeError, ValueError):
            return None
        if length < 0 or length > self.max_body_bytes:
            return None
        return self.rfile.read(length) if length else b""

    @staticmethod
    def _json(body: bytes):
        """Parse a JSON body; None for undecodable bytes."""
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    def _authorized(self, body: bytes) -> bool:
        secret = getattr(self.server, "secret", None)
        if not secret:
            return True
        header = self.headers.get(AUTH_HEADER)
        if header and verify_signature(
            secret, self.command, self.path, body, header
        ):
            return True
        self._count("unauthorized")
        self._reply(401, {"error": "unauthorized"})
        return False

    def do_GET(self):
        self._dispatch(self.route_get, b"")

    def do_POST(self):
        body = self._read_body()
        if body is None:
            self._reply(400, {"error": "missing or malformed Content-Length"})
            return
        self._dispatch(self.route_post, body)

    def _dispatch(self, route, body: bytes) -> None:
        try:
            if not self._authorized(body):
                return
            route(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # peer went away mid-reply; nobody left to tell
        except Exception:  # noqa: BLE001 - a request must never kill a thread
            self._count("internal_errors")
            try:
                self._reply(500, {"error": "internal error"})
            except OSError:
                pass

    # Routes: subclasses override.
    def route_get(self, body: bytes) -> None:
        self._reply(404, {"error": "unknown path %r" % self.path})

    def route_post(self, body: bytes) -> None:
        self._reply(404, {"error": "unknown path %r" % self.path})
