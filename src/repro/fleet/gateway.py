"""The fleet gateway: one front door for dispatch, results, and the cache.

Clients that pass a manifest with a ``gateway`` entry talk only to the
gateway; it owns the authoritative :class:`FleetDispatcher` (weighted
round-robin, eviction, revival) so every client shares one view of fleet
health, and it hosts the shared result cache — a
:class:`repro.core.store.SegmentStore` the fleet's
:class:`~repro.fleet.cache.RemoteMemoCache` clients read and write, so a
sweep finished by one client short-circuits the same sweep started by
another.

Endpoints:

- ``GET /health`` — gateway liveness.
- ``GET /status`` — live fleet picture: per-worker health + cache size.
- ``POST /run`` — forward a job envelope to the next worker.  Replies
  ``{"job", "worker"}`` on placement; 503 when every live worker's slot
  is busy (clients wait); 502 when no live worker remains (clients
  charge the attempt — the fleet-wide-outage path to quarantine); 409
  passes a worker's code-version rejection through.
- ``GET /result?worker=<url>&job=<id>`` — proxy a result poll, so
  clients never need direct worker connectivity.
- ``GET /cache/get?key=<k>`` / ``POST /cache/put`` — the shared memo
  cache (``key`` is :func:`repro.core.memo.memo_key` output; values are
  JSON documents).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.core.memo import default_cache_dir
from repro.core.store import SegmentStore
from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.manifest import FleetManifest
from repro.fleet.wire import (
    FleetNoWorkersError,
    FleetTransportError,
    http_json,
)
from repro.obs.recorder import get_recorder

CACHE_STORE_KEY = "repro-fleet-cache/v1"

_MISS = object()


def _count(event: str, n: float = 1) -> None:
    get_recorder().counters.add("fleet.gateway." + event, n)


class _GatewayHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, status: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    # -- routes --------------------------------------------------------
    def do_GET(self):
        server = self.server
        url = urlparse(self.path)
        query = parse_qs(url.query)
        if url.path == "/health":
            self._reply(
                200,
                {
                    "ok": True,
                    "role": "gateway",
                    "pid": os.getpid(),
                    "workers": len(server.manifest.workers),
                },
            )
            return
        if url.path == "/status":
            self._reply(200, server.status_document())
            return
        if url.path == "/result":
            worker = (query.get("worker") or [None])[0]
            job = (query.get("job") or [None])[0]
            self._proxy_result(worker, job)
            return
        if url.path == "/cache/get":
            key = (query.get("key") or [None])[0]
            if not key:
                self._reply(400, {"error": "missing 'key'"})
                return
            with server.cache_lock:
                value = server.cache.get(key, _MISS)
            if value is _MISS:
                _count("cache_misses")
                self._reply(404, {"error": "miss"})
                return
            _count("cache_hits")
            self._reply(200, {"value": value})
            return
        self._reply(404, {"error": "unknown path %r" % url.path})

    def do_POST(self):
        server = self.server
        url = urlparse(self.path)
        if url.path == "/run":
            envelope = self._read_json()
            if not isinstance(envelope, dict):
                self._reply(400, {"error": "malformed job envelope"})
                return
            self._forward_run(envelope)
            return
        if url.path == "/cache/put":
            doc = self._read_json()
            if not isinstance(doc, dict) or not doc.get("key"):
                self._reply(400, {"error": "need {'key', 'value'}"})
                return
            with server.cache_lock:
                server.cache.append(doc["key"], doc.get("value"))
                server.cache.flush()
            _count("cache_puts")
            self._reply(200, {"ok": True})
            return
        self._reply(404, {"error": "unknown path %r" % url.path})

    # -- forwarding ----------------------------------------------------
    def _forward_run(self, envelope: dict) -> None:
        server = self.server
        dispatcher = server.dispatcher
        timeout = server.manifest.request_timeout_s
        busy = set()
        while True:
            try:
                spec = dispatcher.pick()
            except FleetNoWorkersError:
                _count("no_workers")
                self._reply(502, {"error": "no live workers in the fleet"})
                return
            alive = {s.base_url for s in dispatcher.alive_workers()}
            if spec.base_url in busy:
                if busy >= alive:
                    _count("all_busy")
                    self._reply(503, {"error": "all workers busy"})
                    return
                continue
            try:
                status, doc = http_json(
                    "POST", spec.base_url + "/run", envelope, timeout=timeout
                )
            except FleetTransportError:
                dispatcher.report_failure(spec)
                continue
            if status == 503:
                busy.add(spec.base_url)
                if busy >= {s.base_url for s in dispatcher.alive_workers()}:
                    _count("all_busy")
                    self._reply(503, {"error": "all workers busy"})
                    return
                continue
            if status == 200:
                _count("forwarded")
                self._reply(200, {"job": doc["job"], "worker": spec.base_url})
                return
            # 409 version mismatch and other worker verdicts pass through.
            self._reply(status, doc)
            return

    def _proxy_result(self, worker, job) -> None:
        server = self.server
        if not worker or not job:
            self._reply(400, {"error": "need 'worker' and 'job'"})
            return
        known = {spec.base_url for spec in server.manifest.workers}
        if worker not in known:
            self._reply(400, {"error": "unknown worker %r" % worker})
            return
        try:
            status, doc = http_json(
                "GET",
                "%s/result?job=%s" % (worker, job),
                timeout=server.manifest.request_timeout_s,
            )
        except FleetTransportError as exc:
            for spec in server.manifest.workers:
                if spec.base_url == worker:
                    server.dispatcher.report_failure(spec)
            self._reply(502, {"error": "worker unreachable: %s" % exc})
            return
        self._reply(status, doc)


class GatewayServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        manifest: FleetManifest,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
    ):
        super().__init__((host, port), _GatewayHandler)
        self.manifest = manifest
        self.dispatcher = FleetDispatcher(manifest)
        directory = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir() / "fleet"
        )
        self.cache = SegmentStore(
            directory, key=CACHE_STORE_KEY, prefix="fleet", flush_every=1, fsync=False
        )
        self.cache_lock = threading.Lock()
        self.started_s = time.monotonic()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def status_document(self) -> dict:
        workers = []
        for spec, alive in self.dispatcher.snapshot():
            health = None
            if alive:
                try:
                    status, doc = http_json(
                        "GET", spec.base_url + "/health", timeout=2.0
                    )
                    if status == 200:
                        health = doc
                except FleetTransportError:
                    alive = False
            workers.append(
                {
                    "url": spec.base_url,
                    "weight": spec.weight,
                    "alive": alive,
                    "health": health,
                }
            )
        with self.cache_lock:
            cache_entries = len(self.cache.entries())
        return {
            "ok": True,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self.started_s, 3),
            "workers": workers,
            "cache": {
                "entries": cache_entries,
                "directory": str(self.cache.directory),
            },
        }


def serve_gateway(
    manifest,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir=None,
    port_file=None,
) -> None:
    """Run the gateway until interrupted.  ``port=0`` binds ephemeral."""
    from repro.fleet.worker import write_port_file

    if isinstance(manifest, (str, Path)):
        manifest = FleetManifest.load(manifest)
    server = GatewayServer(manifest, host=host, port=port, cache_dir=cache_dir)
    if port_file is not None:
        write_port_file(port_file, server.port)
    print(
        "fleet gateway pid=%d listening on http://%s:%d (%d workers)"
        % (os.getpid(), host, server.port, len(manifest.workers)),
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        with server.cache_lock:
            server.cache.close()
        server.server_close()
