"""The fleet gateway: one front door for dispatch, results, and the cache.

Clients that pass a manifest with a ``gateway`` entry talk only to the
gateway; it owns the authoritative :class:`FleetDispatcher` (weighted
round-robin, eviction, revival) so every client shares one view of fleet
health, and it hosts the shared result cache — a
:class:`repro.core.store.SegmentStore` the fleet's
:class:`~repro.fleet.cache.RemoteMemoCache` clients read and write, so a
sweep finished by one client short-circuits the same sweep started by
another.

The gateway also owns **elastic membership**
(:class:`repro.fleet.membership.MembershipRegistry`): workers started
with ``--register`` join at runtime, renew a heartbeat lease every
``lease_s / 3``, and are dropped from dispatch when the lease lapses —
so a hung or partitioned worker is detected within ``lease_s`` instead
of costing a transport timeout per shard.  Membership is persisted to a
second SegmentStore next to the cache, so a restarted gateway rehydrates
its fleet and in-flight sweeps resume.

Endpoints:

- ``GET /health`` — gateway liveness.
- ``GET /status`` — live fleet picture: per-worker health + lease,
  membership summary, gateway counters, cache size.
- ``POST /run`` — forward a job envelope to the next worker.  Replies
  ``{"job", "worker"}`` on placement; 503 when every live worker's slot
  is busy (clients wait); 502 when no live worker remains (clients
  charge the attempt — the fleet-wide-outage path to quarantine); 409
  passes a worker's code-version rejection through.  A worker answering
  "draining" is evicted from rotation and the job moves to a sibling.
- ``GET /result?worker=<url>&job=<id>`` — proxy a result poll, so
  clients never need direct worker connectivity.  Polling a recently
  removed member (drained or lease-expired) answers 502 so the client
  requeues the shard instead of spinning on 400s.
- ``POST /register`` / ``/renew`` / ``/deregister`` — the membership
  lifecycle (see :mod:`repro.fleet.membership`).
- ``GET /cache/get?key=<k>`` / ``POST /cache/put`` — the shared memo
  cache (``key`` is :func:`repro.core.memo.memo_key` output; values are
  JSON documents).

With a shared secret configured every endpoint requires a valid request
signature (401 otherwise); see :mod:`repro.fleet.wire`.
"""

from __future__ import annotations

import os
import threading
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.core.memo import code_version_hash, default_cache_dir
from repro.core.store import SegmentStore
from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.manifest import FleetManifest
from repro.fleet.membership import (
    MEMBERS_STORE_KEY,
    MemberRecord,
    MembershipRegistry,
)
from repro.fleet.wire import (
    FleetNoWorkersError,
    FleetTransportError,
    JsonRequestHandler,
    http_json,
)
from repro.obs.recorder import get_recorder

CACHE_STORE_KEY = "repro-fleet-cache/v1"

_MISS = object()


def _count(event: str, n: float = 1) -> None:
    get_recorder().counters.add("fleet.gateway." + event, n)


class _GatewayHandler(JsonRequestHandler):
    counter_ns = "fleet.gateway."

    # -- routes --------------------------------------------------------
    def route_get(self, body: bytes) -> None:
        server = self.server
        url = urlparse(self.path)
        query = parse_qs(url.query)
        if url.path == "/health":
            self._reply(
                200,
                {
                    "ok": True,
                    "role": "gateway",
                    "pid": os.getpid(),
                    "version": code_version_hash(),
                    "workers": len(server.dispatcher.snapshot()),
                },
            )
            return
        if url.path == "/status":
            self._reply(200, server.status_document())
            return
        if url.path == "/result":
            worker = (query.get("worker") or [None])[0]
            job = (query.get("job") or [None])[0]
            self._proxy_result(worker, job)
            return
        if url.path == "/cache/get":
            key = (query.get("key") or [None])[0]
            if not key:
                self._reply(400, {"error": "missing 'key'"})
                return
            with server.cache_lock:
                value = server.cache.get(key, _MISS)
            if value is _MISS:
                _count("cache_misses")
                self._reply(404, {"error": "miss"})
                return
            _count("cache_hits")
            self._reply(200, {"value": value})
            return
        self._reply(404, {"error": "unknown path %r" % url.path})

    def route_post(self, body: bytes) -> None:
        server = self.server
        url = urlparse(self.path)
        if url.path == "/run":
            envelope = self._json(body)
            if not isinstance(envelope, dict):
                self._reply(400, {"error": "malformed job envelope"})
                return
            self._forward_run(envelope)
            return
        if url.path == "/register":
            self._register(self._json(body))
            return
        if url.path == "/renew":
            self._renew(self._json(body))
            return
        if url.path == "/deregister":
            self._deregister(self._json(body))
            return
        if url.path == "/cache/put":
            doc = self._json(body)
            if not isinstance(doc, dict) or not doc.get("key"):
                self._reply(400, {"error": "need {'key', 'value'}"})
                return
            with server.cache_lock:
                server.cache.append(doc["key"], doc.get("value"))
                server.cache.flush()
            _count("cache_puts")
            self._reply(200, {"ok": True})
            return
        self._reply(404, {"error": "unknown path %r" % url.path})

    # -- membership ----------------------------------------------------
    def _register(self, doc) -> None:
        server = self.server
        if not isinstance(doc, dict):
            self._reply(400, {"error": "malformed registration"})
            return
        try:
            record = MemberRecord.from_dict(doc)
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
            return
        version = code_version_hash()
        if record.version is not None and record.version != version:
            _count("register_version_rejects")
            self._reply(
                409,
                {
                    "error": "code version mismatch: gateway runs %s, worker sent %s"
                    % (version, record.version),
                    "version": version,
                },
            )
            return
        joined = server.membership.register(record)
        server.dispatcher.add_worker(record.spec)
        _count("registered" if joined else "reregistered")
        self._reply(200, {"ok": True, "lease_s": server.membership.lease_s})

    def _renew(self, doc) -> None:
        server = self.server
        if not isinstance(doc, dict) or "host" not in doc or "port" not in doc:
            self._reply(400, {"error": "need {'host', 'port'}"})
            return
        try:
            host, port = str(doc["host"]), int(doc["port"])
        except (TypeError, ValueError):
            self._reply(400, {"error": "need {'host', 'port'}"})
            return
        if server.membership.renew(host, port):
            self._reply(200, {"ok": True, "lease_s": server.membership.lease_s})
            return
        self._reply(404, {"error": "unknown member; re-register"})

    def _deregister(self, doc) -> None:
        server = self.server
        if not isinstance(doc, dict) or "host" not in doc or "port" not in doc:
            self._reply(400, {"error": "need {'host', 'port'}"})
            return
        try:
            host, port = str(doc["host"]), int(doc["port"])
        except (TypeError, ValueError):
            self._reply(400, {"error": "need {'host', 'port'}"})
            return
        record = server.membership.deregister(host, port)
        if record is not None:
            server.dispatcher.remove_worker(record.spec)
            _count("deregistered")
        self._reply(200, {"ok": True, "known": record is not None})

    # -- forwarding ----------------------------------------------------
    def _forward_run(self, envelope: dict) -> None:
        server = self.server
        dispatcher = server.dispatcher
        timeout = server.manifest.request_timeout_s
        busy = set()
        while True:
            try:
                spec = dispatcher.pick()
            except FleetNoWorkersError:
                _count("no_workers")
                self._reply(502, {"error": "no live workers in the fleet"})
                return
            alive = {s.base_url for s in dispatcher.alive_workers()}
            if spec.base_url in busy:
                if busy >= alive:
                    _count("all_busy")
                    self._reply(503, {"error": "all workers busy"})
                    return
                continue
            try:
                status, doc = http_json(
                    "POST",
                    spec.base_url + "/run",
                    envelope,
                    timeout=timeout,
                    secret=server.secret,
                )
            except FleetTransportError:
                dispatcher.report_failure(spec)
                continue
            if status == 503:
                if doc.get("draining"):
                    # On its way out: take it off rotation and move on.
                    _count("drain_evictions")
                    dispatcher.report_failure(spec)
                    continue
                busy.add(spec.base_url)
                if busy >= {s.base_url for s in dispatcher.alive_workers()}:
                    _count("all_busy")
                    self._reply(503, {"error": "all workers busy"})
                    return
                continue
            if status == 200:
                _count("forwarded")
                self._reply(200, {"job": doc["job"], "worker": spec.base_url})
                return
            # 409 version mismatch and other worker verdicts pass through.
            self._reply(status, doc)
            return

    def _proxy_result(self, worker, job) -> None:
        server = self.server
        if not worker or not job:
            self._reply(400, {"error": "need 'worker' and 'job'"})
            return
        known = {spec.base_url for spec in server.manifest.workers}
        if worker not in known and not server.membership.is_member(worker):
            reason = server.membership.removal_reason(worker)
            if reason is not None:
                # The member left (drain/lease expiry) with this job in
                # flight: fail the poll so the client requeues the shard.
                _count("dead_member_polls")
                self._reply(502, {"error": "worker removed: %s" % reason})
                return
            self._reply(400, {"error": "unknown worker %r" % worker})
            return
        try:
            status, doc = http_json(
                "GET",
                "%s/result?job=%s" % (worker, job),
                timeout=server.manifest.request_timeout_s,
                secret=server.secret,
            )
        except FleetTransportError as exc:
            for spec, _alive in server.dispatcher.snapshot():
                if spec.base_url == worker:
                    server.dispatcher.report_failure(spec)
            self._reply(502, {"error": "worker unreachable: %s" % exc})
            return
        self._reply(status, doc)


class GatewayServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        manifest: FleetManifest,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        secret: str | None = None,
    ):
        super().__init__((host, port), _GatewayHandler)
        self.manifest = manifest
        self.secret = secret
        self.dispatcher = FleetDispatcher(manifest, secret=secret)
        directory = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir() / "fleet"
        )
        self.cache = SegmentStore(
            directory, key=CACHE_STORE_KEY, prefix="fleet", flush_every=1, fsync=False
        )
        self.cache_lock = threading.Lock()
        # Membership persists next to the cache (fsync'd: joins are rare
        # and a crashed gateway must rehydrate the exact member set).
        self.membership = MembershipRegistry(
            lease_s=manifest.lease_s,
            store=SegmentStore(
                directory,
                key=MEMBERS_STORE_KEY,
                prefix="members",
                flush_every=1,
                fsync=True,
            ),
        )
        for record in self.membership.rehydrate():
            self.dispatcher.add_worker(record.spec)
            _count("rehydrated")
        self.started_s = time.monotonic()
        self._closed = False
        self._lease_stop = threading.Event()
        self._lease_thread = threading.Thread(
            target=self._lease_loop, daemon=True, name="fleet-leases"
        )
        self._lease_thread.start()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def _lease_loop(self) -> None:
        tick = max(0.05, self.membership.lease_s / 5.0)
        while not self._lease_stop.wait(tick):
            for record in self.membership.expire_due():
                self.dispatcher.remove_worker(record.spec)
                _count("lease_expired")

    def server_close(self) -> None:
        self._lease_stop.set()
        super().server_close()
        if not self._closed:
            self._closed = True
            self.membership.close()

    def status_document(self) -> dict:
        leases = {
            record.url: remaining for record, remaining in self.membership.members()
        }
        workers = []
        for spec, alive in self.dispatcher.snapshot():
            health = None
            if alive:
                try:
                    status, doc = http_json(
                        "GET",
                        spec.base_url + "/health",
                        timeout=2.0,
                        secret=self.secret,
                    )
                    if status == 200:
                        health = doc
                except FleetTransportError:
                    alive = False
            registered = spec.base_url in leases
            workers.append(
                {
                    "url": spec.base_url,
                    "weight": spec.weight,
                    "alive": alive,
                    "registered": registered,
                    "lease_remaining_s": (
                        round(leases[spec.base_url], 3) if registered else None
                    ),
                    "health": health,
                }
            )
        with self.cache_lock:
            cache_entries = len(self.cache.entries())
        return {
            "ok": True,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self.started_s, 3),
            "workers": workers,
            "membership": {
                "members": len(self.membership),
                "lease_s": self.membership.lease_s,
            },
            "counters": get_recorder().counters.as_dict(),
            "cache": {
                "entries": cache_entries,
                "directory": str(self.cache.directory),
            },
        }


def serve_gateway(
    manifest,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir=None,
    port_file=None,
    secret: str | None = None,
) -> None:
    """Run the gateway until interrupted.  ``port=0`` binds ephemeral."""
    from repro.fleet.worker import write_port_file
    from repro.obs.recorder import Recorder, set_recorder

    if isinstance(manifest, (str, Path)):
        manifest = FleetManifest.load(manifest)
    # Arm a real recorder so /status can expose fleet.gateway.* counters
    # (a bare subprocess otherwise defaults to the no-op recorder).
    set_recorder(Recorder())
    server = GatewayServer(
        manifest, host=host, port=port, cache_dir=cache_dir, secret=secret
    )
    if port_file is not None:
        write_port_file(port_file, server.port)
    print(
        "fleet gateway pid=%d listening on http://%s:%d (%d static workers, %d members)"
        % (
            os.getpid(),
            host,
            server.port,
            len(manifest.workers),
            len(server.membership),
        ),
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        with server.cache_lock:
            server.cache.close()
        server.server_close()
