"""Elastic fleet membership: heartbeat leases, registration, rehydration.

PR 9's fleet only scaled as far as a hand-written ``workers`` list in
``fleet.json``.  This module makes membership **gateway-owned and
dynamic**:

- A worker started with ``--register <gateway>`` announces itself at
  boot (``POST /register``) and renews a heartbeat lease every
  ``lease_s / 3`` (``POST /renew``).  The gateway hands the lease length
  back in the register reply, so the manifest's ``lease_s`` knob is
  configured in exactly one place.
- The gateway's :class:`MembershipRegistry` marks a member dead when its
  lease expires — a hung or partitioned worker is detected *proactively*
  (within ``lease_s``) instead of costing one transport timeout per
  shard.  Expired and deregistered members keep a queryable removal
  reason for a grace window, so an in-flight result poll can be failed
  fast (the shard requeues on a sibling) rather than answered with
  "unknown worker".
- Membership is persisted through the existing
  :class:`repro.core.store.SegmentStore` (one entry per member, ``None``
  as a tombstone), so a restarted gateway **rehydrates** its fleet and
  in-flight sweeps resume against the same worker set before any renewal
  arrives.
- Graceful drain deregisters explicitly: the worker finishes its
  in-flight job, hands the result over, then leaves the registry — the
  *uncharged* exit path, distinct from a crash.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.core.memo import code_version_hash
from repro.fleet.manifest import WorkerSpec
from repro.fleet.wire import PROTOCOL, FleetTransportError, http_json
from repro.obs.recorder import get_recorder

#: SegmentStore namespace key for persisted membership.
MEMBERS_STORE_KEY = "repro-fleet-members/v1"

#: How long a removed member's fate stays queryable for result proxies.
REMOVAL_RETENTION_S = 600.0


def _count(event: str, n: float = 1) -> None:
    get_recorder().counters.add("fleet.membership." + event, n)


@dataclass(frozen=True)
class MemberRecord:
    """One registered fleet member, as announced by the worker."""

    host: str
    port: int
    weight: int = 1
    pid: int | None = None
    version: str | None = None

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    @property
    def spec(self) -> WorkerSpec:
        return WorkerSpec(host=self.host, port=self.port, weight=self.weight)

    def to_dict(self) -> dict:
        return {
            "host": self.host,
            "port": self.port,
            "weight": self.weight,
            "pid": self.pid,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "MemberRecord":
        if not isinstance(doc, dict):
            raise ValueError("member record must be an object, got %r" % (doc,))
        try:
            host = str(doc["host"])
            port = int(doc["port"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                "member record needs 'host' and an integer 'port': %r" % (doc,)
            ) from exc
        raw_weight = doc.get("weight")
        try:
            weight = int(raw_weight) if raw_weight is not None else 1
        except (TypeError, ValueError) as exc:
            raise ValueError("member weight must be an integer: %r" % (doc,)) from exc
        if weight < 1:
            raise ValueError("member weight must be >= 1, got %d" % weight)
        pid = doc.get("pid")
        pid = int(pid) if pid is not None else None
        version = doc.get("version")
        version = str(version) if version is not None else None
        return cls(host=host, port=port, weight=weight, pid=pid, version=version)


class _Member:
    __slots__ = ("record", "deadline_s")

    def __init__(self, record: MemberRecord, deadline_s: float):
        self.record = record
        self.deadline_s = deadline_s


class MembershipRegistry:
    """The gateway's authoritative, lease-guarded member table.

    Thread-safe.  ``store`` (a :class:`~repro.core.store.SegmentStore`
    or None) persists joins and removals write-through, so
    :meth:`rehydrate` can rebuild the table after a gateway restart;
    renewals are memory-only (no disk churn at heartbeat rate).
    ``clock`` is injectable for tests and must be monotonic.
    """

    def __init__(self, lease_s: float = 10.0, store=None, clock=time.monotonic):
        self.lease_s = float(lease_s)
        self._store = store
        self._clock = clock
        self._lock = threading.Lock()
        self._members: dict = {}  # url -> _Member
        self._removed: dict = {}  # url -> (reason, removed_at_s)

    # -- lifecycle -----------------------------------------------------
    def register(self, record: MemberRecord) -> bool:
        """Admit (or refresh) a member; returns True for a new join."""
        now = self._clock()
        with self._lock:
            joined = record.url not in self._members
            self._members[record.url] = _Member(record, now + self.lease_s)
            self._removed.pop(record.url, None)
            self._persist(record.url, record.to_dict())
        _count("joined" if joined else "rejoined")
        return joined

    def renew(self, host: str, port: int) -> bool:
        """Extend a member's lease; False for unknown members (expired,
        drained, or never registered) — the worker must re-register."""
        url = "http://%s:%d" % (host, int(port))
        now = self._clock()
        with self._lock:
            member = self._members.get(url)
            if member is None:
                _count("unknown_renewals")
                return False
            member.deadline_s = now + self.lease_s
        _count("renewals")
        return True

    def deregister(self, host: str, port: int):
        """Remove a member explicitly (graceful drain).

        Returns the removed :class:`MemberRecord`, or None if unknown.
        """
        url = "http://%s:%d" % (host, int(port))
        now = self._clock()
        with self._lock:
            member = self._members.pop(url, None)
            if member is None:
                return None
            self._removed[url] = ("deregistered", now)
            self._persist(url, None)
        _count("deregistered")
        return member.record

    def expire_due(self):
        """Drop every member whose lease has lapsed; returns their records."""
        now = self._clock()
        expired = []
        with self._lock:
            for url, member in list(self._members.items()):
                if member.deadline_s <= now:
                    del self._members[url]
                    self._removed[url] = ("lease expired", now)
                    self._persist(url, None)
                    expired.append(member.record)
        if expired:
            _count("expired", len(expired))
        return expired

    # -- queries -------------------------------------------------------
    def members(self) -> list:
        """``(record, lease_remaining_s)`` pairs, registration order."""
        now = self._clock()
        with self._lock:
            return [
                (member.record, max(member.deadline_s - now, 0.0))
                for member in self._members.values()
            ]

    def is_member(self, url: str) -> bool:
        with self._lock:
            return url in self._members

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def removal_reason(self, url: str) -> str | None:
        """Why ``url`` left, if it did recently — lets a result proxy
        answer "requeue your shard" instead of "never heard of it"."""
        now = self._clock()
        with self._lock:
            for old_url, (_reason, at) in list(self._removed.items()):
                if now - at > REMOVAL_RETENTION_S:
                    del self._removed[old_url]
            entry = self._removed.get(url)
            return entry[0] if entry is not None else None

    # -- persistence ---------------------------------------------------
    def _persist(self, url: str, payload) -> None:
        if self._store is None:
            return
        try:
            self._store.append(url, payload)
        except OSError:
            _count("persist_errors")

    def rehydrate(self) -> list:
        """Rebuild membership from the persisted table after a restart.

        Every surviving member gets a full fresh lease — monotonic
        deadlines don't survive a process, and a live worker's next
        renewal (or the lease expiry) reconciles the rest.  Returns the
        rehydrated records.
        """
        if self._store is None:
            return []
        now = self._clock()
        records = []
        with self._lock:
            for _url, payload in self._store.entries().items():
                if payload is None:  # tombstone: deregistered or expired
                    continue
                try:
                    record = MemberRecord.from_dict(payload)
                except ValueError:
                    continue
                self._members[record.url] = _Member(record, now + self.lease_s)
                records.append(record)
        if records:
            _count("rehydrated", len(records))
        return records

    def close(self) -> None:
        if self._store is not None:
            self._store.close()


class RegistrationClient:
    """Worker-side membership: announce at boot, renew, deregister.

    Runs a daemon thread.  Cadence is ``lease_s / 3`` (three missed
    heartbeats before expiry), where ``lease_s`` comes back from the
    gateway's register reply.  A 404 on renew means the gateway no
    longer knows us (lease expired while partitioned, or the gateway
    restarted without our tombstone) — the client transparently
    re-registers.  Transport errors retry on the next tick; the worker
    keeps serving either way.
    """

    def __init__(
        self,
        gateway_url: str,
        record: MemberRecord,
        secret: str | None = None,
        timeout_s: float = 5.0,
    ):
        self.gateway_url = str(gateway_url).rstrip("/")
        self.record = record
        self.secret = secret
        self.timeout_s = timeout_s
        self.lease_s: float | None = None
        self._stop = threading.Event()
        self._registered = threading.Event()
        self._thread: threading.Thread | None = None

    def _count(self, event: str, n: float = 1) -> None:
        get_recorder().counters.add("fleet.worker." + event, n)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="fleet-membership"
        )
        self._thread.start()

    def wait_registered(self, timeout: float | None = None) -> bool:
        return self._registered.wait(timeout)

    def stop(self, deregister: bool = True) -> None:
        """Stop renewing; with ``deregister`` also leave the registry."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=self.timeout_s)
        if deregister and self._registered.is_set():
            self._registered.clear()
            try:
                http_json(
                    "POST",
                    self.gateway_url + "/deregister",
                    {"host": self.record.host, "port": self.record.port},
                    timeout=self.timeout_s,
                    secret=self.secret,
                )
                self._count("deregistered")
            except FleetTransportError:
                pass  # gateway gone; its lease expiry will clean up

    # -- the heartbeat loop --------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            self._stop.wait(self._tick())

    def _interval(self) -> float:
        lease = self.lease_s if self.lease_s else 1.5
        return max(0.05, lease / 3.0)

    def _tick(self) -> float:
        if not self._registered.is_set():
            return self._interval() if self._register() else 0.5
        self._renew()
        return self._interval()

    def _register(self) -> bool:
        payload = dict(self.record.to_dict())
        payload["version"] = self.record.version or code_version_hash()
        payload["protocol"] = PROTOCOL
        try:
            status, doc = http_json(
                "POST",
                self.gateway_url + "/register",
                payload,
                timeout=self.timeout_s,
                secret=self.secret,
            )
        except FleetTransportError:
            self._count("register_errors")
            return False
        if status == 200 and doc.get("ok"):
            lease = doc.get("lease_s")
            if lease:
                self.lease_s = float(lease)
            self._registered.set()
            self._count("registered")
            return True
        self._count("register_rejects")
        return False

    def _renew(self) -> None:
        try:
            status, doc = http_json(
                "POST",
                self.gateway_url + "/renew",
                {"host": self.record.host, "port": self.record.port},
                timeout=self.timeout_s,
                secret=self.secret,
            )
        except FleetTransportError:
            # Keep the lease claim; the gateway expires us if it's real.
            self._count("renew_errors")
            return
        if status == 200 and doc.get("ok"):
            lease = doc.get("lease_s")
            if lease:
                self.lease_s = float(lease)
            self._count("renewals")
            return
        if status == 404:
            # The gateway forgot us (expiry or restart): re-register.
            self._registered.clear()
            self._count("reregistrations")
            return
        self._count("renew_errors")


def local_member_record(
    host: str, port: int, weight: int = 1, advertise_host: str | None = None
) -> MemberRecord:
    """The record a worker announces for itself.

    ``advertise_host`` overrides the bind host for registration —
    needed when binding a wildcard address that peers can't dial.
    """
    announce = advertise_host or host
    if announce in ("", "0.0.0.0", "::"):
        announce = "127.0.0.1"
    return MemberRecord(
        host=announce,
        port=int(port),
        weight=int(weight),
        pid=os.getpid(),
        version=code_version_hash(),
    )
