"""Distributed sweep fabric: an HTTP gateway + worker fleet behind ResilientMap.

The fleet is a drop-in executor for the ``pool_factory`` seam of
:class:`repro.core.resilience.ResilientMap`: :func:`fleet_pool_factory`
builds :class:`FleetExecutor` instances that dispatch each submitted item
to a remote worker over HTTP instead of a local ``ProcessPoolExecutor``
worker.  All of ResilientMap's retry/backoff/timeout/quarantine and
checkpoint semantics apply unchanged — a dead worker looks exactly like a
crashed pool process (the future raises, the attempt is charged, the item
is retried on a sibling), and a hung worker is handled by the same
timeout teardown via the executor ``kill()`` protocol.

Everything here is standard library only (``http.server`` + ``urllib``);
the wire protocol is JSON envelopes around base64-pickled callables, with
a :func:`repro.core.memo.code_version_hash` handshake so a worker running
different model code refuses jobs instead of silently computing different
numbers.
"""

from __future__ import annotations

from repro.fleet.cache import RemoteMemoCache
from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.executor import FleetExecutor, fleet_pool_factory
from repro.fleet.manifest import FleetManifest, WorkerSpec
from repro.fleet.membership import (
    MemberRecord,
    MembershipRegistry,
    RegistrationClient,
)
from repro.fleet.wire import (
    FleetBusyError,
    FleetError,
    FleetNoWorkersError,
    FleetTransportError,
    FleetVersionError,
    FleetWorkerError,
)

__all__ = [
    "FleetBusyError",
    "FleetDispatcher",
    "FleetError",
    "FleetExecutor",
    "FleetManifest",
    "FleetNoWorkersError",
    "FleetTransportError",
    "FleetVersionError",
    "FleetWorkerError",
    "MemberRecord",
    "MembershipRegistry",
    "RegistrationClient",
    "RemoteMemoCache",
    "WorkerSpec",
    "fleet_pool_factory",
]
