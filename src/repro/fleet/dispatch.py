"""Worker selection: smooth weighted round-robin with eviction + revival.

The dispatcher is the client-side picture of fleet health.  Each
:class:`~repro.fleet.manifest.WorkerSpec` gets a node with the classic
smooth-WRR state (current weight accumulates by configured weight; the
largest current weight wins and pays back the total), which interleaves
a ``[2, 1]``-weighted fleet as A-B-A rather than A-A-B.

A transport failure evicts the node immediately — every subsequent pick
skips it, so a dead worker costs one failed request, not one per shard.
Evicted nodes are re-probed (``GET /health``) at most once per
``probe_interval_s`` and rejoin the rotation on success, so a restarted
worker is picked up without restarting the sweep.  A probe that answers
with a *different* ``code_version_hash`` keeps the node evicted
(``fleet.dispatch.version_skew``) — a worker restarted on a divergent
tree would otherwise rejoin and 409 every job it's handed; same for a
worker that reports itself ``draining``.  When every node is dead,
:meth:`FleetDispatcher.pick` raises
:class:`~repro.fleet.wire.FleetNoWorkersError`; the executor surfaces
that through the item's future, where ResilientMap charges the attempt
and ultimately quarantines — a fleet-wide outage degrades exactly like a
repeatedly-crashing local pool.

Elastic fleets grow and shrink the node table at runtime: the gateway
calls :meth:`FleetDispatcher.add_worker` on registration and
:meth:`FleetDispatcher.remove_worker` on drain or lease expiry.
"""

from __future__ import annotations

import threading
import time

from repro.core.memo import code_version_hash
from repro.fleet.manifest import FleetManifest, WorkerSpec
from repro.fleet.wire import FleetNoWorkersError, FleetTransportError, http_json
from repro.obs.recorder import get_recorder


class _Node:
    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.current = 0
        self.alive = True
        self.last_probe_s = 0.0


def _count(event: str, n: float = 1) -> None:
    get_recorder().counters.add("fleet.dispatch." + event, n)


class FleetDispatcher:
    """Thread-safe worker selection over a manifest's worker list.

    One dispatcher is shared across all :class:`FleetExecutor` respawns
    of a sweep (see :func:`repro.fleet.executor.fleet_pool_factory`), so
    eviction knowledge survives pool teardown after a timeout.
    """

    def __init__(
        self,
        manifest: FleetManifest,
        probe_timeout_s: float = 2.0,
        secret: str | None = None,
    ):
        self.manifest = manifest
        self.probe_timeout_s = probe_timeout_s
        self.secret = secret
        self._nodes = [_Node(spec) for spec in manifest.workers]
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def pick(self) -> WorkerSpec:
        """The next worker by smooth weighted round-robin.

        Raises :class:`FleetNoWorkersError` when the whole fleet is dead
        (after attempting due revival probes).
        """
        self._revive_due()
        with self._lock:
            alive = [node for node in self._nodes if node.alive]
            if not alive:
                _count("no_workers")
                raise FleetNoWorkersError(
                    "all %d fleet workers are dead" % len(self._nodes)
                )
            total = sum(node.spec.weight for node in alive)
            for node in alive:
                node.current += node.spec.weight
            best = max(alive, key=lambda node: node.current)
            best.current -= total
            _count("dispatched")
            return best.spec

    def report_failure(self, spec: WorkerSpec) -> None:
        """Evict ``spec`` after a transport failure."""
        with self._lock:
            for node in self._nodes:
                if node.spec == spec and node.alive:
                    node.alive = False
                    node.last_probe_s = time.monotonic()
                    node.current = 0
                    _count("evicted")

    def add_worker(self, spec: WorkerSpec) -> None:
        """Admit (or refresh) a dynamically-registered worker.

        Matching is by host+port: a re-registration updates the weight
        and revives the node with smooth-WRR state reset, so a restarted
        member rejoins the rotation immediately instead of waiting out a
        probe interval.
        """
        with self._lock:
            for node in self._nodes:
                if node.spec.host == spec.host and node.spec.port == spec.port:
                    node.spec = spec
                    node.alive = True
                    node.current = 0
                    node.last_probe_s = 0.0
                    _count("readded")
                    return
            self._nodes.append(_Node(spec))
            _count("added")

    def remove_worker(self, spec: WorkerSpec) -> None:
        """Drop a worker from the rotation entirely (drain/lease expiry).

        Unlike eviction, a removed node is not probed for revival — it
        must re-register to come back.
        """
        with self._lock:
            before = len(self._nodes)
            self._nodes = [
                node
                for node in self._nodes
                if not (node.spec.host == spec.host and node.spec.port == spec.port)
            ]
            if len(self._nodes) < before:
                _count("removed")

    def alive_workers(self) -> list:
        with self._lock:
            return [node.spec for node in self._nodes if node.alive]

    def snapshot(self) -> list:
        """(spec, alive) pairs for status displays."""
        with self._lock:
            return [(node.spec, node.alive) for node in self._nodes]

    # ------------------------------------------------------------------
    def _revive_due(self) -> None:
        """Probe evicted nodes whose back-off has elapsed.

        Claims each due node under the lock (by stamping
        ``last_probe_s``) so concurrent picks don't duplicate probes,
        then probes with the lock released — a slow probe must not stall
        dispatch to healthy workers.
        """
        now = time.monotonic()
        interval = self.manifest.probe_interval_s
        due = []
        with self._lock:
            for node in self._nodes:
                if not node.alive and now - node.last_probe_s >= interval:
                    node.last_probe_s = now
                    due.append(node)
        for node in due:
            try:
                status, doc = http_json(
                    "GET",
                    node.spec.base_url + "/health",
                    timeout=self.probe_timeout_s,
                    secret=self.secret,
                )
            except FleetTransportError:
                continue
            if status != 200 or not doc.get("ok"):
                continue
            if doc.get("draining"):
                continue  # finishing up on its way out; don't hand it work
            version = doc.get("version")
            if version is not None and version != code_version_hash():
                # A divergent tree would 409 every job — stay evicted.
                _count("version_skew")
                continue
            with self._lock:
                node.alive = True
                node.current = 0
            _count("revived")
