"""RemoteMemoCache: the gateway-hosted shared result cache, MemoCache-shaped.

The client mirrors :class:`repro.core.memo.MemoCache`'s surface —
``get(name, config)``, ``put(name, value, config)``, ``version``,
``flush``/``close``/``maybe_compact`` — but entries live in the
gateway's segment store instead of a local directory, so every fleet
client shares one cache: a sweep one client finished short-circuits the
same sweep started by another.

Keys are :func:`repro.core.memo.memo_key` — byte-identical to the local
cache's addressing, including the code-version salt — so a hit is
always the same answer a local run would have computed.

The cache degrades to a miss, never to a failure: a gateway that is
down or restarting makes ``get`` return the default and ``put`` drop
the write (counted as ``fleet.cache.degraded``), so losing the cache
costs recomputation, not the sweep.
"""

from __future__ import annotations

from urllib.parse import quote

from repro.core.memo import code_version_hash, memo_key
from repro.fleet.wire import FleetTransportError, http_json
from repro.obs.recorder import get_recorder


def _count(event: str, n: float = 1) -> None:
    get_recorder().counters.add("fleet.cache." + event, n)


class RemoteMemoCache:
    """A MemoCache-compatible client for the gateway's ``/cache`` endpoints."""

    def __init__(
        self,
        base_url: str,
        version: str | None = None,
        timeout_s: float = 10.0,
        secret: str | None = None,
    ):
        self.base_url = str(base_url).rstrip("/")
        self.version = version if version is not None else code_version_hash()
        self.timeout_s = timeout_s
        self.secret = secret

    def key(self, name: str, config=None) -> str:
        return memo_key(name, config, self.version)

    def get(self, name: str, config=None, default=None):
        url = "%s/cache/get?key=%s" % (self.base_url, quote(self.key(name, config)))
        try:
            status, doc = http_json(
                "GET", url, timeout=self.timeout_s, secret=self.secret
            )
        except FleetTransportError:
            _count("degraded")
            return default
        if status == 200 and "value" in doc:
            _count("hits")
            return doc["value"]
        _count("misses")
        return default

    def put(self, name: str, value, config=None) -> None:
        payload = {"key": self.key(name, config), "value": value}
        try:
            status, _doc = http_json(
                "POST",
                self.base_url + "/cache/put",
                payload,
                timeout=self.timeout_s,
                secret=self.secret,
            )
        except FleetTransportError:
            _count("degraded")
            return
        if status == 200:
            _count("puts")
        else:
            _count("degraded")

    # -- MemoCache surface the sweep code touches ----------------------
    def flush(self):
        """Writes are synchronous; nothing is buffered client-side."""
        return None

    def close(self) -> None:
        return None

    def maybe_compact(self, max_age_days: float | None = None):
        """Compaction is the gateway's business, not the client's."""
        return None
