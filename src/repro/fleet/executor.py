"""FleetExecutor: the remote fleet behind ResilientMap's pool_factory seam.

The executor presents the ``ProcessPoolExecutor`` surface ResilientMap
drives — ``submit`` returning futures, ``shutdown`` — plus the explicit
teardown protocol (``kill``/``processes``) that
:meth:`repro.core.resilience.ResilientMap._kill_pool` prefers over
private-attribute discovery.  Each submitted item gets a daemon thread
that places the job on a worker (directly or via the gateway), polls for
the result, and resolves a standard :class:`concurrent.futures.Future`.

Failure mapping is the whole point — ResilientMap must not be able to
tell a fleet from a local pool:

- Worker busy (503) or a transport error *before* a job is accepted:
  retried silently on a sibling; no attempt is charged, just as the
  local pool queues work it hasn't started.
- Worker dies *after* accepting (poll hits a transport error): the
  future raises, the attempt is charged, ResilientMap retries on a
  sibling — the exact shape of a crashed pool process.
- Remote exception: unpickled and re-raised as the original type, so
  failure records and ``raise_failures`` behave identically to local.
- Whole fleet dead: :class:`FleetNoWorkersError` per attempt until the
  retry budget exhausts and the item quarantines (degraded aggregates),
  instead of hanging the sweep.
- ResilientMap timeout: ``_kill_pool`` calls :meth:`FleetExecutor.kill`,
  which aborts the poll threads; the respawned executor (same shared
  dispatcher, so eviction knowledge survives) receives the resubmitted
  survivors.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from pathlib import Path
from urllib.parse import quote

from repro.core.memo import code_version_hash
from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.manifest import FleetManifest
from repro.fleet.wire import (
    PROTOCOL,
    FleetError,
    FleetTransportError,
    FleetVersionError,
    FleetWorkerError,
    decode_obj,
    encode_obj,
    http_json,
)


class FleetExecutor:
    """Executor-protocol adapter from futures to fleet HTTP jobs."""

    def __init__(
        self,
        manifest: FleetManifest,
        dispatcher: FleetDispatcher | None = None,
        initializer=None,
        initargs=(),
        secret: str | None = None,
    ):
        self.manifest = manifest
        self.secret = secret
        self.dispatcher = (
            dispatcher
            if dispatcher is not None
            else FleetDispatcher(manifest, secret=secret)
        )
        self._gateway_url = (
            manifest.gateway.base_url if manifest.gateway is not None else None
        )
        self._init_payload = (
            encode_obj((initializer, tuple(initargs)))
            if initializer is not None
            else None
        )
        self._abort = threading.Event()
        self._threads = []
        self._lock = threading.Lock()

    # -- executor protocol ---------------------------------------------
    def submit(self, fn, *args, **kwargs) -> Future:
        future = Future()
        if not future.set_running_or_notify_cancel():  # pragma: no cover
            return future
        thread = threading.Thread(
            target=self._drive, args=(future, fn, args, kwargs), daemon=True
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        if cancel_futures:
            self._abort.set()
        if wait:
            with self._lock:
                threads = list(self._threads)
            for thread in threads:
                thread.join()

    def kill(self) -> None:
        """Teardown protocol: abort every in-flight poll thread.

        Called by ResilientMap's ``_kill_pool`` on timeout.  The remote
        workers themselves are left alone — a worker still chewing on an
        abandoned job finishes it and frees its slot; its result is
        simply never fetched.
        """
        self._abort.set()

    def processes(self) -> list:
        """Teardown protocol: no local worker processes to terminate."""
        return []

    # -- job lifecycle -------------------------------------------------
    def _drive(self, future: Future, fn, args, kwargs) -> None:
        try:
            value = self._run_job(fn, args, kwargs)
        except BaseException as exc:  # noqa: BLE001 - delivered via future
            future.set_exception(exc)
        else:
            future.set_result(value)

    def _check_abort(self) -> None:
        if self._abort.is_set():
            raise FleetError("fleet executor torn down")

    def _run_job(self, fn, args, kwargs):
        envelope = {
            "protocol": PROTOCOL,
            "version": code_version_hash(),
            "init": self._init_payload,
            "fn": encode_obj(fn),
            "args": encode_obj(args),
            "kwargs": encode_obj(kwargs),
        }
        timeout = self.manifest.request_timeout_s
        poll = self.manifest.poll_interval_s
        while True:
            self._check_abort()
            placed = self._place(envelope, timeout)
            if placed is None:  # every slot busy right now
                time.sleep(poll)
                continue
            result_url, spec = placed
            return self._poll(result_url, spec, timeout, poll)

    def _place(self, envelope: dict, timeout: float):
        """Try to start the job somewhere.

        Returns ``(result_url, evict_spec)`` once a worker accepted it,
        or ``None`` when the fleet is alive but fully busy (caller
        sleeps and retries).  Raises when the attempt should be charged.
        """
        if self._gateway_url is not None:
            status, doc = http_json(
                "POST",
                self._gateway_url + "/run",
                envelope,
                timeout=timeout,
                secret=self.secret,
            )
            if status == 503:
                return None
            if status == 409:
                raise FleetVersionError(str(doc.get("error")))
            if status != 200:
                raise FleetWorkerError(
                    "gateway refused job (%d): %s" % (status, doc.get("error"))
                )
            result_url = "%s/result?worker=%s&job=%s" % (
                self._gateway_url,
                quote(str(doc["worker"]), safe=""),
                doc["job"],
            )
            return result_url, None
        while True:
            self._check_abort()
            spec = self.dispatcher.pick()  # raises FleetNoWorkersError when dead
            try:
                status, doc = http_json(
                    "POST",
                    spec.base_url + "/run",
                    envelope,
                    timeout=timeout,
                    secret=self.secret,
                )
            except FleetTransportError:
                # Job never started; evict and try a sibling, uncharged.
                self.dispatcher.report_failure(spec)
                continue
            if status == 503:
                if doc.get("draining"):
                    # Graceful decommission: the worker never took the
                    # job, so re-place on a sibling uncharged.
                    self.dispatcher.report_failure(spec)
                    continue
                return None
            if status == 409:
                raise FleetVersionError(str(doc.get("error")))
            if status != 200:
                raise FleetWorkerError(
                    "worker %s refused job (%d): %s"
                    % (spec.base_url, status, doc.get("error"))
                )
            return spec.base_url + "/result?job=%s" % doc["job"], spec

    def _poll(self, result_url: str, spec, timeout: float, poll: float):
        while True:
            self._check_abort()
            time.sleep(poll)
            try:
                status, record = http_json(
                    "GET", result_url, timeout=timeout, secret=self.secret
                )
            except FleetTransportError as exc:
                if spec is not None:
                    self.dispatcher.report_failure(spec)
                raise FleetWorkerError(
                    "worker died while running job: %s" % exc
                ) from exc
            if status != 200:
                raise FleetWorkerError(
                    "result fetch failed (%d): %s" % (status, record.get("error"))
                )
            state = record.get("status")
            if state == "pending":
                continue
            if state == "done":
                return decode_obj(record["value"])
            if state == "error":
                payload = record.get("error")
                if payload:
                    try:
                        exc = decode_obj(payload)
                    except Exception:
                        exc = None
                    if isinstance(exc, BaseException):
                        raise exc
                raise FleetWorkerError(
                    "remote job failed: %s" % record.get("repr")
                )
            raise FleetWorkerError("unexpected result record %r" % (record,))


def fleet_pool_factory(manifest):
    """A ``pool_factory`` for ResilientMap backed by a worker fleet.

    ``manifest`` is a :class:`FleetManifest` or a path to one.  The
    returned factory shares one :class:`FleetDispatcher` across every
    (re)spawn, so worker-eviction state survives timeout teardowns
    instead of re-discovering dead workers after each respawn.
    """
    if isinstance(manifest, (str, Path)):
        manifest = FleetManifest.load(manifest)
    secret = manifest.load_secret()
    dispatcher = FleetDispatcher(manifest, secret=secret)

    def factory(mapper) -> FleetExecutor:
        return FleetExecutor(
            manifest,
            dispatcher=dispatcher,
            initializer=getattr(mapper, "initializer", None),
            initargs=getattr(mapper, "initargs", ()) or (),
            secret=secret,
        )

    return factory
