"""The fleet worker: one process, one HTTP endpoint, one execution slot.

A worker is the remote analogue of a single ``ProcessPoolExecutor``
worker process.  It deliberately runs **one job at a time**: the sweep
worker functions it executes (:mod:`repro.core.runner`,
:mod:`repro.analysis.cachesweep`) cache their engine/evaluator state in
per-process globals, so concurrent execution inside one process would
race.  Scaling happens by running more worker processes, not more
threads — exactly the replicate-don't-share design of the local pool.

Endpoints:

- ``GET /health`` — liveness + identity: pid, busy flag, code version,
  and whether the worker is ``draining``.
- ``POST /run`` — accept a job envelope (:mod:`repro.fleet.wire`).
  Replies 409 when the client's ``code_version_hash`` differs (divergent
  trees must not silently compute different numbers), 503 when the slot
  is busy (the client waits — a job is never queued behind another, so a
  timed-out client can't leave a ghost job racing its retry) or the
  worker is draining (``{"draining": true}`` — the client re-places the
  shard on a sibling uncharged), else ``{"job": <id>}`` and the job runs
  on a background thread.
- ``GET /result?job=<id>`` — poll: ``pending``, ``done`` (+ pickled
  value), or ``error`` (+ pickled exception, so the client re-raises the
  original type just like a local future).  Fetching a finished result
  **evicts** the record (each job has exactly one driving client); a
  record whose client never comes back — it timed out and re-placed the
  shard — is TTL-expired (``jobs_ttl_s``, counter
  ``fleet.worker.jobs_expired``), so a long-lived worker's job table
  stays bounded.

The initializer travels with every job but only runs when its pickled
fingerprint changes — the remote equivalent of the pool running the
initializer once per worker process, amortized across a whole sweep.

**Graceful drain** (SIGTERM or ``POST /drain``): the worker stops
accepting jobs, finishes its in-flight job, waits for the result to be
fetched (bounded by ``drain_grace_s``), deregisters from its gateway if
it joined one, and exits 0 — the *uncharged* decommission path, distinct
from a crash.

Started with ``--register <gateway>``, the worker announces itself to
the gateway at boot and renews a heartbeat lease
(:class:`repro.fleet.membership.RegistrationClient`), so elastic fleets
need no static worker list.
"""

from __future__ import annotations

import threading
import time
import os
import signal
import uuid
from http.server import ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.core.memo import code_version_hash
from repro.fleet.wire import PROTOCOL, JsonRequestHandler, decode_obj, encode_obj
from repro.obs.recorder import get_recorder


class _WorkerState:
    """Mutable slot/job bookkeeping shared across handler threads."""

    def __init__(self, jobs_ttl_s: float = 600.0):
        self.lock = threading.Lock()
        self.busy = False
        self.jobs = {}
        self.done_s = {}  # job_id -> monotonic finish time, for TTL expiry
        self.jobs_ttl_s = jobs_ttl_s
        self.init_fingerprint = None
        self.started_s = time.monotonic()
        self.completed = 0
        self.draining = False

    def _count(self, event: str, n: float = 1) -> None:
        get_recorder().counters.add("fleet.worker." + event, n)

    def expire_jobs(self) -> None:
        """Drop finished records whose client never fetched them."""
        now = time.monotonic()
        with self.lock:
            stale = [
                job_id
                for job_id, at in self.done_s.items()
                if now - at > self.jobs_ttl_s
            ]
            for job_id in stale:
                self.jobs.pop(job_id, None)
                self.done_s.pop(job_id, None)
        if stale:
            self._count("jobs_expired", len(stale))


def _run_job(state: _WorkerState, job_id: str, envelope: dict) -> None:
    """Execute one decoded job envelope; always releases the slot."""
    try:
        init_payload = envelope.get("init")
        if init_payload is not None and init_payload != state.init_fingerprint:
            initializer, initargs = decode_obj(init_payload)
            if initializer is not None:
                initializer(*initargs)
            state.init_fingerprint = init_payload
        fn = decode_obj(envelope["fn"])
        args = decode_obj(envelope.get("args") or encode_obj(()))
        kwargs = decode_obj(envelope.get("kwargs") or encode_obj({}))
        value = fn(*args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - shipped to the client
        try:
            error_payload = encode_obj(exc)
        except Exception:
            error_payload = None
        with state.lock:
            state.jobs[job_id] = {
                "status": "error",
                "error": error_payload,
                "repr": repr(exc),
            }
            state.done_s[job_id] = time.monotonic()
            state.busy = False
        state._count("errors")
    else:
        with state.lock:
            state.jobs[job_id] = {"status": "done", "value": encode_obj(value)}
            state.done_s[job_id] = time.monotonic()
            state.busy = False
            state.completed += 1
        state._count("jobs")


class _WorkerHandler(JsonRequestHandler):
    counter_ns = "fleet.worker."

    # -- routes --------------------------------------------------------
    def route_get(self, body: bytes) -> None:
        state = self.server.state
        state.expire_jobs()
        url = urlparse(self.path)
        if url.path == "/health":
            with state.lock:
                busy = state.busy
                completed = state.completed
                draining = state.draining
            self._reply(
                200,
                {
                    "ok": True,
                    "role": "worker",
                    "pid": os.getpid(),
                    "busy": busy,
                    "draining": draining,
                    "slots": 1,
                    "completed": completed,
                    "uptime_s": round(time.monotonic() - state.started_s, 3),
                    "version": code_version_hash(),
                    "protocol": PROTOCOL,
                },
            )
            return
        if url.path == "/result":
            job_id = (parse_qs(url.query).get("job") or [None])[0]
            if job_id is None:
                self._reply(400, {"error": "missing 'job' query parameter"})
                return
            with state.lock:
                record = state.jobs.get(job_id)
                if record is not None and record.get("status") != "pending":
                    # Single consumer: hand the result over exactly once.
                    del state.jobs[job_id]
                    state.done_s.pop(job_id, None)
            if record is None:
                self._reply(404, {"error": "unknown job %r" % job_id})
                return
            self._reply(200, record)
            return
        self._reply(404, {"error": "unknown path %r" % url.path})

    def route_post(self, body: bytes) -> None:
        state = self.server.state
        state.expire_jobs()
        url = urlparse(self.path)
        if url.path == "/drain":
            self.server.begin_drain("POST /drain")
            self._reply(200, {"ok": True, "draining": True})
            return
        if url.path != "/run":
            self._reply(404, {"error": "unknown path %r" % url.path})
            return
        envelope = self._json(body)
        if not isinstance(envelope, dict):
            self._reply(400, {"error": "malformed job envelope"})
            return
        if envelope.get("protocol") != PROTOCOL:
            self._reply(
                400,
                {"error": "unsupported protocol %r" % envelope.get("protocol")},
            )
            return
        version = code_version_hash()
        if envelope.get("version") != version:
            state._count("version_rejects")
            self._reply(
                409,
                {
                    "error": "code version mismatch: worker runs %s, client sent %s"
                    % (version, envelope.get("version")),
                    "version": version,
                },
            )
            return
        with state.lock:
            if state.draining:
                state._count("drain_rejects")
                self._reply(503, {"error": "draining", "draining": True})
                return
            if state.busy:
                self._reply(503, {"error": "busy", "slots": 1})
                state._count("busy_rejects")
                return
            state.busy = True
            job_id = uuid.uuid4().hex
            state.jobs[job_id] = {"status": "pending"}
        thread = threading.Thread(
            target=_run_job, args=(state, job_id, envelope), daemon=True
        )
        thread.start()
        self._reply(200, {"job": job_id})


class WorkerServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        secret: str | None = None,
        jobs_ttl_s: float = 600.0,
        drain_grace_s: float = 30.0,
    ):
        super().__init__((host, port), _WorkerHandler)
        self.state = _WorkerState(jobs_ttl_s=jobs_ttl_s)
        self.secret = secret
        self.drain_grace_s = drain_grace_s
        self.registration = None  # RegistrationClient when --register'd
        self._drain_lock = threading.Lock()
        self._drain_started = False

    @property
    def port(self) -> int:
        return self.server_address[1]

    def begin_drain(self, reason: str = "") -> None:
        """Stop accepting jobs; finish + hand over the in-flight one; exit.

        Idempotent and non-blocking: the wait happens on a helper thread
        (SIGTERM handlers run on the main thread, which is inside
        ``serve_forever``).
        """
        with self._drain_lock:
            if self._drain_started:
                return
            self._drain_started = True
        with self.state.lock:
            self.state.draining = True
        self.state._count("drains")
        threading.Thread(
            target=self._drain_and_exit, args=(reason,), daemon=True
        ).start()

    def _drain_and_exit(self, reason: str) -> None:
        deadline = time.monotonic() + self.drain_grace_s
        while time.monotonic() < deadline:
            with self.state.lock:
                # Done when the slot is free and every finished result
                # has been fetched (pending entries ride with busy).
                unfetched = [
                    job
                    for job, record in self.state.jobs.items()
                    if record.get("status") != "pending"
                ]
                if not self.state.busy and not unfetched:
                    break
            time.sleep(0.05)
        if self.registration is not None:
            self.registration.stop(deregister=True)
        print(
            "fleet worker pid=%d drained (%s)" % (os.getpid(), reason or "requested"),
            flush=True,
        )
        self.shutdown()


def write_port_file(path, port: int) -> None:
    """Publish the bound port atomically (tmp + rename) for launchers."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp.%d" % os.getpid())
    tmp.write_text("%d\n" % port)
    os.replace(tmp, path)


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    port_file=None,
    register: str | None = None,
    advertise_host: str | None = None,
    weight: int = 1,
    secret: str | None = None,
    jobs_ttl_s: float = 600.0,
    drain_grace_s: float = 30.0,
) -> None:
    """Run a worker until interrupted or drained.

    ``port=0`` binds an ephemeral port.  With ``register`` the worker
    announces itself to that gateway URL and renews a heartbeat lease.
    SIGTERM triggers a graceful drain (finish the in-flight job,
    deregister, exit 0) instead of the crash-dump exit.
    """
    from repro.core.runner import _install_worker_fault_handlers
    from repro.fleet.membership import RegistrationClient, local_member_record

    _install_worker_fault_handlers()
    server = WorkerServer(
        host,
        port,
        secret=secret,
        jobs_ttl_s=jobs_ttl_s,
        drain_grace_s=drain_grace_s,
    )
    # Replace the fault handlers' dump-and-exit SIGTERM with graceful
    # drain — for a fleet worker, SIGTERM means "decommission", and the
    # client must be able to collect the in-flight result first.
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: server.begin_drain("SIGTERM"))
    except (ValueError, OSError):
        pass  # not the main thread (in-process tests): /drain still works
    if port_file is not None:
        write_port_file(port_file, server.port)
    if register:
        record = local_member_record(
            host, server.port, weight=weight, advertise_host=advertise_host
        )
        server.registration = RegistrationClient(register, record, secret=secret)
        server.registration.start()
    print("fleet worker pid=%d listening on http://%s:%d" % (os.getpid(), host, server.port), flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        if server.registration is not None:
            server.registration.stop(deregister=True)
        server.server_close()
