"""The fleet worker: one process, one HTTP endpoint, one execution slot.

A worker is the remote analogue of a single ``ProcessPoolExecutor``
worker process.  It deliberately runs **one job at a time**: the sweep
worker functions it executes (:mod:`repro.core.runner`,
:mod:`repro.analysis.cachesweep`) cache their engine/evaluator state in
per-process globals, so concurrent execution inside one process would
race.  Scaling happens by running more worker processes, not more
threads — exactly the replicate-don't-share design of the local pool.

Endpoints:

- ``GET /health`` — liveness + identity: pid, busy flag, code version.
- ``POST /run`` — accept a job envelope (:mod:`repro.fleet.wire`).
  Replies 409 when the client's ``code_version_hash`` differs (divergent
  trees must not silently compute different numbers), 503 when the slot
  is busy (the client waits — a job is never queued behind another, so a
  timed-out client can't leave a ghost job racing its retry), else
  ``{"job": <id>}`` and the job runs on a background thread.
- ``GET /result?job=<id>`` — poll: ``pending``, ``done`` (+ pickled
  value), or ``error`` (+ pickled exception, so the client re-raises the
  original type just like a local future).

The initializer travels with every job but only runs when its pickled
fingerprint changes — the remote equivalent of the pool running the
initializer once per worker process, amortized across a whole sweep.
"""

from __future__ import annotations

import json
import threading
import time
import os
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.core.memo import code_version_hash
from repro.fleet.wire import PROTOCOL, decode_obj, encode_obj
from repro.obs.recorder import get_recorder


class _WorkerState:
    """Mutable slot/job bookkeeping shared across handler threads."""

    def __init__(self):
        self.lock = threading.Lock()
        self.busy = False
        self.jobs = {}
        self.init_fingerprint = None
        self.started_s = time.monotonic()
        self.completed = 0

    def _count(self, event: str, n: float = 1) -> None:
        get_recorder().counters.add("fleet.worker." + event, n)


def _run_job(state: _WorkerState, job_id: str, envelope: dict) -> None:
    """Execute one decoded job envelope; always releases the slot."""
    try:
        init_payload = envelope.get("init")
        if init_payload is not None and init_payload != state.init_fingerprint:
            initializer, initargs = decode_obj(init_payload)
            if initializer is not None:
                initializer(*initargs)
            state.init_fingerprint = init_payload
        fn = decode_obj(envelope["fn"])
        args = decode_obj(envelope.get("args") or encode_obj(()))
        kwargs = decode_obj(envelope.get("kwargs") or encode_obj({}))
        value = fn(*args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - shipped to the client
        try:
            error_payload = encode_obj(exc)
        except Exception:
            error_payload = None
        with state.lock:
            state.jobs[job_id] = {
                "status": "error",
                "error": error_payload,
                "repr": repr(exc),
            }
            state.busy = False
        state._count("errors")
    else:
        with state.lock:
            state.jobs[job_id] = {"status": "done", "value": encode_obj(value)}
            state.busy = False
            state.completed += 1
        state._count("jobs")


class _WorkerHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # -- plumbing ------------------------------------------------------
    def _reply(self, status: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    # -- routes --------------------------------------------------------
    def do_GET(self):
        state = self.server.state
        url = urlparse(self.path)
        if url.path == "/health":
            with state.lock:
                busy = state.busy
                completed = state.completed
            self._reply(
                200,
                {
                    "ok": True,
                    "role": "worker",
                    "pid": os.getpid(),
                    "busy": busy,
                    "slots": 1,
                    "completed": completed,
                    "uptime_s": round(time.monotonic() - state.started_s, 3),
                    "version": code_version_hash(),
                    "protocol": PROTOCOL,
                },
            )
            return
        if url.path == "/result":
            job_id = (parse_qs(url.query).get("job") or [None])[0]
            with state.lock:
                record = state.jobs.get(job_id)
            if record is None:
                self._reply(404, {"error": "unknown job %r" % job_id})
                return
            self._reply(200, record)
            return
        self._reply(404, {"error": "unknown path %r" % url.path})

    def do_POST(self):
        state = self.server.state
        url = urlparse(self.path)
        if url.path != "/run":
            self._reply(404, {"error": "unknown path %r" % url.path})
            return
        envelope = self._read_json()
        if not isinstance(envelope, dict):
            self._reply(400, {"error": "malformed job envelope"})
            return
        if envelope.get("protocol") != PROTOCOL:
            self._reply(
                400,
                {"error": "unsupported protocol %r" % envelope.get("protocol")},
            )
            return
        version = code_version_hash()
        if envelope.get("version") != version:
            state._count("version_rejects")
            self._reply(
                409,
                {
                    "error": "code version mismatch: worker runs %s, client sent %s"
                    % (version, envelope.get("version")),
                    "version": version,
                },
            )
            return
        with state.lock:
            if state.busy:
                self._reply(503, {"error": "busy", "slots": 1})
                state._count("busy_rejects")
                return
            state.busy = True
            job_id = uuid.uuid4().hex
            state.jobs[job_id] = {"status": "pending"}
        thread = threading.Thread(
            target=_run_job, args=(state, job_id, envelope), daemon=True
        )
        thread.start()
        self._reply(200, {"job": job_id})


class WorkerServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _WorkerHandler)
        self.state = _WorkerState()

    @property
    def port(self) -> int:
        return self.server_address[1]


def write_port_file(path, port: int) -> None:
    """Publish the bound port atomically (tmp + rename) for launchers."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp.%d" % os.getpid())
    tmp.write_text("%d\n" % port)
    os.replace(tmp, path)


def serve_worker(host: str = "127.0.0.1", port: int = 0, port_file=None) -> None:
    """Run a worker until interrupted.  ``port=0`` binds an ephemeral port."""
    from repro.core.runner import _install_worker_fault_handlers

    _install_worker_fault_handlers()
    server = WorkerServer(host, port)
    if port_file is not None:
        write_port_file(port_file, server.port)
    print("fleet worker pid=%d listening on http://%s:%d" % (os.getpid(), host, server.port), flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
