"""repro: reproduction of "Google Workloads for Consumer Devices:
Mitigating Data Movement Bottlenecks" (Boroumand et al., ASPLOS 2018).

The package implements the paper's full pipeline:

1. functional implementations of the four Google consumer workloads
   (:mod:`repro.workloads`): Chrome browser kernels, TensorFlow Mobile
   inference, and a VP9-class video codec (software + hardware models);
2. a characterization substrate (:mod:`repro.sim`, :mod:`repro.energy`):
   instrumented kernel profiles, a trace-driven cache simulator, DRAM
   models, and a component-level energy model;
3. the PIM analysis itself (:mod:`repro.core`): target identification,
   area feasibility, and CPU-Only / PIM-Core / PIM-Acc evaluation;
4. figure/table harnesses (:mod:`repro.analysis`) that regenerate every
   table and figure of the paper's evaluation.

Quickstart::

    from repro import ExperimentRunner
    from repro.workloads.chrome import browser_pim_targets

    runner = ExperimentRunner()
    result = runner.evaluate(browser_pim_targets())
    for row in result.rows():
        print(row["target"], row["energy_pim_acc"], row["speedup_pim_acc"])
"""

from repro.config import (
    SystemConfig,
    SocConfig,
    PimCoreConfig,
    PimAcceleratorConfig,
    StackedMemoryConfig,
    BaselineMemoryConfig,
    default_system,
)
from repro.core import (
    ExperimentRunner,
    OffloadEngine,
    PimTarget,
    TargetComparison,
    characterize,
    WorkloadFunction,
)
from repro.energy import EnergyBreakdown, EnergyModel, EnergyParameters, AreaModel
from repro.sim import CpuModel, PimCoreModel, PimAcceleratorModel, KernelProfile

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "SocConfig",
    "PimCoreConfig",
    "PimAcceleratorConfig",
    "StackedMemoryConfig",
    "BaselineMemoryConfig",
    "default_system",
    "ExperimentRunner",
    "OffloadEngine",
    "PimTarget",
    "TargetComparison",
    "characterize",
    "WorkloadFunction",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParameters",
    "AreaModel",
    "CpuModel",
    "PimCoreModel",
    "PimAcceleratorModel",
    "KernelProfile",
    "__version__",
]
