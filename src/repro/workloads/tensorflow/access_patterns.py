"""Why packing exists: the GEMM kernel's memory access patterns.

gemmlowp packs matrices "to minimize cache misses during matrix
multiplication" (paper Section 5.2).  This module generates the GEMM
inner kernel's actual access streams over packed vs. unpacked operands
so the cache simulator can verify the claim quantitatively.  Two
effects make the row-major (unpacked) walk expensive:

* the micro-kernel consumes ``panel_rows`` operands per depth step that
  sit a full leading dimension apart -- with the power-of-two leading
  dimensions neural layers produce (k = 4096, 8192, ...), those rows map
  to the *same cache set* and thrash a set-associative L1 once the
  micro-kernel is wider than the associativity (conflict misses);
* each depth step needs ``panel_rows`` scattered loads instead of one
  contiguous vector load.

The packed panel-major layout makes the same walk unit-stride, removing
both.
"""

from __future__ import annotations

from repro.sim.trace import AddressSpace, MemoryTrace, TraceRecorder


def gemm_lhs_trace(
    m: int,
    k: int,
    n_blocks: int,
    packed: bool,
    panel_rows: int = 4,
    granularity: int = 16,
) -> MemoryTrace:
    """The kernel's LHS access stream for an (m x k) operand.

    The kernel walks the shared dimension ``k`` once per RHS block,
    consuming ``panel_rows`` LHS rows at a time:

    * **unpacked** (row-major): the ``panel_rows`` operands at depth
      ``d`` live ``k`` bytes apart -- every step touches ``panel_rows``
      distinct cache lines spread over the matrix;
    * **packed** (panel-major): the same operands are adjacent -- the
      kernel streams one contiguous buffer with unit stride.

    Args:
        n_blocks: how many RHS column blocks traverse the LHS (each
            traversal re-reads the whole operand).
    """
    if m <= 0 or k <= 0 or n_blocks <= 0:
        raise ValueError("dimensions must be positive")
    if panel_rows <= 0:
        raise ValueError("panel_rows must be positive")
    space = AddressSpace()
    base = space.alloc(m * k)
    rec = TraceRecorder(granularity=granularity)
    num_panels = (m + panel_rows - 1) // panel_rows
    for _ in range(n_blocks):
        for panel in range(num_panels):
            if packed:
                # Panel-major: the whole panel is one contiguous run.
                rec.read(base + panel * panel_rows * k, panel_rows * k)
            else:
                # Row-major: interleave the panel's rows the way the
                # kernel consumes them -- panel_rows operands per depth
                # step, k bytes apart.
                for depth in range(0, k, granularity):
                    for row in range(panel_rows):
                        r = panel * panel_rows + row
                        if r >= m:
                            continue
                        rec.read(base + r * k + depth, granularity)
    return rec.trace()


def pack_then_kernel_traffic(
    m: int, k: int, n_blocks: int, panel_rows: int = 16
) -> dict:
    """Cache behaviour of both strategies, via the cache simulator.

    Returns L1 miss counts for the unpacked kernel and for the packed
    strategy *including* the one-time packing pass (read + write of the
    operand, ~one miss per line) -- the true trade the paper describes:
    pay a streaming reorganization once, save the kernel's conflict
    misses on every traversal.
    """
    from repro.sim.cache import CacheHierarchy

    unpacked = CacheHierarchy().replay(
        gemm_lhs_trace(m, k, n_blocks, packed=False, panel_rows=panel_rows)
    )
    packed = CacheHierarchy().replay(
        gemm_lhs_trace(m, k, n_blocks, packed=True, panel_rows=panel_rows)
    )
    pack_pass_misses = 2 * m * k / 64.0  # stream in + stream out, once
    return {
        "unpacked_l1_misses": unpacked.l1.misses,
        "packed_kernel_l1_misses": packed.l1.misses,
        "packing_pass_misses": pack_pass_misses,
        "packed_total_misses": packed.l1.misses + pack_pass_misses,
        "unpacked_dram_bytes": unpacked.dram_bytes,
        "packed_kernel_dram_bytes": packed.dram_bytes,
    }
