"""Float-inference baseline and the quantization trade-off (Section 5.2).

The paper's observation: quantization exists to save energy and latency
versus float32 inference, but its pre/post-processing (packing, the
two-scan quantization passes) generates so much data movement that part
of the saving is lost -- and PIM recovers it.  This module makes that
narrative quantitative with three configurations:

* ``float32``      -- no quantization machinery, 4-byte operands;
* ``quantized``    -- uint8 GEMM plus CPU-side packing/quantization;
* ``quantized+PIM``-- uint8 GEMM with packing/quantization on PIM-Acc.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SocConfig
from repro.core.offload import OffloadEngine
from repro.core.workload import WorkloadFunction, offloaded_totals
from repro.sim.profile import KernelProfile
from repro.workloads.tensorflow.network import Network, network_functions


def profile_float_gemm(m: int, k: int, n: int, soc: SocConfig | None = None) -> KernelProfile:
    """One float32 GEMM: 4-byte operands, 4-lane FP SIMD.

    Mirrors :func:`repro.workloads.tensorflow.gemm.profile_gemm` with
    float costs: 4x the traffic per element and a quarter of the SIMD
    lanes (fp32 vs uint8).
    """
    soc = soc or SocConfig()
    llc = soc.l2.size_bytes
    macs = float(m) * k * n
    ops = 2.0 * macs
    n_block = max(min(n, (llc // 2) // max(4 * k, 1)), 1)
    passes_over_lhs = (n + n_block - 1) // n_block
    traffic = (
        4.0 * m * k * passes_over_lhs  # fp32 LHS
        + 4.0 * k * n  # fp32 RHS
        + 4.0 * m * n  # fp32 result
    )
    instructions = ops / 4.0 + traffic / 8.0
    lines = traffic / 64.0
    return KernelProfile(
        name="float_gemm",
        instructions=instructions,
        mem_instructions=macs / 4.0,
        alu_ops=ops / 4.0,
        simd_fraction=0.0,
        l1_misses=lines * 1.5,
        llc_misses=lines,
        dram_bytes=traffic,
        working_set_bytes=float(4 * (m * k + k * n + m * n)),
        notes="fp32 GEMM baseline (no quantization machinery)",
    )


def float_functions(network: Network) -> list[WorkloadFunction]:
    """The float32 inference decomposition: GEMMs + element-wise glue."""
    gemm = None
    other_elements = 0.0
    for layer in network.layers:
        m, k, n = layer.gemm_dims
        lg = profile_float_gemm(m, k, n)
        gemm = lg if gemm is None else gemm.merged(lg, name="float_gemm")
        other_elements += layer.output_elements
    other = KernelProfile.streaming(
        name="other",
        bytes_read=other_elements * 4.0 * 4.0,  # fp32 activations
        bytes_written=other_elements * 4.0 * 4.0,
        ops_per_byte=0.5,
        instruction_overhead=0.2,
        simd_fraction=0.5,
    )
    return [WorkloadFunction("float_gemm", gemm), WorkloadFunction("other", other)]


@dataclass(frozen=True)
class QuantizationTradeoff:
    """Energy/time of the three inference configurations (joules/seconds)."""

    float_energy_j: float
    float_time_s: float
    quantized_energy_j: float
    quantized_time_s: float
    quantized_pim_energy_j: float
    quantized_pim_time_s: float

    @property
    def quantization_saving(self) -> float:
        """Energy saved by quantization alone (CPU pack/quant included)."""
        return 1.0 - self.quantized_energy_j / self.float_energy_j

    @property
    def pim_saving(self) -> float:
        """Energy saved by quantization with PIM-offloaded machinery."""
        return 1.0 - self.quantized_pim_energy_j / self.float_energy_j

    @property
    def overhead_recovered(self) -> float:
        """Fraction of the quantized inference's energy that PIM removes
        (the pack/quant overhead the paper says erodes the gains)."""
        if self.quantized_energy_j <= 0:
            return 0.0
        return 1.0 - self.quantized_pim_energy_j / self.quantized_energy_j


def quantization_tradeoff(
    network: Network, engine: OffloadEngine | None = None
) -> QuantizationTradeoff:
    """Evaluate all three configurations for one network."""
    engine = engine or OffloadEngine()
    float_e = float_t = 0.0
    for f in float_functions(network):
        execution = engine.cpu_model.run(f.profile)
        float_e += execution.energy_j
        float_t += execution.time_s
    functions = network_functions(network)
    cpu = offloaded_totals(functions, engine, use_accelerators=True)
    return QuantizationTradeoff(
        float_energy_j=float_e,
        float_time_s=float_t,
        quantized_energy_j=cpu.cpu_energy_j,
        quantized_time_s=cpu.cpu_time_s,
        quantized_pim_energy_j=cpu.pim_energy_j,
        quantized_pim_time_s=cpu.pim_time_s,
    )
