"""The TensorFlow Mobile workload (paper Section 5).

Inference on quantized neural networks built on a gemmlowp-style
low-precision GEMM stack:

* :mod:`.quantization` -- float32/int32 <-> uint8 quantization and the
  post-GEMM requantization pass (PIM target);
* :mod:`.packing` -- cache-friendly matrix packing/unpacking around the
  GEMM kernel (PIM target);
* :mod:`.gemm` -- the quantized GEMM kernel itself (stays on the CPU);
* :mod:`.network` -- layers, im2col convolution, and the inference
  engine;
* :mod:`.models` -- the four evaluated networks: VGG-19, ResNet-v2-152,
  Inception-ResNet-v2, and Residual-GRU;
* :mod:`.targets` -- PIM targets and workload decompositions for
  Figures 6, 7, and 19.
"""

from repro.workloads.tensorflow.quantization import (
    QuantizedTensor,
    quantize_tensor,
    dequantize_tensor,
    requantize,
    profile_quantization,
    profile_requantization,
)
from repro.workloads.tensorflow.packing import (
    PackedMatrix,
    pack_matrix,
    unpack_matrix,
    profile_packing,
    profile_unpacking,
)
from repro.workloads.tensorflow.gemm import (
    quantized_gemm,
    quantized_gemm_reference,
    profile_gemm,
)
from repro.workloads.tensorflow.network import (
    ConvLayer,
    FcLayer,
    Network,
    im2col,
    conv2d_quantized,
    infer,
    network_functions,
)
from repro.workloads.tensorflow.models import (
    vgg19,
    resnet_v2_152,
    inception_resnet_v2,
    residual_gru,
    all_models,
)
from repro.workloads.tensorflow.access_patterns import (
    gemm_lhs_trace,
    pack_then_kernel_traffic,
)
from repro.workloads.tensorflow.layer_report import (
    LayerReport,
    layer_reports,
    render_table,
    top_layers_by_energy,
)
from repro.workloads.tensorflow.float_baseline import (
    QuantizationTradeoff,
    profile_float_gemm,
    quantization_tradeoff,
)
from repro.workloads.tensorflow.targets import (
    tensorflow_pim_targets,
    packing_target,
    quantization_target,
)

__all__ = [
    "QuantizedTensor",
    "quantize_tensor",
    "dequantize_tensor",
    "requantize",
    "profile_quantization",
    "profile_requantization",
    "PackedMatrix",
    "pack_matrix",
    "unpack_matrix",
    "profile_packing",
    "profile_unpacking",
    "quantized_gemm",
    "quantized_gemm_reference",
    "profile_gemm",
    "ConvLayer",
    "FcLayer",
    "Network",
    "im2col",
    "conv2d_quantized",
    "infer",
    "network_functions",
    "vgg19",
    "resnet_v2_152",
    "inception_resnet_v2",
    "residual_gru",
    "all_models",
    "tensorflow_pim_targets",
    "packing_target",
    "quantization_target",
    "QuantizationTradeoff",
    "profile_float_gemm",
    "quantization_tradeoff",
    "LayerReport",
    "layer_reports",
    "render_table",
    "top_layers_by_energy",
    "gemm_lhs_trace",
    "pack_then_kernel_traffic",
]
