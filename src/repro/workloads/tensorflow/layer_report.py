"""Per-layer inference analysis.

Figure 19 evaluates "the four most time- and energy-consuming GEMM
operations for each input network"; this module provides the tooling
that selection implies: a per-layer table of GEMM shape, MACs,
pack/quantize overhead, and data movement, plus rankings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.offload import OffloadEngine
from repro.workloads.tensorflow.gemm import profile_gemm
from repro.workloads.tensorflow.network import Network
from repro.workloads.tensorflow.packing import profile_packing, profile_unpacking
from repro.workloads.tensorflow.quantization import (
    profile_quantization,
    profile_requantization,
)


@dataclass(frozen=True)
class LayerReport:
    """One layer's GEMM and overhead characterization."""

    name: str
    m: int
    k: int
    n: int
    macs: float
    gemm_energy_j: float
    gemm_time_s: float
    overhead_energy_j: float  # pack + unpack + quantize + requantize
    overhead_time_s: float

    @property
    def overhead_energy_share(self) -> float:
        total = self.gemm_energy_j + self.overhead_energy_j
        return self.overhead_energy_j / total if total > 0 else 0.0

    @property
    def overhead_time_share(self) -> float:
        total = self.gemm_time_s + self.overhead_time_s
        return self.overhead_time_s / total if total > 0 else 0.0


def layer_reports(
    network: Network, engine: OffloadEngine | None = None
) -> list[LayerReport]:
    """Characterize every layer of ``network`` on the CPU."""
    engine = engine or OffloadEngine()
    cpu = engine.cpu_model
    reports = []
    for layer in network.layers:
        m, k, n = layer.gemm_dims
        gemm = cpu.run(profile_gemm(m, k, n))
        overhead_profile = (
            profile_packing(float(m * k + k * n))
            .merged(profile_unpacking(float(m * n)), name="overhead")
            .merged(profile_quantization(float(layer.input_elements)), name="overhead")
            .merged(profile_requantization(float(m * n)), name="overhead")
        )
        overhead = cpu.run(overhead_profile)
        reports.append(
            LayerReport(
                name=layer.name,
                m=m, k=k, n=n,
                macs=layer.macs,
                gemm_energy_j=gemm.energy_j,
                gemm_time_s=gemm.time_s,
                overhead_energy_j=overhead.energy_j,
                overhead_time_s=overhead.time_s,
            )
        )
    return reports


def top_layers_by_energy(network: Network, count: int = 4) -> list[LayerReport]:
    """The paper's Figure 19 selection: heaviest GEMMs by total energy."""
    reports = layer_reports(network)
    return sorted(
        reports,
        key=lambda r: r.gemm_energy_j + r.overhead_energy_j,
        reverse=True,
    )[:count]


def render_table(reports: list[LayerReport], limit: int = 20) -> str:
    """A human-readable per-layer table."""
    lines = [
        "%-18s %6s %6s %6s %10s %9s %9s %8s"
        % ("layer", "M", "K", "N", "MACs", "gemm mJ", "ovh mJ", "ovh %")
    ]
    for r in reports[:limit]:
        lines.append(
            "%-18s %6d %6d %6d %10.2e %9.3f %9.3f %7.1f%%"
            % (
                r.name[:18], r.m, r.k, r.n, r.macs,
                r.gemm_energy_j * 1e3, r.overhead_energy_j * 1e3,
                100 * r.overhead_energy_share,
            )
        )
    return "\n".join(lines)
