"""TensorFlow Mobile PIM targets and the Figure 19 pipeline model.

Figure 19 (left) evaluates packing and quantization for the four most
time/energy-consuming GEMM operations of each network; Figure 19 (right)
sweeps the number of GEMM operations: the CPU-Only configuration runs
pack -> GEMM -> requantize -> unpack serially, while the PIM
configurations overlap packing/quantization (on PIM logic) with the
CPU's GEMM execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.offload import OffloadEngine
from repro.core.target import PimTarget
from repro.energy.components import EnergyParameters
from repro.workloads.tensorflow.gemm import profile_gemm
from repro.workloads.tensorflow.models import all_models
from repro.workloads.tensorflow.network import Network
from repro.workloads.tensorflow.packing import profile_packing, profile_unpacking
from repro.workloads.tensorflow.quantization import (
    profile_quantization,
    profile_requantization,
)


def top_gemm_layers(network: Network, count: int = 4) -> list:
    """The ``count`` largest layers by GEMM work (the paper's selection)."""
    return sorted(network.layers, key=lambda l: l.macs, reverse=True)[:count]


def packing_target(network: Network, layer_count: int = 4) -> PimTarget:
    """Packing/unpacking for the top ``layer_count`` GEMMs of a network."""
    profile = None
    for layer in top_gemm_layers(network, layer_count):
        m, k, n = layer.gemm_dims
        lp = profile_packing(float(m * k + k * n)).merged(
            profile_unpacking(float(m * n)), name="packing"
        )
        profile = lp if profile is None else profile.merged(lp, name="packing")
    return PimTarget(
        name="packing",
        profile=profile,
        accelerator_key="packing",
        invocations=layer_count,
        workload="tensorflow:%s" % network.name,
    )


def quantization_target(network: Network, layer_count: int = 4) -> PimTarget:
    """Quantize+requantize for the top ``layer_count`` GEMMs of a network."""
    profile = None
    for layer in top_gemm_layers(network, layer_count):
        m, k, n = layer.gemm_dims
        lq = profile_quantization(float(layer.input_elements)).merged(
            profile_requantization(float(m * n)), name="quantization"
        )
        profile = lq if profile is None else profile.merged(lq, name="quantization")
    return PimTarget(
        name="quantization",
        profile=profile,
        accelerator_key="quantization",
        invocations=2 * layer_count,
        workload="tensorflow:%s" % network.name,
    )


def tensorflow_pim_targets(networks: list[Network] | None = None) -> list[PimTarget]:
    """Packing + quantization targets aggregated over the four networks."""
    networks = networks or all_models()
    targets = []
    pack = None
    quant = None
    for net in networks:
        p = packing_target(net).profile
        q = quantization_target(net).profile
        pack = p if pack is None else pack.merged(p, name="packing")
        quant = q if quant is None else quant.merged(q, name="quantization")
    targets.append(
        PimTarget(
            name="packing",
            profile=pack,
            accelerator_key="packing",
            invocations=4 * len(networks),
            workload="tensorflow",
        )
    )
    targets.append(
        PimTarget(
            name="quantization",
            profile=quant,
            accelerator_key="quantization",
            invocations=8 * len(networks),
            workload="tensorflow",
        )
    )
    return targets


# ----------------------------------------------------------------------
# Figure 19 (right): speedup vs number of GEMM operations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GemmPipelinePoint:
    """Speedups for one GEMM count in the Figure 19 sweep."""

    num_gemms: int
    cpu_time_s: float
    pim_core_time_s: float
    pim_acc_time_s: float

    @property
    def pim_core_speedup(self) -> float:
        return self.cpu_time_s / self.pim_core_time_s

    @property
    def pim_acc_speedup(self) -> float:
        return self.cpu_time_s / self.pim_acc_time_s


class GemmPipelineModel:
    """Times the pack/quantize/GEMM pipeline of Figure 19 (right).

    CPU-Only: ``n * (t_pack_quant + t_gemm)`` -- everything serialized on
    the CPU.  PIM: a two-stage pipeline -- PIM logic packs/quantizes chunk
    ``i+1`` while the CPU runs GEMM ``i`` -- so the steady state is bound
    by the slower stage, plus the first chunk's un-hidden preparation:

        time(n) = max(n * t_gemm, n * t_prep_pim) + t_prep_pim
    """

    #: Representative GEMM shape ("we use the result matrix sizes of
    #: GEMMs to reflect real-world usage", Section 9): a weight-dominated
    #: chunk whose pack/quantize cost is a sizable fraction of the kernel.
    GEMM_M = 64
    GEMM_K = 4096
    GEMM_N = 256

    def __init__(
        self,
        network: Network | None = None,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        from repro.workloads.tensorflow.models import vgg19

        self.network = network or vgg19()
        self.engine = OffloadEngine(system, energy_params)
        m, k, n = self.GEMM_M, self.GEMM_K, self.GEMM_N
        self._gemm = profile_gemm(m, k, n)
        pack = profile_packing(float(m * k + k * n)).merged(
            profile_unpacking(float(m * n)), name="packing"
        )
        quant = profile_quantization(float(m * k)).merged(
            profile_requantization(float(m * n)), name="quantization"
        )
        self._prep = pack.merged(quant, name="pack_quant")
        self._prep_target = PimTarget(
            name="pack_quant",
            profile=self._prep,
            accelerator_key="packing",
            invocations=1,
            workload="tensorflow",
        )

    def sweep(self, gemm_counts: list[int]) -> list[GemmPipelinePoint]:
        t_gemm = self.engine.cpu_model.run(self._gemm).time_s
        t_prep_cpu = self.engine.cpu_model.run(self._prep).time_s
        t_prep_core = self.engine.run_pim_core(self._prep_target).time_s
        t_prep_acc = self.engine.run_pim_acc(self._prep_target).time_s
        points = []
        for n in gemm_counts:
            if n < 1:
                raise ValueError("GEMM count must be >= 1")
            cpu = n * (t_gemm + t_prep_cpu)
            core = self._pim_time(n, t_gemm, t_prep_core)
            acc = self._pim_time(n, t_gemm, t_prep_acc)
            points.append(
                GemmPipelinePoint(
                    num_gemms=n, cpu_time_s=cpu, pim_core_time_s=core, pim_acc_time_s=acc
                )
            )
        return points

    def _pim_time(self, n: int, t_gemm: float, t_prep_pim: float) -> float:
        steady = max(n * t_gemm, n * t_prep_pim)
        return steady + t_prep_pim
