"""The four evaluated networks (paper Section 3.1).

* VGG-19 and ResNet-v2-152 are encoded exactly from their published
  architectures (VGG: 16 convs + 3 FC = 19 GEMM ops; ResNet-v2-152:
  bottleneck stages [3, 8, 36, 3] -> 156 Conv2D ops, matching the
  paper's count in Section 5.3).
* Inception-ResNet-v2 is encoded block-by-block at slightly coarser
  granularity (each Inception branch becomes its equivalent convs).
* Residual-GRU (Toderici et al. full-resolution image compression) is
  approximated as its convolutional-GRU gate convolutions unrolled over
  iterations on a 320x240 input; each GRU layer contributes three gate
  convolutions per step.

Only aggregate GEMM shapes matter for the data-movement analysis, so the
coarser encodings preserve the relevant behaviour (documented in
DESIGN.md).
"""

from __future__ import annotations

from repro.workloads.tensorflow.network import ConvLayer, FcLayer, Network


def _conv(name, hw, in_c, out_c, k, stride=1):
    pad = k // 2
    return ConvLayer(
        name=name, in_h=hw[0], in_w=hw[1], in_c=in_c, out_c=out_c,
        kernel=k, stride=stride, padding=pad,
    )


def vgg19() -> Network:
    """VGG-19 [131]: 16 3x3 convolutions + 3 fully-connected layers."""
    layers = []
    spec = [
        (224, 3, 64, 2),
        (112, 64, 128, 2),
        (56, 128, 256, 4),
        (28, 256, 512, 4),
        (14, 512, 512, 4),
    ]
    for size, in_c, out_c, count in spec:
        c = in_c
        for i in range(count):
            layers.append(_conv("conv%d_%d" % (size, i), (size, size), c, out_c, 3))
            c = out_c
    layers.append(FcLayer("fc6", 7 * 7 * 512, 4096))
    layers.append(FcLayer("fc7", 4096, 4096))
    layers.append(FcLayer("fc8", 4096, 1000))
    return Network(name="VGG-19", layers=tuple(layers))


def resnet_v2_152() -> Network:
    """ResNet-v2-152 [62]: bottleneck stages [3, 8, 36, 3] -> 156 convs."""
    layers = [_conv("conv1", (224, 224), 3, 64, 7, stride=2)]
    stages = [
        (56, 64, 3),
        (28, 128, 8),
        (14, 256, 36),
        (7, 512, 3),
    ]
    in_c = 64
    for size, c, blocks in stages:
        for b in range(blocks):
            prefix = "s%d_b%d" % (size, b)
            if b == 0:
                # Projection shortcut into the new channel width.
                layers.append(_conv(prefix + "_proj", (size, size), in_c, 4 * c, 1))
            layers.append(_conv(prefix + "_1x1a", (size, size), in_c if b == 0 else 4 * c, c, 1))
            layers.append(_conv(prefix + "_3x3", (size, size), c, c, 3))
            layers.append(_conv(prefix + "_1x1b", (size, size), c, 4 * c, 1))
        in_c = 4 * c
    layers.append(FcLayer("logits", 2048, 1001))
    return Network(name="ResNet-V2-152", layers=tuple(layers))


def inception_resnet_v2() -> Network:
    """Inception-ResNet-v2 [137], block-wise encoding."""
    layers = [
        _conv("stem1", (299, 299), 3, 32, 3, stride=2),
        _conv("stem2", (149, 149), 32, 32, 3),
        _conv("stem3", (149, 149), 32, 64, 3),
        _conv("stem4", (74, 74), 64, 80, 1),
        _conv("stem5", (74, 74), 80, 192, 3),
        _conv("stem6", (36, 36), 192, 320, 3, stride=2),
    ]
    # 10x Inception-ResNet-A at 35x35 (base 320): branches 1x1-32,
    # 1x1-32 + 3x3-32, 1x1-32 + 3x3-48 + 3x3-64, then 1x1-384 projection.
    for i in range(10):
        p = "a%d" % i
        layers += [
            _conv(p + "_b0", (35, 35), 320, 32, 1),
            _conv(p + "_b1a", (35, 35), 320, 32, 1),
            _conv(p + "_b1b", (35, 35), 32, 32, 3),
            _conv(p + "_b2a", (35, 35), 320, 32, 1),
            _conv(p + "_b2b", (35, 35), 32, 48, 3),
            _conv(p + "_b2c", (35, 35), 48, 64, 3),
            _conv(p + "_proj", (35, 35), 128, 320, 1),
        ]
    layers.append(_conv("redA", (35, 35), 320, 1088, 3, stride=2))
    # 20x Inception-ResNet-B at 17x17 (base 1088).
    for i in range(20):
        p = "b%d" % i
        layers += [
            _conv(p + "_b0", (17, 17), 1088, 192, 1),
            _conv(p + "_b1a", (17, 17), 1088, 128, 1),
            _conv(p + "_b1b", (17, 17), 128, 192, 3),
            _conv(p + "_proj", (17, 17), 384, 1088, 1),
        ]
    layers.append(_conv("redB", (17, 17), 1088, 2080, 3, stride=2))
    # 10x Inception-ResNet-C at 8x8 (base 2080).
    for i in range(10):
        p = "c%d" % i
        layers += [
            _conv(p + "_b0", (8, 8), 2080, 192, 1),
            _conv(p + "_b1a", (8, 8), 2080, 192, 1),
            _conv(p + "_b1b", (8, 8), 192, 256, 3),
            _conv(p + "_proj", (8, 8), 448, 2080, 1),
        ]
    layers.append(_conv("final", (8, 8), 2080, 1536, 1))
    layers.append(FcLayer("logits", 1536, 1001))
    return Network(name="Inception-ResNet", layers=tuple(layers))


def residual_gru(iterations: int = 16) -> Network:
    """Residual-GRU image compression [141] on one 32x32 patch.

    The Toderici et al. network compresses images patch-by-patch:
    encoder (input conv + 3 conv-GRU layers), binarizer, decoder (conv +
    4 conv-GRU layers + reconstruction), iterated ``iterations`` times on
    the residual.  Each conv-GRU step costs three gate convolutions.
    Because the spatial extent is tiny (M of the lowered GEMM is 16-256)
    while the hidden states are wide, the GEMMs are weight-dominated --
    gemmlowp re-packs the weight matrix on every call, which is why this
    network is packing-heavy in Figure 6.
    """
    layers = [_conv("enc_in", (32, 32), 3, 64, 3, stride=2)]
    enc_gru = [(16, 16, 64, 256), (8, 8, 256, 512), (4, 4, 512, 512)]
    dec_gru = [(4, 4, 512, 512), (8, 8, 512, 512), (16, 16, 512, 256), (32, 32, 256, 128)]
    for step in range(iterations):
        for li, (h, w, in_c, hidden) in enumerate(enc_gru):
            for gate in ("z", "r", "h"):
                layers.append(
                    _conv("it%d_enc%d_%s" % (step, li, gate), (h, w), in_c + hidden, hidden, 3)
                )
        layers.append(_conv("it%d_binarizer" % step, (4, 4), 512, 32, 1))
        layers.append(_conv("it%d_dec_in" % step, (4, 4), 32, 512, 1))
        for li, (h, w, in_c, hidden) in enumerate(dec_gru):
            for gate in ("z", "r", "h"):
                layers.append(
                    _conv("it%d_dec%d_%s" % (step, li, gate), (h, w), in_c + hidden, hidden, 3)
                )
        layers.append(_conv("it%d_recon" % step, (32, 32), 128, 3, 1))
    return Network(name="Residual-GRU", layers=tuple(layers))


def all_models() -> list[Network]:
    """The four networks in the paper's figure order."""
    return [resnet_v2_152(), vgg19(), residual_gru(), inception_resnet_v2()]
