"""Quantized GEMM (the gemmlowp kernel; paper Section 5.3).

The GEMM kernel itself is *not* a PIM target -- it is compute-intensive
(67.5% of its energy is computation) and would need large PIM logic --
but it must be modeled because Figures 6/7/19 report packing and
quantization relative to it.

``quantized_gemm`` is a functional implementation that really consumes
the packed panels produced by :mod:`repro.workloads.tensorflow.packing`,
with correct zero-point handling:

    C[i, j] = sum_k (A[i, k] - za) * (B[k, j] - zb)      (int32)
"""

from __future__ import annotations

import numpy as np

from repro.config import SocConfig
from repro.sim.profile import KernelProfile
from repro.workloads.tensorflow.packing import pack_matrix
from repro.workloads.tensorflow.quantization import QuantizedTensor


def quantized_gemm_reference(lhs: QuantizedTensor, rhs: QuantizedTensor) -> np.ndarray:
    """Direct int32 reference: (A - za) @ (B - zb)."""
    a = lhs.values.astype(np.int32) - np.int32(lhs.zero_point)
    b = rhs.values.astype(np.int32) - np.int32(rhs.zero_point)
    return a @ b


def quantized_gemm(
    lhs: QuantizedTensor, rhs: QuantizedTensor, panel_rows: int = 4
) -> np.ndarray:
    """Panel-wise quantized GEMM over a packed LHS.

    Packs the LHS exactly as gemmlowp would, then runs the kernel panel by
    panel.  Bit-identical to :func:`quantized_gemm_reference`.
    """
    if lhs.values.ndim != 2 or rhs.values.ndim != 2:
        raise ValueError("quantized_gemm expects 2-D operands")
    m, k = lhs.values.shape
    k2, n = rhs.values.shape
    if k != k2:
        raise ValueError("shape mismatch: (%d,%d) @ (%d,%d)" % (m, k, k2, n))
    packed = pack_matrix(lhs.values, panel_rows=panel_rows)
    b = rhs.values.astype(np.int32) - np.int32(rhs.zero_point)
    out = np.empty((packed.num_panels * panel_rows, n), dtype=np.int32)
    for p in range(packed.num_panels):
        panel = packed.panel(p).astype(np.int32) - np.int32(lhs.zero_point)
        # Padding rows contribute (0 - za) * b; they are sliced away below,
        # so compute them with the true zero value instead.
        out[p * panel_rows : (p + 1) * panel_rows] = panel @ b
    return out[:m]


def profile_gemm(
    m: int, k: int, n: int, soc: SocConfig | None = None
) -> KernelProfile:
    """Analytic profile of one uint8 GEMM of shape (m, k) x (k, n).

    Compute: 2*m*n*k multiply-accumulate ops, executed with 16-lane uint8
    SIMD on the CPU (instruction count = ops / 16 plus panel loads).
    Traffic: with LLC blocking, each operand panel is fetched once per
    block of the other operand's traversal; the int32 result is written
    once.
    """
    soc = soc or SocConfig()
    llc = soc.l2.size_bytes
    macs = float(m) * k * n
    ops = 2.0 * macs
    # Block the RHS into column strips that fit in half the LLC alongside
    # an LHS panel: n_block columns of K rows of 1 B each.
    n_block = max(min(n, (llc // 2) // max(k, 1)), 1)
    passes_over_lhs = (n + n_block - 1) // n_block
    traffic_lhs = float(m) * k * passes_over_lhs  # uint8
    traffic_rhs = float(k) * n  # uint8, each strip read once
    traffic_out = 4.0 * m * n  # int32 written
    dram_bytes = traffic_lhs + traffic_rhs + traffic_out
    instructions = ops / 16.0 + dram_bytes / 8.0
    lines = dram_bytes / 64.0
    return KernelProfile(
        name="conv2d_matmul",
        instructions=instructions,
        mem_instructions=macs / 16.0,
        alu_ops=ops / 16.0,
        simd_fraction=0.0,  # stays on the CPU; not offloaded
        l1_misses=lines * 1.5,
        llc_misses=lines,
        dram_bytes=dram_bytes,
        working_set_bytes=float(m * k + k * n + 4 * m * n),
        notes="quantized GEMM kernel (not a PIM target)",
    )
