"""Quantization (paper Section 5.3, Figure 8).

TensorFlow Mobile quantizes twice per Conv2D: the 32-bit input matrix is
quantized to 8-bit before the GEMM, and the 32-bit result matrix is
*re-quantized* to 8-bit afterwards.  Each quantization scans the matrix
twice -- once to find min/max, once to convert -- so large matrices are
streamed over the off-chip channel twice, which is what makes this a PIM
target (73.5% of quantization energy is data movement for ResNet).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.profile import KernelProfile


@dataclass(frozen=True)
class QuantizedTensor:
    """An 8-bit tensor with its affine dequantization parameters.

    ``real_value = scale * (quantized_value - zero_point)``.
    """

    values: np.ndarray  # uint8
    scale: float
    zero_point: int

    @property
    def shape(self) -> tuple:
        return self.values.shape


def quantize_tensor(x: np.ndarray) -> QuantizedTensor:
    """Quantize a float tensor to uint8 (TensorFlow-style affine scheme).

    Pass 1 scans for min/max; pass 2 converts each element -- the same
    two-scan structure (and therefore the same data movement) as
    TensorFlow Mobile's quantization routine.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.size == 0:
        raise ValueError("cannot quantize an empty tensor")
    lo = float(x.min())
    hi = float(x.max())
    # The representable range must include 0 so zero_point is exact.
    lo = min(lo, 0.0)
    hi = max(hi, 0.0)
    if hi == lo:
        return QuantizedTensor(
            values=np.zeros(x.shape, dtype=np.uint8), scale=1.0, zero_point=0
        )
    scale = (hi - lo) / 255.0
    zero_point = int(round(-lo / scale))
    zero_point = max(0, min(255, zero_point))
    q = np.clip(np.round(x / scale) + zero_point, 0, 255).astype(np.uint8)
    return QuantizedTensor(values=q, scale=scale, zero_point=zero_point)


def dequantize_tensor(q: QuantizedTensor) -> np.ndarray:
    """Recover float values (lossy inverse of :func:`quantize_tensor`)."""
    return (q.values.astype(np.float32) - q.zero_point) * q.scale


def requantize(acc: np.ndarray, result_scale: float) -> QuantizedTensor:
    """Re-quantize a 32-bit GEMM accumulator matrix to uint8.

    ``acc`` holds int32 sums of products of (uint8 - zero_point) values;
    ``result_scale`` is the product of the input scales.  Scans the matrix
    twice (min/max, then convert), like TensorFlow Mobile.
    """
    acc = np.asarray(acc, dtype=np.int64)
    real = acc.astype(np.float64) * result_scale
    return quantize_tensor(real.astype(np.float32))


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def _quantization_profile(name: str, elements: float, element_bytes: int) -> KernelProfile:
    """Two streaming scans of the matrix plus one 1-byte-per-element write.

    Per element: read ``element_bytes`` twice (min/max pass + convert
    pass), write 1 byte; ~3 ALU ops for the compare/scale/round work,
    fully vectorizable.
    """
    bytes_read = 2.0 * elements * element_bytes
    bytes_written = float(elements)
    total = bytes_read + bytes_written
    ops_per_byte = 3.0 * elements / total
    return KernelProfile.streaming(
        name=name,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        ops_per_byte=ops_per_byte,
        instruction_overhead=0.05,
        simd_fraction=0.9,
        notes="two-scan min/max quantization (Section 5.3)",
    )


def profile_quantization(elements: float) -> KernelProfile:
    """Profile of quantizing ``elements`` float32 values to uint8."""
    return _quantization_profile("quantization", elements, element_bytes=4)


def profile_requantization(elements: float) -> KernelProfile:
    """Profile of re-quantizing ``elements`` int32 accumulators to uint8."""
    return _quantization_profile("quantization", elements, element_bytes=4)
