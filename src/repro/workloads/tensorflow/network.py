"""Neural-network layers and the quantized inference engine (Section 5).

Layers are described by their shapes; convolution is lowered to GEMM via
im2col exactly as TensorFlow Mobile does (Conv2D of a HxWxC input with
KxKxCxF filters becomes a (out_h*out_w, K*K*C) x (K*K*C, F) GEMM).

Two uses:

* **functional**: :func:`infer` runs a real quantized forward pass
  (quantize -> pack -> GEMM -> requantize per layer) on small inputs --
  this is what the correctness tests exercise;
* **analytic**: :func:`network_functions` produces the workload
  decomposition (Packing / Quantization / Conv2D+MatMul / Other) used by
  the Figure 6 and 7 harnesses, with traffic computed from layer shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.workload import WorkloadFunction
from repro.sim.profile import KernelProfile
from repro.workloads.tensorflow.gemm import profile_gemm, quantized_gemm
from repro.workloads.tensorflow.packing import (
    profile_packing,
    profile_unpacking,
)
from repro.workloads.tensorflow.quantization import (
    QuantizedTensor,
    dequantize_tensor,
    profile_quantization,
    profile_requantization,
    quantize_tensor,
    requantize,
)

MB = 1024 * 1024


@dataclass(frozen=True)
class ConvLayer:
    """A 2-D convolution layer (square kernel, same stride both ways)."""

    name: str
    in_h: int
    in_w: int
    in_c: int
    out_c: int
    kernel: int
    stride: int = 1
    padding: int = 0

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def gemm_dims(self) -> tuple[int, int, int]:
        """(M, K, N) of the lowered GEMM."""
        return (
            self.out_h * self.out_w,
            self.kernel * self.kernel * self.in_c,
            self.out_c,
        )

    @property
    def input_elements(self) -> int:
        return self.in_h * self.in_w * self.in_c

    @property
    def output_elements(self) -> int:
        return self.out_h * self.out_w * self.out_c

    @property
    def macs(self) -> float:
        m, k, n = self.gemm_dims
        return float(m) * k * n


@dataclass(frozen=True)
class FcLayer:
    """A fully-connected (MatMul) layer."""

    name: str
    in_features: int
    out_features: int

    @property
    def gemm_dims(self) -> tuple[int, int, int]:
        return (1, self.in_features, self.out_features)

    @property
    def input_elements(self) -> int:
        return self.in_features

    @property
    def output_elements(self) -> int:
        return self.out_features

    @property
    def macs(self) -> float:
        return float(self.in_features) * self.out_features


Layer = "ConvLayer | FcLayer"


@dataclass(frozen=True)
class Network:
    """An inference graph: an ordered list of GEMM-backed layers."""

    name: str
    layers: tuple

    @property
    def num_conv2d(self) -> int:
        return sum(1 for layer in self.layers if isinstance(layer, ConvLayer))

    @property
    def total_macs(self) -> float:
        return sum(layer.macs for layer in self.layers)


# ----------------------------------------------------------------------
# Functional path (used on small inputs by the tests / examples)
# ----------------------------------------------------------------------
def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0, pad_value=0
) -> np.ndarray:
    """Lower a HxWxC tensor to the (out_h*out_w, k*k*C) patch matrix.

    ``pad_value`` fills the border when ``padding > 0``; quantized callers
    must pass their zero point so padding represents a real zero.
    """
    if x.ndim != 3:
        raise ValueError("im2col expects a HxWxC tensor")
    h, w, c = x.shape
    if padding:
        x = np.pad(
            x,
            ((padding, padding), (padding, padding), (0, 0)),
            constant_values=pad_value,
        )
        h, w = x.shape[:2]
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel %d does not fit input %dx%d" % (kernel, h, w))
    rows = np.empty((out_h * out_w, kernel * kernel * c), dtype=x.dtype)
    idx = 0
    for oy in range(out_h):
        for ox in range(out_w):
            patch = x[
                oy * stride : oy * stride + kernel,
                ox * stride : ox * stride + kernel,
                :,
            ]
            rows[idx] = patch.reshape(-1)
            idx += 1
    return rows


def conv2d_quantized(
    x: np.ndarray, weights: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """A full quantized Conv2D: quantize -> im2col -> GEMM -> requantize.

    Args:
        x: float32 input, HxWxC.
        weights: float32 filters, k x k x C x F.

    Returns:
        float32 output (out_h, out_w, F), after dequantizing the uint8
        result (so callers can chain layers / compare against a float
        reference within quantization error).
    """
    if weights.ndim != 4:
        raise ValueError("weights must be k x k x C x F")
    kernel = weights.shape[0]
    if weights.shape[1] != kernel:
        raise ValueError("only square kernels are supported")
    if weights.shape[2] != x.shape[2]:
        raise ValueError("channel mismatch")
    f = weights.shape[3]
    xq = quantize_tensor(x)
    wq = quantize_tensor(weights)
    patches = im2col(xq.values, kernel, stride, padding, pad_value=xq.zero_point)
    lhs = QuantizedTensor(values=patches, scale=xq.scale, zero_point=xq.zero_point)
    rhs = QuantizedTensor(
        values=wq.values.reshape(-1, f), scale=wq.scale, zero_point=wq.zero_point
    )
    acc = quantized_gemm(lhs, rhs)
    out_q = requantize(acc, xq.scale * wq.scale)
    h = (x.shape[0] + 2 * padding - kernel) // stride + 1
    w = (x.shape[1] + 2 * padding - kernel) // stride + 1
    return dequantize_tensor(out_q).reshape(h, w, f)


def infer(network: Network, x: np.ndarray, rng: np.random.Generator | None = None):
    """Run a full (random-weight) quantized forward pass of ``network``.

    Weights are generated deterministically from the layer name; intended
    for small test networks, not the full paper models.
    """
    rng = rng or np.random.default_rng(0)
    activations = np.asarray(x, dtype=np.float32)
    for layer in network.layers:
        if isinstance(layer, ConvLayer):
            weights = rng.standard_normal(
                (layer.kernel, layer.kernel, layer.in_c, layer.out_c)
            ).astype(np.float32)
            activations = conv2d_quantized(
                activations, weights, stride=layer.stride, padding=layer.padding
            )
            activations = np.maximum(activations, 0.0)  # ReLU
        elif isinstance(layer, FcLayer):
            flat = activations.reshape(1, -1)
            if flat.shape[1] != layer.in_features:
                raise ValueError(
                    "layer %s expects %d features, got %d"
                    % (layer.name, layer.in_features, flat.shape[1])
                )
            weights = rng.standard_normal(
                (layer.in_features, layer.out_features)
            ).astype(np.float32)
            xq = quantize_tensor(flat)
            wq = quantize_tensor(weights)
            acc = quantized_gemm(xq, wq)
            out_q = requantize(acc, xq.scale * wq.scale)
            activations = dequantize_tensor(out_q)
        else:
            raise TypeError("unknown layer type %r" % (layer,))
    return activations


# ----------------------------------------------------------------------
# Analytic path (Figures 6/7)
# ----------------------------------------------------------------------
def network_functions(network: Network) -> list[WorkloadFunction]:
    """Decompose one inference into the paper's four buckets.

    Packing = gemmlowp pack of both GEMM operands plus unpack of the
    int32 result; Quantization = input quantization plus result
    requantization (one pair per Conv2D/MatMul, Figure 8); Conv2D+MatMul
    = the GEMM kernels; Other = activation functions, pooling, and
    element-wise glue (each <1% individually).
    """
    pack_profile = None
    quant_profile = None
    gemm_profile = None
    other_elements = 0.0
    for layer in network.layers:
        m, k, n = layer.gemm_dims
        lp = profile_packing(float(m * k + k * n)).merged(
            profile_unpacking(float(m * n)), name="packing"
        )
        lq = profile_quantization(float(layer.input_elements)).merged(
            profile_requantization(float(m * n)), name="quantization"
        )
        lg = profile_gemm(m, k, n)
        pack_profile = lp if pack_profile is None else pack_profile.merged(lp, name="packing")
        quant_profile = (
            lq if quant_profile is None else quant_profile.merged(lq, name="quantization")
        )
        gemm_profile = (
            lg if gemm_profile is None else gemm_profile.merged(lg, name="conv2d_matmul")
        )
        other_elements += layer.output_elements
    if pack_profile is None:
        raise ValueError("network %s has no layers" % network.name)
    # Other: bias add, batch norm, ReLU, pooling, residual adds -- about
    # four element-wise passes over each layer's activations.
    other = KernelProfile.streaming(
        name="other",
        bytes_read=other_elements * 4.0,
        bytes_written=other_elements * 4.0,
        ops_per_byte=1.0,
        instruction_overhead=0.3,
        simd_fraction=0.5,
        notes="bias/BN/ReLU/pool/residual element-wise glue",
    )
    return [
        WorkloadFunction(
            "packing",
            pack_profile,
            accelerator_key="packing",
            invocations=max(len(network.layers), 1),
        ),
        WorkloadFunction(
            "quantization",
            quant_profile,
            accelerator_key="quantization",
            invocations=max(2 * network.num_conv2d, 1),
        ),
        WorkloadFunction("conv2d_matmul", gemm_profile),
        WorkloadFunction("other", other),
    ]
