"""gemmlowp-style matrix packing (paper Section 5.3).

gemmlowp executes its fixed-size GEMM kernel over matrix chunks; to make
the kernel's accesses cache-friendly it first *packs* each chunk --
reorders it into the panel-major layout the kernel consumes -- and
*unpacks* the result chunk back to row-major order afterwards.  Packing
is a pure data-reorganization pass over large matrices: up to 40% of
TensorFlow Mobile's system energy, 82.1% of it data movement.

``pack_matrix`` implements the real layout transformation (panels of
``panel_rows`` full rows, each panel stored column-major) so the GEMM
kernel in :mod:`repro.workloads.tensorflow.gemm` can consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.profile import KernelProfile

#: gemmlowp-like kernel panel height (rows of LHS packed together).
DEFAULT_PANEL_ROWS = 4


@dataclass(frozen=True)
class PackedMatrix:
    """A matrix reordered into kernel-friendly panels.

    ``data`` is a flat buffer: for each panel of ``panel_rows`` rows, the
    panel's elements are stored column-by-column (so the GEMM kernel
    streams ``panel_rows`` operands with unit stride as it walks the
    shared dimension).  The final partial panel is zero-padded.
    """

    data: np.ndarray  # 1-D uint8
    rows: int
    cols: int
    panel_rows: int

    @property
    def num_panels(self) -> int:
        return (self.rows + self.panel_rows - 1) // self.panel_rows

    def panel(self, index: int) -> np.ndarray:
        """The ``index``-th panel as a (panel_rows, cols) array."""
        size = self.panel_rows * self.cols
        chunk = self.data[index * size : (index + 1) * size]
        return chunk.reshape(self.cols, self.panel_rows).T


def pack_matrix(matrix: np.ndarray, panel_rows: int = DEFAULT_PANEL_ROWS) -> PackedMatrix:
    """Pack a row-major uint8 matrix into panel-major layout."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("pack_matrix expects a 2-D matrix")
    if panel_rows < 1:
        raise ValueError("panel_rows must be >= 1")
    rows, cols = matrix.shape
    num_panels = (rows + panel_rows - 1) // panel_rows
    padded = np.zeros((num_panels * panel_rows, cols), dtype=matrix.dtype)
    padded[:rows] = matrix
    # (panels, panel_rows, cols) -> (panels, cols, panel_rows): column-major
    # within each panel.
    panels = padded.reshape(num_panels, panel_rows, cols).transpose(0, 2, 1)
    return PackedMatrix(
        data=panels.reshape(-1).copy(), rows=rows, cols=cols, panel_rows=panel_rows
    )


def unpack_matrix(packed: PackedMatrix) -> np.ndarray:
    """Invert :func:`pack_matrix`, dropping the zero padding."""
    num_panels = packed.num_panels
    panels = packed.data.reshape(num_panels, packed.cols, packed.panel_rows)
    padded = panels.transpose(0, 2, 1).reshape(num_panels * packed.panel_rows, packed.cols)
    return padded[: packed.rows].copy()


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def profile_packing(elements: float, element_bytes: int = 1) -> KernelProfile:
    """Profile of packing ``elements`` matrix entries.

    Packing reads every element once and writes it once to its new
    location; the index arithmetic is a handful of adds/shifts per
    16-byte chunk.  Streaming, no reuse.
    """
    bytes_moved = elements * element_bytes
    return KernelProfile.streaming(
        name="packing",
        bytes_read=bytes_moved,
        bytes_written=bytes_moved,
        ops_per_byte=0.25,
        instruction_overhead=0.1,
        simd_fraction=0.9,
        notes="gemmlowp pack: row-major -> panel-major (Section 5.3)",
    )


def profile_unpacking(elements: float, element_bytes: int = 4) -> KernelProfile:
    """Profile of unpacking ``elements`` int32 result entries."""
    bytes_moved = elements * element_bytes
    return KernelProfile.streaming(
        name="packing",  # reported under the paper's "Packing" bucket
        bytes_read=bytes_moved,
        bytes_written=bytes_moved,
        ops_per_byte=0.25,
        instruction_overhead=0.1,
        simd_fraction=0.9,
        notes="gemmlowp unpack: panel-major -> row-major (Section 5.3)",
    )
