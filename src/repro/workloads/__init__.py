"""The four Google consumer workloads analyzed by the paper.

* :mod:`repro.workloads.chrome` -- the Chrome browser: page scrolling
  (texture tiling, color blitting) and tab switching (ZRAM
  compression/decompression with an LZO-style compressor);
* :mod:`repro.workloads.tensorflow` -- TensorFlow Mobile inference:
  quantized GEMM with gemmlowp-style packing and quantization;
* :mod:`repro.workloads.vp9` -- VP9 video playback and capture: a
  from-scratch simplified VP9-class codec (software) plus analytical
  models of the hardware encoder/decoder.

Every workload package provides:

* functional kernel implementations (tested for correctness);
* ``profile_*`` functions producing exact :class:`KernelProfile`
  statistics for the characterization pipeline; and
* ``*_pim_targets()`` builders returning the paper's PIM targets.
"""
