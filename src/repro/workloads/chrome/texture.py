"""Texture tiling (paper Section 4.2.2).

After rasterization, Chrome's graphics driver converts each linear
rasterized bitmap into a *tiled* texture layout so the GPU's compositor
gets good 2-D locality: the Intel HD Graphics driver splits the bitmap
into 4 kB tiles (32x32 pixels at 4 bytes/pixel).  The conversion itself
has poor locality -- it reads the bitmap linearly but writes each output
tile from rows that are ``width * 4`` bytes apart -- and the bitmaps
(e.g. 1024x1024 RGBA = 4 MB) exceed the LLC, so nearly every byte moves
over the off-chip channel twice.

This module implements the actual conversion (both directions), an
instrumented variant that records its memory trace, and the analytic
profile used by the characterization pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.recorder import get_recorder
from repro.sim.profile import KernelProfile
from repro.sim.trace import TraceRecorder

#: Tile geometry: 32x32 pixels * 4 B/pixel = 4096 B, one page-sized tile,
#: matching the Intel i965 driver behaviour the paper emulates.
TILE_W = 32
TILE_H = 32
BYTES_PER_PIXEL = 4
TILE_BYTES = TILE_W * TILE_H * BYTES_PER_PIXEL


@dataclass(frozen=True)
class TiledTexture:
    """A bitmap reorganized into GPU-friendly 4 kB tiles."""

    tiles: np.ndarray  # (rows, cols, TILE_H, TILE_W, 4) uint8
    width: int  # original bitmap width in pixels
    height: int  # original bitmap height in pixels

    @property
    def tile_rows(self) -> int:
        return int(self.tiles.shape[0])

    @property
    def tile_cols(self) -> int:
        return int(self.tiles.shape[1])

    @property
    def num_tiles(self) -> int:
        return self.tile_rows * self.tile_cols


def _check_bitmap(bitmap: np.ndarray) -> None:
    if bitmap.ndim != 3 or bitmap.shape[2] != BYTES_PER_PIXEL:
        raise ValueError(
            "bitmap must be HxWx4 (RGBA) uint8, got shape %r" % (bitmap.shape,)
        )
    if bitmap.dtype != np.uint8:
        raise ValueError("bitmap must be uint8, got %s" % bitmap.dtype)


def linear_to_tiled(bitmap: np.ndarray) -> TiledTexture:
    """Convert a linear RGBA bitmap into 4 kB tiles (texture tiling).

    Edges are zero-padded to whole tiles, as real drivers allocate whole
    tiles and ignore the slack.
    """
    _check_bitmap(bitmap)
    height, width = bitmap.shape[:2]
    rows = (height + TILE_H - 1) // TILE_H
    cols = (width + TILE_W - 1) // TILE_W
    padded = np.zeros((rows * TILE_H, cols * TILE_W, BYTES_PER_PIXEL), dtype=np.uint8)
    padded[:height, :width] = bitmap
    tiles = (
        padded.reshape(rows, TILE_H, cols, TILE_W, BYTES_PER_PIXEL)
        .swapaxes(1, 2)
        .copy()
    )
    return TiledTexture(tiles=tiles, width=width, height=height)


def tiled_to_linear(texture: TiledTexture) -> np.ndarray:
    """Convert a tiled texture back to the linear bitmap (untiling)."""
    rows, cols = texture.tile_rows, texture.tile_cols
    padded = (
        texture.tiles.swapaxes(1, 2)
        .reshape(rows * TILE_H, cols * TILE_W, BYTES_PER_PIXEL)
    )
    return padded[: texture.height, : texture.width].copy()


def linear_to_tiled_traced(
    bitmap: np.ndarray,
    recorder: TraceRecorder,
    src_base: int = 0,
    dst_base: int = 1 << 28,
    fast: bool = True,
) -> TiledTexture:
    """Tiling with its memory accesses recorded tile-row by tile-row.

    The access pattern is the defining feature: the source is read in
    ``TILE_W * 4``-byte chunks strided by the full bitmap pitch, while the
    destination tile is written contiguously -- exactly the pattern that
    produces one LLC miss per source chunk on large bitmaps.

    With ``fast`` (the default) the whole frame's range records are
    computed with array arithmetic and emitted as one
    :meth:`TraceRecorder.record_ranges` batch; the scalar path issues one
    read + one write call per tile row.  Both produce identical
    (base, count, is_write) range records, hence identical traces.
    """
    _check_bitmap(bitmap)
    height, width = bitmap.shape[:2]
    pitch = width * BYTES_PER_PIXEL
    rows = (height + TILE_H - 1) // TILE_H
    cols = (width + TILE_W - 1) // TILE_W
    get_recorder().counters.add(
        "kernel.texture_tiling.fast_path" if fast else "kernel.texture_tiling.scalar_path"
    )
    if fast:
        # (rows, cols, TILE_H) offset grids in (tr, tc, y) iteration order.
        tr, tc, y = np.meshgrid(
            np.arange(rows), np.arange(cols), np.arange(TILE_H), indexing="ij"
        )
        src_y = tr * TILE_H + y
        valid = (src_y < height).ravel()
        src_off = (
            src_base + src_y * pitch + tc * TILE_W * BYTES_PER_PIXEL
        ).ravel()[valid]
        dst_off = (
            dst_base
            + (tr * cols + tc) * TILE_BYTES
            + y * TILE_W * BYTES_PER_PIXEL
        ).ravel()[valid]
        chunk = (
            np.minimum(TILE_W, width - tc * TILE_W) * BYTES_PER_PIXEL
        ).ravel()[valid]
        n = src_off.shape[0]
        # Interleave read/write exactly as the scalar loop issues them.
        bases = np.empty(2 * n, dtype=np.int64)
        bases[0::2], bases[1::2] = src_off, dst_off
        sizes = np.repeat(chunk, 2)
        writes = np.zeros(2 * n, dtype=bool)
        writes[1::2] = True
        recorder.record_ranges(bases, sizes, writes)
        return linear_to_tiled(bitmap)
    for tr in range(rows):
        for tc in range(cols):
            tile_base = dst_base + (tr * cols + tc) * TILE_BYTES
            for y in range(TILE_H):
                src_y = tr * TILE_H + y
                if src_y >= height:
                    continue
                src_off = src_base + src_y * pitch + tc * TILE_W * BYTES_PER_PIXEL
                chunk = min(TILE_W, width - tc * TILE_W) * BYTES_PER_PIXEL
                recorder.read(src_off, chunk)
                recorder.write(tile_base + y * TILE_W * BYTES_PER_PIXEL, chunk)
    return linear_to_tiled(bitmap)


def compositing_trace(
    width: int, height: int, tiled: bool, base: int = 0, fast: bool = True
) -> "MemoryTrace":
    """The GPU compositor's access stream over one texture, sampled in
    *vertical* order (a rotated/scaled composite -- the access direction
    the paper says texture tiling exists to serve: "compositing accesses
    each texture in both the horizontal and vertical directions").

    The sampler walks 4-texel quads down quad-columns:

    * **linear** layout: the walk follows screen order -- full-height
      quad-columns.  Consecutive samples are ``width * 4`` bytes apart,
      and a fetched 64 B line is only reused three quad-columns later,
      after the whole column of lines (64 B x height) has passed through
      the cache -- far beyond a GPU texture cache, so every quad misses;
    * **tiled** layout: the driver reorganized the texture precisely so
      the rasterizer can process **tile-locally**; the same vertical
      sampling happens 32 rows at a time inside one resident 4 kB tile.
    """
    from repro.sim.trace import TraceRecorder

    quad = 4 * BYTES_PER_PIXEL  # a 4-texel sampling quad
    rec = TraceRecorder(granularity=quad)
    pitch = width * BYTES_PER_PIXEL
    cols = (width + TILE_W - 1) // TILE_W
    get_recorder().counters.add(
        "kernel.compositing.fast_path" if fast else "kernel.compositing.scalar_path"
    )
    if fast:
        if tiled:
            tr, tc, xq, y = np.meshgrid(
                np.arange((height + TILE_H - 1) // TILE_H),
                np.arange(cols),
                np.arange(0, TILE_W, 4),
                np.arange(TILE_H),
                indexing="ij",
            )
            offsets = (
                base
                + (tr * cols + tc) * TILE_BYTES
                + y * TILE_W * BYTES_PER_PIXEL
                + xq * BYTES_PER_PIXEL
            ).ravel()
        else:
            xq, y = np.meshgrid(
                np.arange(0, width, 4), np.arange(height), indexing="ij"
            )
            offsets = (base + y * pitch + xq * BYTES_PER_PIXEL).ravel()
        rec.record_ranges(
            offsets,
            np.full(offsets.shape[0], quad, dtype=np.int64),
            np.zeros(offsets.shape[0], dtype=bool),
        )
        return rec.trace()
    if tiled:
        for tr in range((height + TILE_H - 1) // TILE_H):
            for tc in range(cols):
                tile_base = base + (tr * cols + tc) * TILE_BYTES
                for xq in range(0, TILE_W, 4):
                    for y in range(TILE_H):
                        rec.read(
                            tile_base
                            + y * TILE_W * BYTES_PER_PIXEL
                            + xq * BYTES_PER_PIXEL,
                            quad,
                        )
    else:
        for xq in range(0, width, 4):
            for y in range(height):
                rec.read(base + y * pitch + xq * BYTES_PER_PIXEL, quad)
    return rec.trace()


def profile_texture_tiling(
    width: int, height: int, bytes_per_pixel: int = BYTES_PER_PIXEL
) -> KernelProfile:
    """Analytic profile of tiling one ``width x height`` bitmap.

    Tiling is memcopy plus address swizzling: the per-byte ALU work is the
    tile-coordinate arithmetic (shift/mask per chunk, amortized over
    16-byte moves), and every byte is read once and written once with no
    reuse (streaming).  The swizzled writes vectorize almost fully.
    """
    bytes_moved = float(width * height * bytes_per_pixel)
    return KernelProfile.streaming(
        name="texture_tiling",
        bytes_read=bytes_moved,
        bytes_written=bytes_moved,
        ops_per_byte=0.3,
        instruction_overhead=0.1,
        simd_fraction=0.9,
        notes="linear bitmap -> 4 kB tiles (Section 4.2.2)",
    )
