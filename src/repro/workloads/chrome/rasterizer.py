"""A miniature display-list rasterizer (paper Section 4.1).

Blink paints each render object through Skia: the render tree is
flattened into a display list of draw commands, and rasterization
executes them through the color blitter into a bitmap.  This module
implements that last stage functionally -- solid rectangles, image
blits, and text runs (rows of small blended glyph boxes) -- so the page
models' blit statistics can be *generated* from page content rather than
assumed.

It also provides a synthetic page-content generator whose text/image
balance mirrors the six evaluated pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.chrome.blitter import (
    BlitStats,
    alpha_blend,
    blit_copy,
    fill_rect,
)

#: Glyph cell geometry for text runs (a small anti-aliased box per char).
GLYPH_W = 7
GLYPH_H = 12


@dataclass(frozen=True)
class FillCommand:
    x: int
    y: int
    w: int
    h: int
    color: tuple


@dataclass(frozen=True)
class ImageCommand:
    x: int
    y: int
    image: np.ndarray  # HxWx4 uint8


@dataclass(frozen=True)
class TextCommand:
    x: int
    y: int
    length: int  # characters
    color: tuple


@dataclass
class DisplayList:
    """An ordered list of draw commands for one paint."""

    width: int
    height: int
    commands: list = field(default_factory=list)

    def fill(self, x, y, w, h, color=(240, 240, 240, 255)):
        self.commands.append(FillCommand(x, y, w, h, color))
        return self

    def image(self, x, y, image):
        self.commands.append(ImageCommand(x, y, image))
        return self

    def text(self, x, y, length, color=(20, 20, 20, 255)):
        self.commands.append(TextCommand(x, y, length, color))
        return self


def _glyph(color, rng: np.random.Generator) -> np.ndarray:
    """An anti-aliased glyph box: colored core, soft alpha edges."""
    glyph = np.zeros((GLYPH_H, GLYPH_W, 4), dtype=np.uint8)
    glyph[:, :, :3] = color[:3]
    alpha = rng.integers(40, 220, size=(GLYPH_H, GLYPH_W))
    alpha[2:-2, 1:-1] = 255  # solid core
    glyph[:, :, 3] = alpha.astype(np.uint8)
    return glyph


def rasterize(display_list: DisplayList, seed: int = 0) -> tuple[np.ndarray, BlitStats]:
    """Execute a display list through the color blitter.

    Returns (bitmap, aggregate blit statistics) -- the statistics feed
    straight into :func:`profile_color_blitting`.
    """
    rng = np.random.default_rng(seed)
    bitmap = np.zeros((display_list.height, display_list.width, 4), dtype=np.uint8)
    bitmap[:, :, 3] = 255
    stats = BlitStats()
    for cmd in display_list.commands:
        if isinstance(cmd, FillCommand):
            stats = stats.merged(
                fill_rect(bitmap, cmd.x, cmd.y, cmd.w, cmd.h, cmd.color)
            )
        elif isinstance(cmd, ImageCommand):
            stats = stats.merged(blit_copy(bitmap, cmd.image, cmd.x, cmd.y))
        elif isinstance(cmd, TextCommand):
            glyph = _glyph(cmd.color, rng)
            for i in range(cmd.length):
                stats = stats.merged(
                    alpha_blend(bitmap, glyph, cmd.x + i * GLYPH_W, cmd.y)
                )
        else:
            raise TypeError("unknown draw command %r" % (cmd,))
    return bitmap, stats


def synthetic_page_paint(
    width: int = 1366,
    height: int = 768,
    text_fraction: float = 0.6,
    image_fraction: float = 0.2,
    seed: int = 0,
) -> DisplayList:
    """Build a page-like display list: background, cards, text, images.

    ``text_fraction``/``image_fraction`` control how much of the painted
    area is text runs vs. image blits (the rest is solid fills), which is
    what differentiates a Docs-like page from an animation-heavy one.
    """
    if not 0 <= text_fraction <= 1 or not 0 <= image_fraction <= 1:
        raise ValueError("fractions must be in [0, 1]")
    if text_fraction + image_fraction > 1.0:
        raise ValueError("text + image fractions exceed 1")
    rng = np.random.default_rng(seed)
    dl = DisplayList(width=width, height=height)
    dl.fill(0, 0, width, height, (250, 250, 250, 255))  # page background
    area = width * height
    # Text: rows of runs until the budget is spent.
    text_budget = area * text_fraction
    y = 20
    while text_budget > 0:
        run_chars = int(rng.integers(20, max(width // GLYPH_W - 4, 21)))
        dl.text(10, y, run_chars)
        text_budget -= run_chars * GLYPH_W * GLYPH_H
        y += GLYPH_H + 4
        if y >= height - GLYPH_H:
            y = 20  # dense pages repaint rows (overdraw), as real pages do
    # Images: random photos (noise blocks).
    image_budget = area * image_fraction
    while image_budget > 0:
        w = int(rng.integers(60, max(width // 4, 61)))
        h = int(rng.integers(60, max(height // 4, 61)))
        img = rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)
        dl.image(int(rng.integers(0, max(width - w, 1))),
                 int(rng.integers(0, max(height - h, 1))), img)
        image_budget -= w * h
    # Cards/sidebars: a few large fills.
    for _ in range(4):
        w = int(rng.integers(width // 8, width // 3))
        h = int(rng.integers(height // 10, height // 4))
        dl.fill(
            int(rng.integers(0, width - w)),
            int(rng.integers(0, height - h)),
            w, h,
            tuple(int(v) for v in rng.integers(180, 255, size=3)) + (255,),
        )
    return dl
