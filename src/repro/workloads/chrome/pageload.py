"""Page loading (paper Section 4: "each interaction includes page
loading").

Loading a page runs the pipeline of Section 4.1 once, front to back:
parse HTML/CSS into the DOM tree, compute style and layout, rasterize
every initially-visible render object (color blitting), convert the
bitmaps to GPU tiles (texture tiling), and composite.  Unlike scrolling
-- which re-rasterizes incrementally -- loading is a burst: the whole
first viewport (plus over-rendered margin) is painted at once, so the
tiling/blitting kernels dominate a short, latency-critical window.

The model reuses the page parameters of :mod:`.pages` and adds the
parse/style phase; its output feeds the same characterization pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.offload import OffloadEngine
from repro.core.target import PimTarget
from repro.core.workload import WorkloadFunction, characterize, offloaded_totals
from repro.sim.profile import KernelProfile
from repro.workloads.chrome.blitter import BlitStats, profile_color_blitting
from repro.workloads.chrome.pages import SCREEN_H, SCREEN_W, WebPage
from repro.workloads.chrome.texture import profile_texture_tiling

MB = 1024 * 1024

#: Initial paint covers several viewports of content: the visible area,
#: the over-render margin, decoded images, and intermediate layers.
OVERRENDER = 6.0


def load_functions(page: WebPage) -> list[WorkloadFunction]:
    """The page-load workload decomposition for one page."""
    paint_pixels = SCREEN_W * SCREEN_H * OVERRENDER
    # Parse + style + layout: compute-heavy tree work proportional to the
    # page's per-frame layout cost, run ~10x for the initial tree build.
    parse_instructions = 10 * (
        page.layout_instructions_per_frame + page.js_instructions_per_frame
    ) + 5e7
    parse = KernelProfile(
        name="parse_style_layout",
        instructions=parse_instructions,
        mem_instructions=parse_instructions * 0.35,
        alu_ops=parse_instructions * 0.45,
        simd_fraction=0.05,
        l1_misses=parse_instructions * 0.03,
        llc_misses=parse_instructions * 0.012,
        dram_bytes=parse_instructions * 0.012 * 64,
        working_set_bytes=64 * MB,
        notes="HTML/CSS parse, DOM build, style recalc, initial layout",
    )
    blitted = paint_pixels * page.blit_overdraw
    blended = blitted * page.blend_fraction
    stats = BlitStats(
        pixels_filled=int((blitted - blended) * 0.5),
        pixels_copied=int((blitted - blended) * 0.5),
        pixels_blended=int(blended),
    )
    side = max(int(paint_pixels**0.5), 1)
    return [
        WorkloadFunction("parse_style_layout", parse),
        WorkloadFunction(
            "color_blitting",
            profile_color_blitting(stats),
            accelerator_key="color_blitting",
            invocations=8,
        ),
        WorkloadFunction(
            "texture_tiling",
            profile_texture_tiling(side, int(paint_pixels / side)),
            accelerator_key="texture_tiling",
            invocations=4,
        ),
    ]


@dataclass(frozen=True)
class PageLoadResult:
    """Load-time and energy comparison for one page."""

    page: str
    cpu_time_s: float
    pim_time_s: float
    cpu_energy_j: float
    pim_energy_j: float
    kernel_share_of_load: float

    @property
    def load_time_reduction(self) -> float:
        if self.cpu_time_s <= 0:
            return 0.0
        return 1.0 - self.pim_time_s / self.cpu_time_s


def evaluate_page_load(
    page: WebPage, engine: OffloadEngine | None = None
) -> PageLoadResult:
    """Load-time/energy with and without PIM offload of tiling/blitting.

    With PIM, tiling and blitting additionally overlap the CPU's parse
    work (the paper's Figure 3: the freed CPU rasterizes/parses while PIM
    tiles), so the PIM load time is the maximum of the two streams rather
    than their sum.
    """
    engine = engine or OffloadEngine()
    functions = load_functions(page)
    ch = characterize(page.name + "_load", functions)
    totals = offloaded_totals(functions, engine)
    cpu_stream = sum(
        engine.cpu_model.run(f.profile).time_s
        for f in functions
        if f.accelerator_key is None
    )
    pim_stream = 0.0
    pim_energy = 0.0
    for f in functions:
        if f.accelerator_key is None:
            pim_energy += engine.cpu_model.run(f.profile).energy_j
            continue
        target = PimTarget(
            f.name, f.profile, accelerator_key=f.accelerator_key,
            invocations=f.invocations,
        )
        execution = engine.run_pim_acc(target)
        pim_stream += execution.time_s
        pim_energy += execution.energy_j
    kernel_share = sum(
        ch.energy_share(f.name) for f in functions if f.accelerator_key
    )
    return PageLoadResult(
        page=page.name,
        cpu_time_s=totals.cpu_time_s,
        pim_time_s=max(cpu_stream, pim_stream),
        cpu_energy_j=totals.cpu_energy_j,
        pim_energy_j=pim_energy,
        kernel_share_of_load=kernel_share,
    )
