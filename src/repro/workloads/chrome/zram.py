"""ZRAM-based tab switching (paper Section 4.3).

When available memory runs low, Chrome (with OS assistance) compresses
the pages of inactive tabs into an in-DRAM pool called ZRAM; switching to
a compressed tab decompresses its pages on demand.  The paper's
experiment opens 50 tabs (top-of-Alexa pages), scrolls each, then
switches through them, observing 11.7 GB swapped out (peaks ~201 MB/s)
and 7.8 GB swapped in (peaks ~227 MB/s), with compression+decompression
contributing 18.1% of system energy and 14.2% of execution time.

``TabSwitchingSession`` reproduces that experiment as a discrete-time
simulation: tab footprints are drawn from a web-page distribution, a
fixed DRAM budget forces LRU eviction (compression) of inactive tabs,
and switches fault back (decompress) the accessed fraction of the
target's pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.workload import WorkloadFunction
from repro.sim.profile import KernelProfile

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class ZramConfig:
    """Parameters of the 50-tab switching experiment."""

    num_tabs: int = 50
    #: DRAM available to *uncompressed* tab working sets; the ZRAM pool
    #: holding compressed pages is capped separately by the OS.
    memory_budget_bytes: float = 1.75 * GB
    #: Tab footprint distribution (uniform), bytes.
    min_tab_bytes: float = 100 * MB
    max_tab_bytes: float = 220 * MB
    #: LZO-class compression ratio achieved on browser memory.
    compression_ratio: float = 2.7
    #: Fraction of a compressed tab's pages faulted back in on switch.
    swap_in_fraction: float = 0.95
    #: Wall-clock seconds to open (and scroll) one tab / switch to a tab.
    seconds_per_open: float = 2.0
    seconds_per_switch: float = 2.4
    seed: int = 7


@dataclass
class SwapTimeline:
    """Per-second swap traffic, the data behind Figure 4."""

    seconds: np.ndarray  # int timestamps
    bytes_out: np.ndarray  # swapped out (compressed) per second
    bytes_in: np.ndarray  # swapped in (decompressed) per second

    @property
    def total_out(self) -> float:
        return float(self.bytes_out.sum())

    @property
    def total_in(self) -> float:
        return float(self.bytes_in.sum())

    @property
    def peak_out_rate(self) -> float:
        return float(self.bytes_out.max()) if len(self.bytes_out) else 0.0

    @property
    def peak_in_rate(self) -> float:
        return float(self.bytes_in.max()) if len(self.bytes_in) else 0.0

    @property
    def duration_s(self) -> float:
        return float(len(self.seconds))


@dataclass
class _Tab:
    index: int
    footprint: float
    resident: float = 0.0  # uncompressed resident bytes
    compressed: float = 0.0  # bytes held in the ZRAM pool (compressed)
    last_use: float = 0.0


class TabSwitchingSession:
    """Discrete-time simulation of the 50-tab experiment."""

    def __init__(self, config: ZramConfig | None = None):
        self.config = config or ZramConfig()
        rng = np.random.default_rng(self.config.seed)
        self.tabs = [
            _Tab(
                index=i,
                footprint=float(
                    rng.uniform(self.config.min_tab_bytes, self.config.max_tab_bytes)
                ),
            )
            for i in range(self.config.num_tabs)
        ]
        self._out_events: list[tuple[float, float]] = []  # (time, uncompressed bytes)
        self._in_events: list[tuple[float, float]] = []
        self._clock = 0.0
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> SwapTimeline:
        """Open all tabs, then switch through all of them, once."""
        if self._ran:
            return self.timeline()
        cfg = self.config
        for tab in self.tabs:
            self._open(tab)
            self._clock += cfg.seconds_per_open
        for tab in self.tabs:
            self._switch_to(tab)
            self._clock += cfg.seconds_per_switch
        self._ran = True
        return self.timeline()

    # ------------------------------------------------------------------
    def _memory_in_use(self) -> float:
        # Only uncompressed working sets count against the budget; the
        # compressed pool lives in its own OS-capped ZRAM region.
        return sum(t.resident for t in self.tabs)

    def _open(self, tab: _Tab) -> None:
        tab.resident = tab.footprint
        tab.compressed = 0.0
        tab.last_use = self._clock
        self._evict_until_fits(active=tab)

    def _switch_to(self, tab: _Tab) -> None:
        cfg = self.config
        if tab.compressed > 0.0:
            # Fault in the accessed fraction of the tab's pages.
            swapped_in = tab.footprint * cfg.swap_in_fraction
            self._in_events.append((self._clock, swapped_in))
            tab.resident = swapped_in
            tab.compressed = 0.0
        tab.last_use = self._clock
        self._evict_until_fits(active=tab)

    def _evict_until_fits(self, active: _Tab) -> None:
        cfg = self.config
        inactive = sorted(
            (t for t in self.tabs if t is not active and t.resident > 0.0),
            key=lambda t: t.last_use,
        )
        evicted = 0
        interval = min(cfg.seconds_per_open, cfg.seconds_per_switch)
        while self._memory_in_use() > cfg.memory_budget_bytes and inactive:
            victim = inactive.pop(0)
            # The kswapd-style reclaimer works through victims over the
            # interval rather than in one burst.
            offset = min(evicted * 1.1, max(interval - 0.1, 0.0))
            self._out_events.append((self._clock + offset, victim.resident))
            victim.compressed = victim.resident / cfg.compression_ratio
            victim.resident = 0.0
            evicted += 1

    # ------------------------------------------------------------------
    def timeline(self) -> SwapTimeline:
        """Bucket swap events into 1-second bins (Figure 4 series)."""
        duration = int(np.ceil(self._clock)) + 1
        bytes_out = np.zeros(duration)
        bytes_in = np.zeros(duration)
        for t, amount in self._out_events:
            bytes_out[int(t)] += amount
        for t, amount in self._in_events:
            bytes_in[int(t)] += amount
        return SwapTimeline(
            seconds=np.arange(duration), bytes_out=bytes_out, bytes_in=bytes_in
        )

    # ------------------------------------------------------------------
    # Kernel profiles for the characterization / PIM evaluation
    # ------------------------------------------------------------------
    def compression_profile(self) -> KernelProfile:
        """Profile of all compression work in the session."""
        timeline = self.run()
        return profile_compression(
            timeline.total_out, self.config.compression_ratio
        ).scaled(1.0)

    def decompression_profile(self) -> KernelProfile:
        timeline = self.run()
        return profile_decompression(
            timeline.total_in, self.config.compression_ratio
        )

    def workload_functions(self) -> list[WorkloadFunction]:
        """The tab-switching workload: compression, decompression, other.

        "Other" covers the page-rendering and script work of re-displaying
        each tab (rasterization-like streaming traffic plus compute-heavy
        layout/JS), sized so compression+decompression sit near the
        paper's 18.1%-of-energy / 14.2%-of-time shares.
        """
        cfg = self.config
        # ~1.2 GB of streaming traffic per direction per switch: page
        # re-render, image re-decode, compositing, page-cache traffic.
        render_bytes = cfg.num_tabs * 1200 * MB / 2
        render = KernelProfile.streaming(
            name="tab_rendering",
            bytes_read=render_bytes,
            bytes_written=render_bytes,
            ops_per_byte=0.4,
            instruction_overhead=0.1,
            simd_fraction=0.8,
            notes="re-render + image decode + composite after switch",
        )
        script_instructions = cfg.num_tabs * 2.4e9  # layout/JS per switch
        script = KernelProfile(
            name="script_and_layout",
            instructions=script_instructions,
            mem_instructions=script_instructions * 0.3,
            alu_ops=script_instructions * 0.5,
            simd_fraction=0.05,
            l1_misses=script_instructions * 0.01,
            llc_misses=script_instructions * 0.002,
            dram_bytes=script_instructions * 0.002 * 64,
            working_set_bytes=64 * MB,
            notes="DOM/JS/layout: compute-bound, cache-friendly",
        )
        return [
            WorkloadFunction(
                "compression",
                self.compression_profile(),
                accelerator_key="compression",
                invocations=len(self._out_events),
            ),
            WorkloadFunction(
                "decompression",
                self.decompression_profile(),
                accelerator_key="decompression",
                invocations=len(self._in_events),
            ),
            WorkloadFunction("tab_rendering", render),
            WorkloadFunction("script_and_layout", script),
        ]


@dataclass(frozen=True)
class SwitchLatency:
    """Time to make a previously-compressed tab interactive again."""

    cpu_only_s: float
    pim_core_s: float
    pim_acc_s: float

    @property
    def pim_acc_speedup(self) -> float:
        if self.pim_acc_s <= 0:
            return float("inf")
        return self.cpu_only_s / self.pim_acc_s


def switch_latency(
    tab_bytes: float = 150 * MB,
    swap_in_fraction: float = 0.95,
    ratio: float = 2.7,
    engine=None,
) -> SwitchLatency:
    """Latency to re-activate one compressed tab (paper Section 4.3:
    "how fast a new tab loads and becomes interactive ... directly
    affects user satisfaction").

    CPU-only: the CPU decompresses the faulted pages inline.  With PIM,
    decompression runs in memory; additionally only the cache lines the
    renderer actually touches cross the channel afterwards, so the
    critical path shrinks to the PIM decompression itself.
    """
    from repro.core.offload import OffloadEngine
    from repro.core.target import PimTarget

    engine = engine or OffloadEngine()
    faulted = tab_bytes * swap_in_fraction
    profile = profile_decompression(faulted, ratio)
    target = PimTarget(
        "tab_switch_decompression",
        profile,
        accelerator_key="decompression",
        invocations=max(int(faulted // 4096), 1),
    )
    return SwitchLatency(
        cpu_only_s=engine.run_cpu(target).time_s,
        pim_core_s=engine.run_pim_core(target).time_s,
        pim_acc_s=engine.run_pim_acc(target).time_s,
    )


def profile_compression(
    uncompressed_bytes: float, ratio: float = 2.7
) -> KernelProfile:
    """Analytic profile of LZO-class compression of ``uncompressed_bytes``.

    Compression streams the input once (hash + compare per position) and
    writes the compressed output; the 64 kB match window stays cache-
    resident, so off-chip traffic is input + output.  More compute-heavy
    than tiling/blitting (~1.3 ops/byte), which is why the paper sees
    PIM-Acc pull ahead of PIM-Core on this kernel.
    """
    compressed = uncompressed_bytes / ratio
    return KernelProfile.streaming(
        name="compression",
        bytes_read=uncompressed_bytes,
        bytes_written=compressed,
        ops_per_byte=0.25,
        instruction_overhead=0.05,
        simd_fraction=0.4,
        notes="LZO-class compression (Section 4.3)",
    )


def profile_decompression(
    uncompressed_bytes: float, ratio: float = 2.7
) -> KernelProfile:
    """Analytic profile of LZO-class decompression.

    Decompression reads the compressed stream and writes the output; match
    copies read from the (cache-resident) recent output window.  With PIM,
    the decompressed pages stay in DRAM and only the lines the CPU
    actually touches cross the channel later, so ``pim_bytes`` equals the
    in-memory traffic.
    """
    compressed = uncompressed_bytes / ratio
    profile = KernelProfile.streaming(
        name="decompression",
        bytes_read=compressed,
        bytes_written=uncompressed_bytes,
        ops_per_byte=0.2,
        instruction_overhead=0.05,
        simd_fraction=0.4,
        notes="LZO-class decompression (Section 4.3)",
    )
    return profile
