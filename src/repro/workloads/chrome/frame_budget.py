"""The 60 FPS frame budget (paper Section 4.2).

"All three operations [layout, rasterization, compositing] must happen
within the mobile screen refresh time (60 FPS or 16.7 ms) to avoid frame
dropping."  This module times one scroll frame's pipeline against that
deadline, with and without PIM:

* CPU-only: layout/JS + rasterization (blitting) + texture tiling all
  serialize on the CPU;
* with PIM: tiling (and the blit stream) run in memory while the CPU
  handles layout/JS and the next frame's rasterization setup -- the
  Figure 3 overlap -- so the critical path is the longer of the two
  streams.

Outputs per page: frame time, headroom against 16.7 ms, and the maximum
sustainable scroll rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.offload import OffloadEngine
from repro.core.target import PimTarget
from repro.workloads.chrome.pages import WebPage

#: The mobile display refresh deadline (60 FPS).
FRAME_BUDGET_S = 1.0 / 60.0


@dataclass(frozen=True)
class FrameTime:
    """One scroll frame's pipeline timing."""

    page: str
    layout_s: float
    blitting_s: float
    tiling_s: float
    pim_tiling_s: float
    pim_blitting_s: float

    @property
    def cpu_only_s(self) -> float:
        return self.layout_s + self.blitting_s + self.tiling_s

    @property
    def with_pim_s(self) -> float:
        """Tiling + blitting move to PIM and overlap the CPU stream."""
        cpu_stream = self.layout_s
        pim_stream = self.pim_tiling_s + self.pim_blitting_s
        return max(cpu_stream, pim_stream)

    @property
    def cpu_meets_budget(self) -> bool:
        return self.cpu_only_s <= FRAME_BUDGET_S

    @property
    def pim_meets_budget(self) -> bool:
        return self.with_pim_s <= FRAME_BUDGET_S

    @property
    def cpu_fps(self) -> float:
        return 1.0 / self.cpu_only_s if self.cpu_only_s > 0 else float("inf")

    @property
    def pim_fps(self) -> float:
        return 1.0 / self.with_pim_s if self.with_pim_s > 0 else float("inf")


def frame_time(page: WebPage, engine: OffloadEngine | None = None) -> FrameTime:
    """Time one scroll frame of ``page`` through the pipeline."""
    engine = engine or OffloadEngine()
    frames = page.scroll_frames
    per_frame = 1.0 / frames
    # Per-frame slices of the scroll-session profiles.
    layout = page.other_profile().scaled(per_frame, name="layout_frame")
    blit = page.blitting_profile().scaled(per_frame, name="blit_frame")
    tile = page.tiling_profile().scaled(per_frame, name="tile_frame")
    layout_s = engine.cpu_model.run(layout).time_s
    blit_s = engine.cpu_model.run(blit).time_s
    tile_s = engine.cpu_model.run(tile).time_s
    tile_target = PimTarget(
        "texture_tiling", tile, accelerator_key="texture_tiling", invocations=1
    )
    blit_target = PimTarget(
        "color_blitting", blit, accelerator_key="color_blitting", invocations=1
    )
    return FrameTime(
        page=page.name,
        layout_s=layout_s,
        blitting_s=blit_s,
        tiling_s=tile_s,
        pim_tiling_s=engine.run_pim_acc(tile_target).time_s,
        pim_blitting_s=engine.run_pim_acc(blit_target).time_s,
    )


def scroll_survey(pages: dict, engine: OffloadEngine | None = None) -> list[FrameTime]:
    """Frame times for a page set (the Figure 1 pages by default)."""
    engine = engine or OffloadEngine()
    return [frame_time(page, engine) for page in pages.values()]
