"""Color blitting (paper Section 4.2.2).

During rasterization, Skia's high-level draw calls bottom out in a *color
blitter* that copies/combines blocks of pixels into the destination
bitmap: solid fills (memset), straight copies (memcopy), and src-over
alpha blending (multiply-add per channel).  The bitmaps are large
(up to 1024x1024) and the access pattern is streaming, so blitting moves
a lot of data while doing little computation.

The blend math follows Skia's non-premultiplied src-over with 8-bit
fixed-point arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.profile import KernelProfile

BYTES_PER_PIXEL = 4


@dataclass(frozen=True)
class BlitStats:
    """Operation counts from a sequence of blit calls."""

    pixels_filled: int = 0
    pixels_copied: int = 0
    pixels_blended: int = 0

    def merged(self, other: "BlitStats") -> "BlitStats":
        return BlitStats(
            pixels_filled=self.pixels_filled + other.pixels_filled,
            pixels_copied=self.pixels_copied + other.pixels_copied,
            pixels_blended=self.pixels_blended + other.pixels_blended,
        )

    @property
    def total_pixels(self) -> int:
        return self.pixels_filled + self.pixels_copied + self.pixels_blended


def _check_rgba(img: np.ndarray, name: str) -> None:
    if img.ndim != 3 or img.shape[2] != BYTES_PER_PIXEL or img.dtype != np.uint8:
        raise ValueError("%s must be HxWx4 uint8, got %r/%s" % (name, img.shape, img.dtype))


def fill_rect(dst: np.ndarray, x: int, y: int, w: int, h: int, color) -> BlitStats:
    """Solid fill (the memset-like blit).  Modifies ``dst`` in place."""
    _check_rgba(dst, "dst")
    color = np.asarray(color, dtype=np.uint8)
    if color.shape != (4,):
        raise ValueError("color must be 4 components (RGBA)")
    x0, y0 = max(x, 0), max(y, 0)
    x1 = min(x + w, dst.shape[1])
    y1 = min(y + h, dst.shape[0])
    if x1 <= x0 or y1 <= y0:
        return BlitStats()
    dst[y0:y1, x0:x1] = color
    return BlitStats(pixels_filled=(y1 - y0) * (x1 - x0))


def blit_copy(dst: np.ndarray, src: np.ndarray, x: int, y: int) -> BlitStats:
    """Opaque copy of ``src`` into ``dst`` at (x, y), clipped."""
    _check_rgba(dst, "dst")
    _check_rgba(src, "src")
    region = _clip(dst, src, x, y)
    if region is None:
        return BlitStats()
    dy0, dy1, dx0, dx1, sy0, sy1, sx0, sx1 = region
    dst[dy0:dy1, dx0:dx1] = src[sy0:sy1, sx0:sx1]
    return BlitStats(pixels_copied=(dy1 - dy0) * (dx1 - dx0))


def alpha_blend(dst: np.ndarray, src: np.ndarray, x: int, y: int) -> BlitStats:
    """Src-over alpha blend of ``src`` into ``dst`` at (x, y), clipped.

    out.rgb = src.rgb * a + dst.rgb * (1 - a), with a = src.a / 255,
    computed in 16-bit fixed point exactly as a scalar blitter would
    (per-channel multiply, add, shift).
    """
    _check_rgba(dst, "dst")
    _check_rgba(src, "src")
    region = _clip(dst, src, x, y)
    if region is None:
        return BlitStats()
    dy0, dy1, dx0, dx1, sy0, sy1, sx0, sx1 = region
    s = src[sy0:sy1, sx0:sx1].astype(np.uint16)
    d = dst[dy0:dy1, dx0:dx1].astype(np.uint16)
    alpha = s[:, :, 3:4]
    inv = 255 - alpha
    blended_rgb = (s[:, :, :3] * alpha + d[:, :, :3] * inv + 127) // 255
    out_alpha = alpha + (d[:, :, 3:4] * inv + 127) // 255
    out = np.concatenate([blended_rgb, out_alpha], axis=2)
    dst[dy0:dy1, dx0:dx1] = np.clip(out, 0, 255).astype(np.uint8)
    return BlitStats(pixels_blended=(dy1 - dy0) * (dx1 - dx0))


def _clip(dst: np.ndarray, src: np.ndarray, x: int, y: int):
    """Intersect the src placement with dst bounds.

    Returns dst/src slice bounds, or None when fully clipped.
    """
    sh, sw = src.shape[:2]
    dh, dw = dst.shape[:2]
    dx0, dy0 = max(x, 0), max(y, 0)
    dx1, dy1 = min(x + sw, dw), min(y + sh, dh)
    if dx1 <= dx0 or dy1 <= dy0:
        return None
    sx0, sy0 = dx0 - x, dy0 - y
    sx1, sy1 = sx0 + (dx1 - dx0), sy0 + (dy1 - dy0)
    return dy0, dy1, dx0, dx1, sy0, sy1, sx0, sx1


def profile_color_blitting(
    stats: BlitStats, cached_fraction: float = 0.6
) -> KernelProfile:
    """Analytic profile for a batch of blit operations.

    Bytes touched per pixel by blit kind:

    * fill: write 4 B (no read);
    * copy: read 4 B, write 4 B;
    * blend: read src 4 B + dst 4 B, write 4 B, ~8 fixed-point ops.

    Skia paints through 32x32 work tiles, so a ``cached_fraction`` of the
    touched bytes (source pixels reused across overlapping draws, the hot
    destination tile) stays in the caches; the remainder streams off-chip.
    The default is calibrated to the paper's observation that 63.9% of
    color blitting energy is data movement (vs. 81.5% for tiling).
    """
    if not 0.0 <= cached_fraction < 1.0:
        raise ValueError("cached_fraction must be in [0, 1)")
    bytes_read = float(
        stats.pixels_copied * BYTES_PER_PIXEL + stats.pixels_blended * 2 * BYTES_PER_PIXEL
    )
    bytes_written = float(stats.total_pixels * BYTES_PER_PIXEL)
    total = bytes_read + bytes_written
    if total <= 0:
        raise ValueError("blit batch is empty")
    # ops (SIMD-equivalent): blends do ~6 fixed-point ops per 12 bytes
    # touched; fills/copies ~0.08 ops/byte of loop control.
    blend_bytes = stats.pixels_blended * 3 * BYTES_PER_PIXEL
    other_bytes = total - blend_bytes
    ops_per_byte = (blend_bytes * (6.0 / 12.0) + other_bytes * 0.08) / total
    mem_instructions = total / 8.0
    alu_ops = total * ops_per_byte
    instructions = mem_instructions + alu_ops + total * 0.02
    dram_bytes = total * (1.0 - cached_fraction)
    lines = dram_bytes / 64.0
    return KernelProfile(
        name="color_blitting",
        instructions=instructions,
        mem_instructions=mem_instructions,
        alu_ops=alu_ops,
        simd_fraction=0.98,
        l1_misses=lines * 1.2,
        llc_misses=lines,
        dram_bytes=dram_bytes,
        working_set_bytes=total,
        notes="Skia color blitter: fill/copy/src-over (Section 4.2.2)",
    )
