"""An LZO-class LZ77 byte compressor (paper Section 4.3).

Chrome's ZRAM swap compresses inactive-tab pages with LZO [111], a
byte-oriented LZ77 variant that favors speed over ratio: greedy parsing,
a small hash table over 4-byte prefixes, and byte-aligned output tokens.
This module implements a compressor/decompressor with the same structure
(not the LZO bitstream itself, which is irrelevant to the data-movement
analysis) plus the operation statistics the characterization needs.

Token format (byte-aligned):

* literal run:  control byte ``0xxxxxxx`` = run length - 1 (1..128),
  followed by the literal bytes;
* match:        control byte ``1xxxxxxx`` where the low 7 bits encode
  ``match length - MIN_MATCH`` (0..126; 127 means "read a varint for the
  remainder"), followed by a 2-byte little-endian distance (1..65535).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.recorder import get_recorder

MIN_MATCH = 4
MAX_DISTANCE = 0xFFFF
_HASH_MULT = 2654435761  # Knuth multiplicative hash
_LITERAL_MAX = 128
_LEN_FIELD_MAX = 126
_TABLE_SIZE = 1 << 14
#: Match extension compares this many bytes per slice comparison in the
#: fast path before falling back to a byte scan inside the failing chunk.
_EXTEND_CHUNK = 64
#: Decompression refuses to expand output beyond this many bytes (1 GB).
#: Legitimate streams stay far below it (a zram page is a few kB; even a
#: fully-zero multi-megabyte page is orders of magnitude smaller), but a
#: crafted varint can otherwise demand a multi-terabyte match copy and
#: crash the process with MemoryError instead of a clean rejection.
MAX_OUTPUT_BYTES = 1 << 30
#: Varint continuation bytes accepted before the value is declared
#: hostile (9 * 7 bits already exceeds the output cap above).
_MAX_VARINT_BYTES = 9


@dataclass
class LzoStats:
    """Operation counts from one compress/decompress call."""

    input_bytes: int = 0
    output_bytes: int = 0
    literal_runs: int = 0
    literal_bytes: int = 0
    matches: int = 0
    match_bytes: int = 0
    hash_lookups: int = 0
    compare_bytes: int = 0

    @property
    def ratio(self) -> float:
        """Compression ratio (input / output); > 1 means it compressed."""
        if self.output_bytes == 0:
            return 0.0
        return self.input_bytes / self.output_bytes


def _hash4(data: bytes, pos: int) -> int:
    word = (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    )
    return ((word * _HASH_MULT) & 0xFFFFFFFF) >> 18  # 14-bit table


def _hash_all(data: bytes) -> list:
    """Hashes of every 4-byte prefix of ``data``, computed vectorized.

    ``hashes[i] == _hash4(data, i)`` for every valid position; uint32
    multiplication wraps exactly like the scalar ``& 0xFFFFFFFF``.
    """
    arr = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    words = (
        arr[:-3] | (arr[1:-2] << 8) | (arr[2:-1] << 16) | (arr[3:] << 24)
    )
    return ((words * np.uint32(_HASH_MULT)) >> np.uint32(18)).tolist()


def _extend_match(data: bytes, candidate: int, pos: int, n: int) -> int:
    """Longest match length from (candidate, pos), chunked slice compares.

    Equivalent to the scalar byte-at-a-time extension: whole
    ``_EXTEND_CHUNK``-byte slices are compared at C speed, and the first
    unequal chunk is scanned bytewise for the exact mismatch offset.
    """
    length = MIN_MATCH
    limit = n - pos
    while length < limit:
        step = min(_EXTEND_CHUNK, limit - length)
        if (
            data[candidate + length : candidate + length + step]
            == data[pos + length : pos + length + step]
        ):
            length += step
            continue
        for _ in range(step):
            if data[candidate + length] != data[pos + length]:
                break
            length += 1
        break
    return length


def _compress_fast(data: bytes, stats: LzoStats) -> bytes:
    """Vectorized-scan compressor core: precomputed hash stream, flat
    probe table, and chunked match extension.  Emits byte-identical
    output and stats to the scalar core."""
    out = bytearray()
    hashes = _hash_all(data) if len(data) >= MIN_MATCH else []
    table = [-1] * _TABLE_SIZE
    literal_start = 0
    pos = 0
    n = len(data)
    while pos + MIN_MATCH <= n:
        h = hashes[pos]
        stats.hash_lookups += 1
        candidate = table[h]
        table[h] = pos
        if (
            candidate >= 0
            and pos - candidate <= MAX_DISTANCE
            and data[candidate : candidate + MIN_MATCH] == data[pos : pos + MIN_MATCH]
        ):
            length = _extend_match(data, candidate, pos, n)
            stats.compare_bytes += length
            _flush_literals(data, literal_start, pos, out, stats)
            _emit_match(length, pos - candidate, out, stats)
            pos += length
            literal_start = pos
        else:
            pos += 1
    _flush_literals(data, literal_start, n, out, stats)
    return bytes(out)


def compress(data: bytes, fast: bool = True) -> tuple[bytes, LzoStats]:
    """Greedy LZ77 compression.  Returns (compressed bytes, stats).

    ``fast`` (default) selects the vectorized-scan core (hash table built
    from a batched 4-byte hash of the whole input, chunked match
    extension); the scalar core hashes and compares byte by byte.  Both
    produce identical output bytes and statistics.
    """
    stats = LzoStats(input_bytes=len(data))
    get_recorder().counters.add(
        "kernel.lzo.fast_path" if fast else "kernel.lzo.scalar_path"
    )
    if fast:
        compressed = _compress_fast(data, stats)
        stats.output_bytes = len(compressed)
        return compressed, stats
    out = bytearray()
    table: dict[int, int] = {}
    literal_start = 0
    pos = 0
    n = len(data)
    while pos + MIN_MATCH <= n:
        h = _hash4(data, pos)
        stats.hash_lookups += 1
        candidate = table.get(h, -1)
        table[h] = pos
        if (
            candidate >= 0
            and pos - candidate <= MAX_DISTANCE
            and data[candidate : candidate + MIN_MATCH] == data[pos : pos + MIN_MATCH]
        ):
            # Extend the match as far as it goes.
            length = MIN_MATCH
            stats.compare_bytes += MIN_MATCH
            while pos + length < n and data[candidate + length] == data[pos + length]:
                length += 1
                stats.compare_bytes += 1
            _flush_literals(data, literal_start, pos, out, stats)
            _emit_match(length, pos - candidate, out, stats)
            pos += length
            literal_start = pos
        else:
            pos += 1
    _flush_literals(data, literal_start, n, out, stats)
    stats.output_bytes = len(out)
    return bytes(out), stats


def _flush_literals(
    data: bytes, start: int, end: int, out: bytearray, stats: LzoStats
) -> None:
    pos = start
    while pos < end:
        run = min(end - pos, _LITERAL_MAX)
        out.append(run - 1)
        out.extend(data[pos : pos + run])
        stats.literal_runs += 1
        stats.literal_bytes += run
        pos += run


def _emit_match(length: int, distance: int, out: bytearray, stats: LzoStats) -> None:
    stats.matches += 1
    stats.match_bytes += length
    base = length - MIN_MATCH
    if base < _LEN_FIELD_MAX + 1:
        out.append(0x80 | base)
    else:
        out.append(0x80 | 127)
        _emit_varint(base - 127, out)
    out.append(distance & 0xFF)
    out.append((distance >> 8) & 0xFF)


def _emit_varint(value: int, out: bytearray) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decompress(compressed: bytes, fast: bool = True) -> tuple[bytes, LzoStats]:
    """Inverse of :func:`compress`.  Returns (original bytes, stats).

    ``fast`` (default) copies non-overlapping matches as whole slices and
    expands self-overlapping matches by periodic replication (an LZ77
    overlap copy repeats the last ``distance`` bytes cyclically); the
    scalar path copies byte by byte.  Outputs and stats are identical.
    """
    stats = LzoStats(input_bytes=len(compressed))
    get_recorder().counters.add(
        "kernel.lzo.fast_path" if fast else "kernel.lzo.scalar_path"
    )
    out = bytearray()
    pos = 0
    n = len(compressed)
    while pos < n:
        control = compressed[pos]
        pos += 1
        if control & 0x80 == 0:
            run = control + 1
            if pos + run > n:
                raise ValueError("truncated literal run at offset %d" % pos)
            out.extend(compressed[pos : pos + run])
            stats.literal_runs += 1
            stats.literal_bytes += run
            pos += run
        else:
            base = control & 0x7F
            if base == 127:
                extra, pos = _read_varint(compressed, pos)
                base = 127 + extra
            length = base + MIN_MATCH
            if pos + 2 > n:
                raise ValueError("truncated match distance at offset %d" % pos)
            distance = compressed[pos] | (compressed[pos + 1] << 8)
            pos += 2
            if distance == 0 or distance > len(out):
                raise ValueError("invalid match distance %d at offset %d" % (distance, pos))
            if len(out) + length > MAX_OUTPUT_BYTES:
                raise ValueError(
                    "match of length %d at offset %d expands output beyond %d bytes"
                    % (length, pos, MAX_OUTPUT_BYTES)
                )
            start = len(out) - distance
            if not fast:
                # Byte-by-byte copy: LZ77 matches may overlap themselves.
                for i in range(length):
                    out.append(out[start + i])
            elif distance >= length:
                out += out[start : start + length]
            else:
                # Self-overlapping match: the copy repeats the trailing
                # ``distance`` bytes cyclically.
                pattern = bytes(out[start:])
                out += (pattern * (length // distance + 1))[:length]
            stats.matches += 1
            stats.match_bytes += length
    stats.output_bytes = len(out)
    return bytes(out), stats


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint at offset %d" % pos)
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte & 0x80 == 0:
            return value, pos
        shift += 7
        if shift >= _MAX_VARINT_BYTES * 7:
            raise ValueError("varint too long at offset %d" % pos)


def roundtrip(data: bytes) -> tuple[bytes, LzoStats, LzoStats]:
    """Compress then decompress; returns (compressed, cstats, dstats)."""
    compressed, cstats = compress(data)
    restored, dstats = decompress(compressed)
    if restored != data:
        raise AssertionError("LZO roundtrip failed")
    return compressed, cstats, dstats
