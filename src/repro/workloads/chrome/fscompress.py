"""User-transparent file-system compression with PIM (paper Section 4.3.2).

The paper closes its compression analysis with a forward-looking use
case: BTRFS/ZFS-style transparent file-system compression is avoided on
mobile OSes because the CPU-side (de)compression costs energy and
latency on every I/O; an in-memory compression unit removes the off-chip
movement and most of the latency.  This module models that scenario:

* an I/O stream (reads/writes of given sizes, with a flash device model);
* three configurations: no compression, CPU compression, PIM-Acc
  compression;
* outputs: energy per I/O, effective latency, and flash traffic saved.

The compression ratio defaults to the LZO-class ratio measured on the
synthetic browser content; flash energy/latency constants are typical
eMMC-class numbers (documented inline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.offload import OffloadEngine
from repro.core.target import PimTarget
from repro.workloads.chrome.zram import profile_compression, profile_decompression

KB = 1024.0
MB = 1024.0 * 1024.0


class FsConfig(str, enum.Enum):
    """Where (de)compression runs, if anywhere."""

    NONE = "no compression"
    CPU = "CPU compression"
    PIM = "PIM compression"


@dataclass(frozen=True)
class FlashModel:
    """eMMC-class flash storage constants."""

    read_energy_per_byte: float = 2.5e-9  # J/B (controller + NAND)
    write_energy_per_byte: float = 6.0e-9  # writes cost ~2-3x reads
    read_bandwidth: float = 250 * MB  # sequential
    write_bandwidth: float = 90 * MB


@dataclass
class FsIoResult:
    """Energy/latency/traffic for one I/O mix under one configuration."""

    config: FsConfig
    energy_j: float
    latency_s: float
    flash_bytes: float


class FsCompressionModel:
    """Transparent-compression model over a read/write byte mix."""

    def __init__(
        self,
        ratio: float = 2.7,
        flash: FlashModel | None = None,
        engine: OffloadEngine | None = None,
    ):
        if ratio < 1.0:
            raise ValueError("compression ratio must be >= 1")
        self.ratio = ratio
        self.flash = flash or FlashModel()
        self.engine = engine or OffloadEngine()

    # ------------------------------------------------------------------
    def evaluate(
        self, read_bytes: float, write_bytes: float, config: FsConfig
    ) -> FsIoResult:
        """Total energy/latency to service the given I/O volume."""
        if read_bytes < 0 or write_bytes < 0:
            raise ValueError("I/O volumes must be non-negative")
        flash = self.flash
        if config is FsConfig.NONE:
            flash_read, flash_write = read_bytes, write_bytes
            comp_energy = comp_latency = 0.0
        else:
            flash_read = read_bytes / self.ratio
            flash_write = write_bytes / self.ratio
            comp_energy, comp_latency = self._codec_cost(
                read_bytes, write_bytes, config
            )
        energy = (
            flash_read * flash.read_energy_per_byte
            + flash_write * flash.write_energy_per_byte
            + comp_energy
        )
        latency = (
            flash_read / flash.read_bandwidth
            + flash_write / flash.write_bandwidth
            + comp_latency
        )
        return FsIoResult(
            config=config,
            energy_j=energy,
            latency_s=latency,
            flash_bytes=flash_read + flash_write,
        )

    def _codec_cost(
        self, read_bytes: float, write_bytes: float, config: FsConfig
    ) -> tuple[float, float]:
        energy = latency = 0.0
        if write_bytes > 0:
            profile = profile_compression(write_bytes, self.ratio)
            target = PimTarget(
                "fs_compression", profile, accelerator_key="compression",
                invocations=max(int(write_bytes // (128 * KB)), 1),
            )
            execution = (
                self.engine.run_pim_acc(target)
                if config is FsConfig.PIM
                else self.engine.run_cpu(target)
            )
            energy += execution.energy_j
            latency += execution.time_s
        if read_bytes > 0:
            profile = profile_decompression(read_bytes, self.ratio)
            target = PimTarget(
                "fs_decompression", profile, accelerator_key="decompression",
                invocations=max(int(read_bytes // (128 * KB)), 1),
            )
            execution = (
                self.engine.run_pim_acc(target)
                if config is FsConfig.PIM
                else self.engine.run_cpu(target)
            )
            energy += execution.energy_j
            latency += execution.time_s
        return energy, latency

    # ------------------------------------------------------------------
    def compare(self, read_bytes: float, write_bytes: float) -> list[FsIoResult]:
        """All three configurations for one I/O mix."""
        return [
            self.evaluate(read_bytes, write_bytes, config) for config in FsConfig
        ]
