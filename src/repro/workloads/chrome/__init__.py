"""The Chrome browser workload (paper Section 4).

Two user interactions drive the analysis:

* **page scrolling** (:mod:`repro.workloads.chrome.pages`): layout,
  rasterization (color blitting via :mod:`.blitter`), texture tiling
  (:mod:`.texture`), compositing -- Figures 1-3;
* **tab switching** (:mod:`repro.workloads.chrome.zram`): ZRAM
  compression/decompression with an LZO-class compressor
  (:mod:`.lzo`) -- Figures 4-5.

:mod:`.targets` packages the four kernels as PIM targets for the
Figure 18 evaluation.
"""

from repro.workloads.chrome.texture import (
    TiledTexture,
    linear_to_tiled,
    tiled_to_linear,
    linear_to_tiled_traced,
    compositing_trace,
    profile_texture_tiling,
    TILE_W,
    TILE_H,
    TILE_BYTES,
)
from repro.workloads.chrome.blitter import (
    BlitStats,
    fill_rect,
    blit_copy,
    alpha_blend,
    profile_color_blitting,
)
from repro.workloads.chrome.lzo import (
    LzoStats,
    compress,
    decompress,
    roundtrip,
)
from repro.workloads.chrome.synthetic import generate_web_memory
from repro.workloads.chrome.zram import (
    ZramConfig,
    TabSwitchingSession,
    SwapTimeline,
    SwitchLatency,
    switch_latency,
    profile_compression,
    profile_decompression,
)
from repro.workloads.chrome.frame_budget import FRAME_BUDGET_S, FrameTime, frame_time, scroll_survey
from repro.workloads.chrome.pageload import PageLoadResult, evaluate_page_load, load_functions
from repro.workloads.chrome.rasterizer import (
    DisplayList,
    rasterize,
    synthetic_page_paint,
)
from repro.workloads.chrome.fscompress import FsCompressionModel, FsConfig, FlashModel
from repro.workloads.chrome.pages import WebPage, PAGES, PAGE_ORDER
from repro.workloads.chrome.targets import (
    browser_pim_targets,
    texture_tiling_target,
    color_blitting_target,
    compression_target,
    decompression_target,
)

__all__ = [
    "TiledTexture",
    "linear_to_tiled",
    "tiled_to_linear",
    "linear_to_tiled_traced",
    "compositing_trace",
    "profile_texture_tiling",
    "TILE_W",
    "TILE_H",
    "TILE_BYTES",
    "BlitStats",
    "fill_rect",
    "blit_copy",
    "alpha_blend",
    "profile_color_blitting",
    "LzoStats",
    "compress",
    "decompress",
    "roundtrip",
    "generate_web_memory",
    "ZramConfig",
    "TabSwitchingSession",
    "SwapTimeline",
    "profile_compression",
    "profile_decompression",
    "SwitchLatency",
    "switch_latency",
    "FRAME_BUDGET_S",
    "FrameTime",
    "frame_time",
    "scroll_survey",
    "PageLoadResult",
    "evaluate_page_load",
    "load_functions",
    "DisplayList",
    "rasterize",
    "synthetic_page_paint",
    "FsCompressionModel",
    "FsConfig",
    "FlashModel",
    "WebPage",
    "PAGES",
    "PAGE_ORDER",
    "browser_pim_targets",
    "texture_tiling_target",
    "color_blitting_target",
    "compression_target",
    "decompression_target",
]
