"""Browser PIM targets for the Figure 18 evaluation.

The paper evaluates four browser kernels in isolation (Section 9):
texture tiling on 512x512-pixel RGBA tiles, color blitting on randomly
generated bitmaps from 32x32 to 1024x1024 pixels, and LZO
compression/decompression on a memory dump of a 50-tab Chromebook
session.
"""

from __future__ import annotations

from repro.core.target import PimTarget
from repro.workloads.chrome.blitter import BlitStats, profile_color_blitting
from repro.workloads.chrome.texture import profile_texture_tiling
from repro.workloads.chrome.zram import profile_compression, profile_decompression

MB = 1024 * 1024


def texture_tiling_target(width: int = 512, height: int = 512) -> PimTarget:
    """Texture tiling microbenchmark (glTexImage2D-equivalent input)."""
    return PimTarget(
        name="texture_tiling",
        profile=profile_texture_tiling(width, height),
        accelerator_key="texture_tiling",
        invocations=1,
        workload="chrome",
    )


def color_blitting_target() -> PimTarget:
    """Color blitting over the paper's 32x32..1024x1024 bitmap sweep."""
    stats = BlitStats()
    size = 32
    while size <= 1024:
        pixels = size * size
        stats = stats.merged(
            BlitStats(
                pixels_filled=pixels // 4,
                pixels_copied=pixels // 4,
                pixels_blended=pixels // 2,
            )
        )
        size *= 2
    return PimTarget(
        name="color_blitting",
        profile=profile_color_blitting(stats),
        accelerator_key="color_blitting",
        invocations=6,
        workload="chrome",
    )


def compression_target(megabytes: float = 64.0) -> PimTarget:
    """LZO compression of browser-memory content (ZRAM swap-out)."""
    return PimTarget(
        name="compression",
        profile=profile_compression(megabytes * MB),
        accelerator_key="compression",
        invocations=int(megabytes * MB // 4096),
        workload="chrome",
    )


def decompression_target(megabytes: float = 64.0) -> PimTarget:
    """LZO decompression of ZRAM-compressed pages (swap-in)."""
    return PimTarget(
        name="decompression",
        profile=profile_decompression(megabytes * MB),
        accelerator_key="decompression",
        invocations=int(megabytes * MB // 4096),
        workload="chrome",
    )


def browser_pim_targets() -> list[PimTarget]:
    """All four browser kernels of Figure 18, in figure order."""
    return [
        texture_tiling_target(),
        color_blitting_target(),
        compression_target(),
        decompression_target(),
    ]
