"""Web-page models for the scrolling study (paper Section 4.2).

The paper scrolls through six pages with the Telemetry framework: three
Google services (Docs, Gmail, Calendar), two top-25 sites (WordPress,
Twitter), and one animation-heavy page.  Real page content is not
available offline, so each page is modeled by the parameters that drive
the scrolling pipeline's data movement:

* how many new pixels are rasterized per scrolled frame (texture area);
* how much the blitter overdraws, and what fraction of blits are
  src-over blends (text anti-aliasing) vs fills/copies;
* how much layout/JavaScript compute the page triggers per frame.

The parameters below were chosen so the resulting energy shares match
Figure 1 (texture tiling + color blitting = 41.9% of scrolling energy on
average, with Google Docs near 31% tiling / 19% blitting as in Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workload import WorkloadFunction
from repro.sim.profile import KernelProfile
from repro.workloads.chrome.blitter import BlitStats, profile_color_blitting
from repro.workloads.chrome.texture import profile_texture_tiling

MB = 1024 * 1024

#: Display geometry of the Chromebook test platform.
SCREEN_W = 1366
SCREEN_H = 768


@dataclass(frozen=True)
class WebPage:
    """Scrolling-relevant characteristics of one web page."""

    name: str
    #: Frames rendered during the scroll interaction.
    scroll_frames: int
    #: Newly rasterized pixels per frame (scroll speed x width, plus
    #: invalidations).
    raster_pixels_per_frame: float
    #: Blitted pixels per rasterized pixel (overdraw from layers/text).
    blit_overdraw: float
    #: Fraction of blitted pixels using src-over blending (text AA).
    blend_fraction: float
    #: Layout + style recalculation instructions per frame.
    layout_instructions_per_frame: float
    #: JavaScript instructions per frame.
    js_instructions_per_frame: float

    # ------------------------------------------------------------------
    @property
    def raster_pixels(self) -> float:
        return self.scroll_frames * self.raster_pixels_per_frame

    def tiling_profile(self) -> KernelProfile:
        """All texture tiling triggered by the scroll."""
        # Tiling converts each rasterized bitmap once; express the total
        # area as an equivalent square bitmap for the profile.
        pixels = self.raster_pixels
        side = max(int(pixels**0.5), 1)
        return profile_texture_tiling(side, int(pixels / side))

    def blit_stats(self) -> BlitStats:
        blitted = self.raster_pixels * self.blit_overdraw
        blended = blitted * self.blend_fraction
        remainder = blitted - blended
        return BlitStats(
            pixels_filled=int(remainder * 0.5),
            pixels_copied=int(remainder * 0.5),
            pixels_blended=int(blended),
        )

    def blitting_profile(self) -> KernelProfile:
        return profile_color_blitting(self.blit_stats())

    def other_profile(self) -> KernelProfile:
        """Layout, JavaScript, paint bookkeeping, compositing handoff.

        Mostly compute-bound with cache-friendly working sets; each of the
        many functions in this bucket is individually <1% of energy
        (paper Figure 1, "Other").
        """
        instructions = self.scroll_frames * (
            self.layout_instructions_per_frame + self.js_instructions_per_frame
        )
        # DOM/render-tree traversal is pointer chasing over structures that
        # do not fit in the LLC; the page-level MPKI the paper reports
        # (21.4 average) implies the non-kernel code is memory-intensive
        # too (llc miss rate ~0.014/instruction = MPKI 14 here).
        llc_misses = instructions * 0.014
        return KernelProfile(
            name="other",
            instructions=instructions,
            mem_instructions=instructions * 0.35,
            alu_ops=instructions * 0.45,
            simd_fraction=0.05,
            l1_misses=instructions * 0.03,
            llc_misses=llc_misses,
            dram_bytes=llc_misses * 64,
            working_set_bytes=48 * MB,
            notes="layout + JS + misc (<1% each)",
        )

    def scrolling_functions(self) -> list[WorkloadFunction]:
        """The scrolling workload decomposition used for Figures 1-2."""
        return [
            WorkloadFunction(
                "texture_tiling",
                self.tiling_profile(),
                accelerator_key="texture_tiling",
                invocations=max(self.scroll_frames // 2, 1),
            ),
            WorkloadFunction(
                "color_blitting",
                self.blitting_profile(),
                accelerator_key="color_blitting",
                invocations=self.scroll_frames,
            ),
            WorkloadFunction("other", self.other_profile()),
        ]


def _page(
    name: str,
    raster_kpixels: float,
    overdraw: float,
    blend: float,
    layout_mi: float,
    js_mi: float,
    frames: int = 120,
) -> WebPage:
    return WebPage(
        name=name,
        scroll_frames=frames,
        raster_pixels_per_frame=raster_kpixels * 1000.0,
        blit_overdraw=overdraw,
        blend_fraction=blend,
        layout_instructions_per_frame=layout_mi * 1e6,
        js_instructions_per_frame=js_mi * 1e6,
    )


#: The six pages of Figure 1.  Tiling-vs-blitting balance and the size of
#: the "Other" bucket vary per page as in the paper: the Google services
#: are texture-heavy, Twitter/WordPress carry more script, the animation
#: page redraws constantly with blend-heavy painting.
PAGES: dict[str, WebPage] = {
    "Google Docs": _page(
        "Google Docs", raster_kpixels=520, overdraw=1.1, blend=0.75,
        layout_mi=3.4, js_mi=2.7,
    ),
    "Gmail": _page(
        "Gmail", raster_kpixels=420, overdraw=1.0, blend=0.7,
        layout_mi=3.8, js_mi=4.2,
    ),
    "Google Calendar": _page(
        "Google Calendar", raster_kpixels=460, overdraw=1.2, blend=0.6,
        layout_mi=4.2, js_mi=3.1,
    ),
    "WordPress": _page(
        "WordPress", raster_kpixels=360, overdraw=1.0, blend=0.6,
        layout_mi=3.4, js_mi=5.0,
    ),
    "Twitter": _page(
        "Twitter", raster_kpixels=340, overdraw=1.1, blend=0.65,
        layout_mi=3.1, js_mi=5.4,
    ),
    "Animation": _page(
        "Animation", raster_kpixels=600, overdraw=1.6, blend=0.8,
        layout_mi=2.3, js_mi=3.4,
    ),
}

#: Figure order used throughout the paper's Chrome plots.
PAGE_ORDER = [
    "Google Docs",
    "Gmail",
    "Google Calendar",
    "WordPress",
    "Twitter",
    "Animation",
]
