"""Synthetic web-like memory content.

The paper generates its compression input by dumping the memory of a
Chromebook with 50 open tabs.  We cannot dump real browser memory, so
this module synthesizes content with the same compression-relevant
statistics: a mix of highly repetitive DOM/style structures, moderately
compressible text, JSON-ish markup, zero pages, and incompressible
(image/JPEG-like) data.  The mix is chosen so LZO-class compression
lands near the ~2.5-3x ratio reported for browser memory.
"""

from __future__ import annotations

import numpy as np

PAGE_BYTES = 4096

_WORDS = (
    b"the quick brown fox jumps over lazy dog google chrome browser "
    b"document window element style margin padding width height color "
    b"function return var const let html body div span class id data "
).split()

_MARKUP = (
    b'<div class="%s" id="item-%d" style="width:%dpx;height:%dpx">',
    b'{"type":"%s","index":%d,"w":%d,"h":%d},',
    b".cls-%d { margin: %dpx; padding: %dpx; } /* %s */",
)


def _text_page(rng: np.random.Generator) -> bytes:
    words = [bytes(_WORDS[rng.integers(0, len(_WORDS))]) for _ in range(700)]
    return b" ".join(words)[:PAGE_BYTES].ljust(PAGE_BYTES, b" ")


def _markup_page(rng: np.random.Generator) -> bytes:
    out = bytearray()
    while len(out) < PAGE_BYTES:
        template = _MARKUP[int(rng.integers(0, len(_MARKUP)))]
        cls = bytes(_WORDS[rng.integers(0, len(_WORDS))])
        if template is _MARKUP[2]:
            out += template % (
                int(rng.integers(0, 100)),
                int(rng.integers(0, 64)),
                int(rng.integers(0, 64)),
                cls,
            )
        else:
            out += template % (
                cls,
                int(rng.integers(0, 1000)),
                int(rng.integers(1, 1920)),
                int(rng.integers(1, 1080)),
            )
    return bytes(out[:PAGE_BYTES])


def _zero_page(rng: np.random.Generator) -> bytes:
    return b"\x00" * PAGE_BYTES


def _random_page(rng: np.random.Generator) -> bytes:
    return rng.integers(0, 256, size=PAGE_BYTES, dtype=np.uint8).tobytes()


#: (generator, weight) -- weights approximate browser-heap composition.
_PAGE_MIX = (
    (_markup_page, 0.35),
    (_text_page, 0.30),
    (_zero_page, 0.15),
    (_random_page, 0.20),
)


def generate_web_memory(size_bytes: int, seed: int = 0) -> bytes:
    """Synthesize ``size_bytes`` of browser-like memory content."""
    if size_bytes < 0:
        raise ValueError("size_bytes must be non-negative")
    rng = np.random.default_rng(seed)
    generators = [g for g, _ in _PAGE_MIX]
    weights = np.array([w for _, w in _PAGE_MIX])
    weights = weights / weights.sum()
    out = bytearray()
    while len(out) < size_bytes:
        idx = int(rng.choice(len(generators), p=weights))
        out += generators[idx](rng)
    return bytes(out[:size_bytes])
