"""Video PIM targets for the Figure 20 evaluation.

The paper evaluates the three software-codec kernels in isolation
(Section 9): sub-pixel interpolation and the deblocking filter on 100
frames of 4K video, and motion estimation on 10 frames of HD video.
"""

from __future__ import annotations

from repro.core.target import PimTarget
from repro.workloads.vp9.frame import RESOLUTIONS
from repro.workloads.vp9.profiles import (
    profile_deblocking_filter,
    profile_motion_estimation,
    profile_sub_pixel_interpolation,
)


def sub_pixel_interpolation_target(frames: int = 100) -> PimTarget:
    width, height = RESOLUTIONS["4K"]
    return PimTarget(
        name="sub_pixel_interpolation",
        profile=profile_sub_pixel_interpolation(width, height, frames),
        accelerator_key="sub_pixel_interpolation",
        invocations=frames,
        workload="vp9",
    )


def deblocking_filter_target(frames: int = 100) -> PimTarget:
    width, height = RESOLUTIONS["4K"]
    return PimTarget(
        name="deblocking_filter",
        profile=profile_deblocking_filter(width, height, frames),
        accelerator_key="deblocking_filter",
        invocations=frames,
        workload="vp9",
    )


def motion_estimation_target(frames: int = 10) -> PimTarget:
    width, height = RESOLUTIONS["HD"]
    return PimTarget(
        name="motion_estimation",
        profile=profile_motion_estimation(width, height, frames),
        accelerator_key="motion_estimation",
        invocations=frames,
        workload="vp9",
    )


def video_pim_targets() -> list[PimTarget]:
    """The three Figure 20 kernels, in figure order."""
    return [
        sub_pixel_interpolation_target(),
        deblocking_filter_target(),
        motion_estimation_target(),
    ]
