"""Block transforms and coefficient quantization (paper Figure 9, 5-6).

The residual path of the codec: a 2-D orthonormal DCT-II on 8x8 blocks,
uniform scalar quantization of the coefficients, and the inverses.  The
forward/inverse pair is numerically exact to float64 precision; the only
loss in the codec is quantization, as in real VP9.
"""

from __future__ import annotations

import numpy as np

#: Transform block edge (pixels).
BLOCK = 8


def _dct_matrix(n: int) -> np.ndarray:
    """The orthonormal DCT-II matrix of size n."""
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    mat[0] *= 1.0 / np.sqrt(2.0)
    return mat * np.sqrt(2.0 / n)


_DCT8 = _dct_matrix(BLOCK)


def forward_dct(block: np.ndarray) -> np.ndarray:
    """2-D DCT-II of one 8x8 residual block (float64 coefficients)."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError("forward_dct expects an 8x8 block")
    return _DCT8 @ block @ _DCT8.T


def inverse_dct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT-II (exact inverse of :func:`forward_dct`)."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != (BLOCK, BLOCK):
        raise ValueError("inverse_dct expects an 8x8 block")
    return _DCT8.T @ coeffs @ _DCT8


def quantize_coefficients(coeffs: np.ndarray, qstep: float) -> np.ndarray:
    """Uniform scalar quantization to int32 levels."""
    if qstep <= 0:
        raise ValueError("qstep must be positive")
    return np.round(np.asarray(coeffs, dtype=np.float64) / qstep).astype(np.int32)


def dequantize_coefficients(levels: np.ndarray, qstep: float) -> np.ndarray:
    """Reconstruction: level * qstep."""
    if qstep <= 0:
        raise ValueError("qstep must be positive")
    return np.asarray(levels, dtype=np.float64) * qstep


#: Zigzag scan order for 8x8 blocks (low frequencies first).
def _zigzag_order(n: int) -> np.ndarray:
    order = sorted(
        ((y, x) for y in range(n) for x in range(n)),
        key=lambda p: (p[0] + p[1], p[1] if (p[0] + p[1]) % 2 == 0 else p[0]),
    )
    return np.array([y * n + x for y, x in order], dtype=np.int64)


ZIGZAG = _zigzag_order(BLOCK)
INVERSE_ZIGZAG = np.argsort(ZIGZAG)


def zigzag_scan(levels: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 level block in zigzag order."""
    return np.asarray(levels).reshape(-1)[ZIGZAG]


def zigzag_unscan(scanned: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_scan`."""
    return np.asarray(scanned)[INVERSE_ZIGZAG].reshape(BLOCK, BLOCK)
