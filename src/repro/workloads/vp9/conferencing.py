"""Video conferencing: simultaneous capture + playback (Section 7 intro).

Google Hangouts runs the encoder (camera capture) and the decoder (the
remote participant's stream) at the same time -- the heaviest sustained
video load a consumer device sees.  This module composes the two
software-codec workloads into one combined characterization and
evaluates how much PIM recovers, both per-kernel and for the whole call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.offload import OffloadEngine
from repro.core.workload import (
    WorkloadCharacterization,
    characterize,
    offloaded_totals,
)
from repro.workloads.vp9.profiles import decoder_functions, encoder_functions


@dataclass(frozen=True)
class ConferencingScenario:
    """One two-way call: encode the camera, decode the remote stream."""

    capture_width: int = 1280
    capture_height: int = 720
    playback_width: int = 1280
    playback_height: int = 720
    frames: int = 30  # one second at 30 fps

    def functions(self):
        """The combined workload: encoder + decoder functions, with the
        shared deblocking filter kept as separate entries (they run on
        different frames)."""
        enc = encoder_functions(
            self.capture_width, self.capture_height, self.frames
        )
        dec = decoder_functions(
            self.playback_width, self.playback_height, self.frames
        )
        out = []
        for f in enc:
            out.append(
                type(f)(
                    name="capture_" + f.name,
                    profile=f.profile,
                    accelerator_key=f.accelerator_key,
                    invocations=f.invocations,
                )
            )
        for f in dec:
            out.append(
                type(f)(
                    name="playback_" + f.name,
                    profile=f.profile,
                    accelerator_key=f.accelerator_key,
                    invocations=f.invocations,
                )
            )
        return out

    def characterize(self) -> WorkloadCharacterization:
        return characterize("video_conferencing", self.functions())


@dataclass(frozen=True)
class ConferencingResult:
    """Whole-call comparison."""

    cpu_energy_j: float
    pim_energy_j: float
    cpu_time_s: float
    pim_time_s: float
    movement_fraction: float
    offloadable_share: float

    @property
    def energy_reduction(self) -> float:
        if self.cpu_energy_j <= 0:
            return 0.0
        return 1.0 - self.pim_energy_j / self.cpu_energy_j


def evaluate_conferencing(
    scenario: ConferencingScenario | None = None,
    engine: OffloadEngine | None = None,
) -> ConferencingResult:
    """Energy of one second of a call, CPU-only vs. PIM-offloaded."""
    scenario = scenario or ConferencingScenario()
    engine = engine or OffloadEngine()
    functions = scenario.functions()
    ch = characterize("video_conferencing", functions)
    totals = offloaded_totals(functions, engine)
    offloadable = sum(
        ch.energy_share(f.name) for f in functions if f.accelerator_key
    )
    return ConferencingResult(
        cpu_energy_j=totals.cpu_energy_j,
        pim_energy_j=totals.pim_energy_j,
        cpu_time_s=totals.cpu_time_s,
        pim_time_s=totals.pim_time_s,
        movement_fraction=ch.data_movement_fraction,
        offloadable_share=offloadable,
    )
