"""Intra prediction (paper Figure 14, 3).

Predicts a macroblock from its already-reconstructed neighbours inside
the same frame.  The four classic modes (DC, vertical, horizontal,
TrueMotion) cover the behaviour that matters here; the encoder's mode
decision picks the best one per macroblock by SAD.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.vp9.frame import MACROBLOCK

INTRA_MODES = ("dc", "vertical", "horizontal", "tm")


def intra_predict(
    reconstructed: np.ndarray, row: int, col: int, mode: str, size: int = MACROBLOCK
) -> np.ndarray:
    """Predict the (row, col) block from reconstructed neighbours.

    Args:
        reconstructed: the frame being reconstructed (uint8); only pixels
            above and left of the target block are read.
        row, col: block coordinates in *blocks*, not pixels.
        mode: one of :data:`INTRA_MODES`.

    Returns:
        The (size, size) uint8 prediction.
    """
    if mode not in INTRA_MODES:
        raise ValueError("unknown intra mode %r" % (mode,))
    y, x = row * size, col * size
    have_top = y > 0
    have_left = x > 0
    top = reconstructed[y - 1, x : x + size].astype(np.int32) if have_top else None
    left = reconstructed[y : y + size, x - 1].astype(np.int32) if have_left else None
    corner = int(reconstructed[y - 1, x - 1]) if (have_top and have_left) else 128

    if mode == "dc":
        parts = []
        if top is not None:
            parts.append(top)
        if left is not None:
            parts.append(left)
        dc = int(np.mean(np.concatenate(parts))) if parts else 128
        pred = np.full((size, size), dc, dtype=np.int32)
    elif mode == "vertical":
        row_vals = top if top is not None else np.full(size, 128, dtype=np.int32)
        pred = np.tile(row_vals, (size, 1))
    elif mode == "horizontal":
        col_vals = left if left is not None else np.full(size, 128, dtype=np.int32)
        pred = np.tile(col_vals.reshape(-1, 1), (1, size))
    else:  # TrueMotion: left + top - corner, clamped.
        t = top if top is not None else np.full(size, 128, dtype=np.int32)
        l = left if left is not None else np.full(size, 128, dtype=np.int32)
        pred = l.reshape(-1, 1) + t.reshape(1, -1) - corner
    return np.clip(pred, 0, 255).astype(np.uint8)


def best_intra_mode(
    reconstructed: np.ndarray, target: np.ndarray, row: int, col: int, size: int = MACROBLOCK
) -> tuple[str, np.ndarray, int]:
    """Pick the intra mode minimizing SAD against ``target``.

    Returns (mode, prediction, sad).
    """
    best = None
    for mode in INTRA_MODES:
        pred = intra_predict(reconstructed, row, col, mode, size)
        cost = int(np.abs(pred.astype(np.int32) - target.astype(np.int32)).sum())
        if best is None or cost < best[2]:
            best = (mode, pred, cost)
    return best
