"""The VP9-class decoder (paper Figure 9).

Mirrors the encoder exactly: entropy decode -> motion vectors / intra
modes -> inverse quantization -> inverse transform -> motion
compensation (with sub-pixel interpolation) or intra prediction ->
reconstruction -> deblocking filter.  The output is bit-exact with the
encoder's reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.vp9.deblock import DeblockStats, deblock_frame
from repro.workloads.vp9.encoder import EncodedFrame, MAX_REFERENCES, _Contexts
from repro.workloads.vp9.entropy import RangeDecoder
from repro.workloads.vp9.frame import Frame, MACROBLOCK
from repro.workloads.vp9.mc import (
    MotionVector,
    motion_compensate_block,
    reference_pixels_fetched,
)
from repro.workloads.vp9.predict import INTRA_MODES, intra_predict
from repro.workloads.vp9.transform import (
    BLOCK,
    dequantize_coefficients,
    inverse_dct,
    zigzag_unscan,
)


@dataclass
class DecoderStats:
    """Aggregate operation counts over all decoded frames."""

    frames: int = 0
    macroblocks: int = 0
    inter_macroblocks: int = 0
    intra_macroblocks: int = 0
    split_macroblocks: int = 0
    subpel_blocks: int = 0
    reference_pixels: int = 0
    coded_blocks: int = 0
    nonzero_coefficients: int = 0
    deblock: DeblockStats = field(default_factory=DeblockStats)
    bitstream_bytes: int = 0

    @property
    def reference_pixels_per_pixel(self) -> float:
        """Reference pixels fetched per decoded pixel (paper: 2.9)."""
        decoded = self.macroblocks * MACROBLOCK * MACROBLOCK
        if decoded == 0:
            return 0.0
        return self.reference_pixels / decoded


def _decode_uint(dec: RangeDecoder, ctx: _Contexts) -> int:
    nbits = 0
    while dec.decode_adaptive(ctx.golomb):
        nbits += 1
        if nbits > 24:
            # Legal coefficient/MV magnitudes never reach 2^24.
            raise ValueError("corrupt bitstream: runaway Golomb prefix")
    if nbits == 0:
        return 0
    rest = dec.decode_literal(nbits - 1)
    return (1 << (nbits - 1)) | rest


def _decode_mv_component(dec: RangeDecoder, ctx: _Contexts) -> int:
    if dec.decode_adaptive(ctx.mv_zero):
        return 0
    negative = dec.decode_adaptive(ctx.mv_sign)
    magnitude = _decode_uint(dec, ctx) + 1
    return -magnitude if negative else magnitude


class Vp9Decoder:
    """Stateful decoder: feed :class:`EncodedFrame` objects in order."""

    def __init__(self):
        self.references: list[Frame] = []
        self.stats = DecoderStats()

    def decode_frame(self, encoded: EncodedFrame) -> Frame:
        dec = RangeDecoder(encoded.data)
        ctx = _Contexts()
        mb_cols = dec.decode_literal(12)
        mb_rows = dec.decode_literal(12)
        qstep = float(dec.decode_literal(8))
        is_key = bool(dec.decode_literal(1))
        deblock_threshold = dec.decode_literal(8)
        if qstep < 1:
            raise ValueError("corrupt bitstream: invalid qstep")
        if not (1 <= mb_cols <= 512 and 1 <= mb_rows <= 512):
            # Largest supported frame is 8K; a corrupt header must not
            # drive a multi-gigabyte frame allocation.
            raise ValueError(
                "corrupt bitstream: frame size %dx%d MBs" % (mb_cols, mb_rows)
            )
        if is_key:
            self.references.clear()
        elif not self.references:
            raise ValueError("inter frame received before any key frame")
        recon = Frame.blank(mb_cols * MACROBLOCK, mb_rows * MACROBLOCK)
        for row in range(mb_rows):
            for col in range(mb_cols):
                self._decode_macroblock(dec, ctx, recon, row, col, is_key, qstep)
        recon = deblock_frame(recon, deblock_threshold, self.stats.deblock)
        self.references.insert(0, recon)
        del self.references[MAX_REFERENCES:]
        self.stats.frames += 1
        self.stats.bitstream_bytes += len(encoded.data)
        return recon

    # ------------------------------------------------------------------
    def _decode_macroblock(
        self,
        dec: RangeDecoder,
        ctx: _Contexts,
        recon: Frame,
        row: int,
        col: int,
        is_key: bool,
        qstep: float,
    ) -> None:
        self.stats.macroblocks += 1
        is_inter = (not is_key) and bool(dec.decode_adaptive(ctx.mode))
        if is_inter:
            ref_idx = dec.decode_adaptive(ctx.ref_index[0])
            ref_idx |= dec.decode_adaptive(ctx.ref_index[1]) << 1
            if ref_idx >= len(self.references):
                raise ValueError("corrupt bitstream: reference %d missing" % ref_idx)
            ref = self.references[ref_idx].pixels
            split = bool(dec.decode_adaptive(ctx.split))
            if split:
                half = MACROBLOCK // 2
                prediction = np.empty((MACROBLOCK, MACROBLOCK), dtype=np.uint8)
                any_subpel = False
                for qy in range(2):
                    for qx in range(2):
                        dx = _decode_mv_component(dec, ctx)
                        dy = _decode_mv_component(dec, ctx)
                        sub_mv = MotionVector(dx=dx, dy=dy)
                        prediction[
                            qy * half : (qy + 1) * half,
                            qx * half : (qx + 1) * half,
                        ] = motion_compensate_block(
                            ref, row * 2 + qy, col * 2 + qx, sub_mv, size=half
                        )
                        self.stats.reference_pixels += reference_pixels_fetched(
                            sub_mv, size=half
                        )
                        any_subpel = any_subpel or sub_mv.is_subpel
                self.stats.split_macroblocks += 1
                if any_subpel:
                    self.stats.subpel_blocks += 1
            else:
                dx = _decode_mv_component(dec, ctx)
                dy = _decode_mv_component(dec, ctx)
                mv = MotionVector(dx=dx, dy=dy)
                prediction = motion_compensate_block(ref, row, col, mv)
                self.stats.reference_pixels += reference_pixels_fetched(mv)
                if mv.is_subpel:
                    self.stats.subpel_blocks += 1
            self.stats.inter_macroblocks += 1
        else:
            mode_idx = dec.decode_adaptive(ctx.intra_mode[0])
            mode_idx |= dec.decode_adaptive(ctx.intra_mode[1]) << 1
            prediction = intra_predict(recon.pixels, row, col, INTRA_MODES[mode_idx])
            self.stats.intra_macroblocks += 1
        block = prediction.astype(np.int32).copy()
        n = MACROBLOCK // BLOCK
        for by in range(n):
            for bx in range(n):
                if not dec.decode_adaptive(ctx.block_coded):
                    continue
                self.stats.coded_blocks += 1
                eob = dec.decode_literal(7)
                if eob > BLOCK * BLOCK:
                    raise ValueError("corrupt bitstream: EOB %d out of range" % eob)
                scanned = np.zeros(BLOCK * BLOCK, dtype=np.int32)
                for i in range(eob):
                    if dec.decode_adaptive(ctx.coeff_zero):
                        continue
                    negative = dec.decode_adaptive(ctx.coeff_sign)
                    magnitude = _decode_uint(dec, ctx) + 1
                    scanned[i] = -magnitude if negative else magnitude
                    self.stats.nonzero_coefficients += 1
                rec_sub = inverse_dct(
                    dequantize_coefficients(zigzag_unscan(scanned), qstep)
                )
                block[
                    by * BLOCK : (by + 1) * BLOCK, bx * BLOCK : (bx + 1) * BLOCK
                ] += np.round(rec_sub).astype(np.int32)
        recon.set_macroblock(row, col, np.clip(block, 0, 255).astype(np.uint8))


def decode_video(encoded: list[EncodedFrame]) -> tuple[list[Frame], Vp9Decoder]:
    """Decode a sequence; returns (frames, decoder)."""
    decoder = Vp9Decoder()
    return [decoder.decode_frame(e) for e in encoded], decoder
