"""Lossless reference-frame compression (paper Sections 6.3.1, 7.3.1).

The hardware VP9 codec can store reference/reconstructed frames in a
losslessly compressed format to cut the off-chip pixel traffic; the
paper's Figures 12/16/21 evaluate the codec with and without it.  The
hardware model (:mod:`repro.workloads.vp9.hardware`) summarizes the
effect as ``FRAME_COMPRESSION_FACTOR = 0.6`` (compressed frames keep
~60% of the raw bytes).

This module implements the scheme functionally so that constant is
*measured*, not asserted: per 8x8 block, pixels are predicted from their
left neighbour (DPCM), and the residuals are entropy-packed with a
per-block fixed-width bit packing (the width chosen per block, as
hardware schemes do to keep random block access cheap).  The test suite
verifies (a) lossless round-trips and (b) that compression of codec
output frames lands near the modeled 0.6 factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.vp9.frame import Frame

BLOCK = 8
#: Per-block header: 4 bits of residual bit-width.
HEADER_BITS = 4


@dataclass(frozen=True)
class CompressedFrame:
    """A losslessly compressed frame."""

    data: bytes
    width: int
    height: int

    @property
    def compressed_bytes(self) -> int:
        return len(self.data)

    @property
    def raw_bytes(self) -> int:
        return self.width * self.height

    @property
    def compression_factor(self) -> float:
        """Compressed size / raw size (the hardware model's factor)."""
        if self.raw_bytes == 0:
            return 0.0
        return self.compressed_bytes / self.raw_bytes


def _dpcm_residuals(block: np.ndarray) -> np.ndarray:
    """Left-neighbour DPCM; first column predicts from the row above
    (and 128 for the very first pixel)."""
    block = block.astype(np.int16)
    residual = np.empty_like(block)
    residual[:, 1:] = block[:, 1:] - block[:, :-1]
    residual[1:, 0] = block[1:, 0] - block[:-1, 0]
    residual[0, 0] = block[0, 0] - 128
    return residual


def _undo_dpcm(residual: np.ndarray) -> np.ndarray:
    out = np.empty_like(residual)
    # First column: vertical prediction chain seeded by 128.
    first_col = np.concatenate([[residual[0, 0] + 128], residual[1:, 0]])
    out[:, 0] = np.cumsum(first_col)
    # Remaining columns: horizontal prediction chain per row.
    for x in range(1, residual.shape[1]):
        out[:, x] = out[:, x - 1] + residual[:, x]
    return out


def _bits_needed(residual: np.ndarray) -> int:
    """Signed bit-width needed for the non-DC residuals of the block
    (the first pixel is always stored raw)."""
    flat = residual.reshape(-1)[1:]
    max_abs = int(np.abs(flat).max()) if flat.size else 0
    if max_abs == 0:
        return 0
    width = int(max_abs).bit_length() + 1  # sign bit
    return min(width, 9)


def compress_frame(frame: Frame) -> CompressedFrame:
    """Losslessly compress one frame (8x8 DPCM + per-block bit packing)."""
    pixels = frame.pixels
    h, w = pixels.shape
    bits: list[int] = []
    for by in range(0, h, BLOCK):
        for bx in range(0, w, BLOCK):
            block = pixels[by : by + BLOCK, bx : bx + BLOCK]
            residual = _dpcm_residuals(block)
            width = _bits_needed(residual)
            if width >= 9:
                # Incompressible block: store raw (escape width 15).
                bits.append(15)
                for value in block.reshape(-1):
                    bits.append(int(value))
                continue
            bits.append(width)
            bits.append(int(block[0, 0]))  # DC pixel stored raw
            if width == 0:
                continue
            offset = 1 << (width - 1)
            for value in residual.reshape(-1)[1:]:
                bits.append(int(value) + offset)
    # Bit-pack: each entry is (value, width) pairs flattened; we rebuild
    # widths on decode from the headers, so pack into a plain bitstream.
    packed = _pack(bits, pixels.shape)
    return CompressedFrame(data=packed, width=w, height=h)


def _pack(symbols: list[int], shape) -> bytes:
    """Pack the header/value symbol stream into bytes.

    The stream structure is deterministic given the frame size, so the
    packer re-derives each symbol's width exactly as the unpacker will.
    """
    h, w = shape
    out = bytearray()
    acc = 0
    filled = 0

    def put(value: int, width: int):
        nonlocal acc, filled
        acc = (acc << width) | (value & ((1 << width) - 1))
        filled += width
        while filled >= 8:
            filled -= 8
            out.append((acc >> filled) & 0xFF)
    idx = 0
    for _ in range((h // BLOCK) * (w // BLOCK)):
        header = symbols[idx]
        idx += 1
        put(header, HEADER_BITS)
        if header == 15:
            for _ in range(BLOCK * BLOCK):
                put(symbols[idx], 8)
                idx += 1
        else:
            put(symbols[idx], 8)  # raw DC pixel
            idx += 1
            if header > 0:
                for _ in range(BLOCK * BLOCK - 1):
                    put(symbols[idx], header)
                    idx += 1
    if filled:
        out.append((acc << (8 - filled)) & 0xFF)
    return bytes(out)


def decompress_frame(compressed: CompressedFrame) -> Frame:
    """Exact inverse of :func:`compress_frame`."""
    w, h = compressed.width, compressed.height
    data = compressed.data
    pos = 0  # bit position

    def take(width: int) -> int:
        nonlocal pos
        value = 0
        for _ in range(width):
            byte = data[pos >> 3] if (pos >> 3) < len(data) else 0
            value = (value << 1) | ((byte >> (7 - (pos & 7))) & 1)
            pos += 1
        return value

    pixels = np.empty((h, w), dtype=np.uint8)
    for by in range(0, h, BLOCK):
        for bx in range(0, w, BLOCK):
            header = take(HEADER_BITS)
            if header == 15:
                raw = np.array(
                    [take(8) for _ in range(BLOCK * BLOCK)], dtype=np.uint8
                ).reshape(BLOCK, BLOCK)
                pixels[by : by + BLOCK, bx : bx + BLOCK] = raw
                continue
            dc = take(8)
            if header == 0:
                residual = np.zeros((BLOCK, BLOCK), dtype=np.int16)
            else:
                offset = 1 << (header - 1)
                rest = (
                    np.array(
                        [take(header) for _ in range(BLOCK * BLOCK - 1)],
                        dtype=np.int16,
                    )
                    - offset
                )
                residual = np.concatenate([[0], rest]).reshape(BLOCK, BLOCK)
            residual[0, 0] = dc - 128  # DC was stored raw
            block = _undo_dpcm(residual)
            pixels[by : by + BLOCK, bx : bx + BLOCK] = np.clip(block, 0, 255).astype(
                np.uint8
            )
    return Frame(pixels=pixels)


def measure_compression_factor(frames: list[Frame]) -> float:
    """Average compressed/raw ratio over a frame list (validates the
    hardware model's FRAME_COMPRESSION_FACTOR constant)."""
    if not frames:
        raise ValueError("need at least one frame")
    factors = [compress_frame(f).compression_factor for f in frames]
    return sum(factors) / len(factors)
