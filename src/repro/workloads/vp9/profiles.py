"""Analytic kernel profiles for the VP9 software codec (Figures 10, 11, 15).

The functional codec in this package runs on small frames; the paper
characterizes 4K playback and HD capture.  These profiles scale the
codec's per-pixel operation/traffic structure (validated against the
functional implementation by the test suite) to arbitrary resolutions.

Per-pixel constants below come from the kernel definitions:

* **sub-pixel interpolation**: two 8-tap passes per predicted pixel
  (~16 MACs); the decoder fetches ~2.9 reference pixels per decoded
  pixel (Section 6.3.1), with poor locality because motion vectors point
  anywhere in the reference frame;
* **deblocking filter**: reads back the whole reconstructed frame plus
  neighbour columns/rows, modifies up to 2 pixels per edge: ~2.5 bytes
  of traffic and a few compare/average ops per pixel;
* **motion estimation**: diamond search over three reference frames,
  ~75 SAD rows per macroblock; the search windows overlap heavily, so
  off-chip traffic is a few bytes per pixel while compute is tens of
  ops per pixel.
"""

from __future__ import annotations

from repro.core.workload import WorkloadFunction
from repro.sim.profile import KernelProfile

#: Reference pixels fetched per decoded pixel (paper Section 6.3.1).
REF_PIXELS_PER_PIXEL = 2.9
#: Fraction of macroblocks that are inter-predicted in steady state.
INTER_FRACTION = 0.85
#: Fraction of inter blocks needing sub-pixel interpolation.
SUBPEL_FRACTION = 0.8


def profile_sub_pixel_interpolation(width: int, height: int, frames: int) -> KernelProfile:
    """Sub-pixel interpolation for ``frames`` frames of w x h video."""
    pixels = float(width * height * frames) * INTER_FRACTION * SUBPEL_FRACTION
    # Reference fetches: scattered, most miss the LLC (motion vectors
    # point anywhere); each predicted pixel also gets written once.
    ref_bytes = pixels * REF_PIXELS_PER_PIXEL * 0.95  # scant window-overlap reuse
    out_bytes = pixels
    dram_bytes = ref_bytes + out_bytes
    # Two 8-tap passes: ~3 SIMD multiply-accumulate/round ops per output
    # pixel (16 MACs across 8-16 lanes), plus vector loads.
    alu_ops = pixels * 3.0
    mem_instructions = (pixels * REF_PIXELS_PER_PIXEL + out_bytes) / 8.0
    instructions = alu_ops + mem_instructions + pixels * 0.35
    lines = dram_bytes / 64.0
    return KernelProfile(
        name="sub_pixel_interpolation",
        instructions=instructions,
        mem_instructions=mem_instructions,
        alu_ops=alu_ops,
        simd_fraction=0.95,
        l1_misses=lines * 1.3,
        llc_misses=lines,
        dram_bytes=dram_bytes,
        working_set_bytes=float(width * height * 2),
        notes="8-tap separable MC interpolation (Section 6.2.2)",
    )


def profile_other_mc(width: int, height: int, frames: int) -> KernelProfile:
    """The rest of motion compensation: full-pel copies, prediction
    setup, residual add."""
    pixels = float(width * height * frames) * INTER_FRACTION
    return KernelProfile.streaming(
        name="other_mc",
        bytes_read=pixels * 1.4,
        bytes_written=pixels * 0.6,
        ops_per_byte=0.3,
        instruction_overhead=0.1,
        simd_fraction=0.85,
        notes="full-pel MC, prediction assembly, residual add",
    )


def profile_deblocking_filter(width: int, height: int, frames: int) -> KernelProfile:
    """The in-loop deblocking filter over whole reconstructed frames."""
    pixels = float(width * height * frames)
    # Edge pixels read (4 per side per 8-px edge, both orientations) and
    # up to 2 modified per edge: ~2.3 bytes traffic per frame pixel.
    bytes_read = pixels * 1.5
    bytes_written = pixels * 0.8
    return KernelProfile.streaming(
        name="deblocking_filter",
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        ops_per_byte=0.6,
        instruction_overhead=0.05,
        simd_fraction=0.95,
        notes="low-pass filter over 8x8 block edges (Section 6.2.2)",
    )


def profile_entropy_decoder(width: int, height: int, frames: int) -> KernelProfile:
    """Range decoding of the compressed bitstream (cache-resident)."""
    bitstream_bytes = float(width * height * frames) * 0.04  # ~0.3 bpp
    return KernelProfile.cache_resident(
        name="entropy_decoder",
        bytes_touched=bitstream_bytes,
        reuse_factor=6.0,
        ops_per_byte=12.0,
        simd_fraction=0.0,
        notes="bit-serial range decoding; working set fits in cache",
    )


def profile_inverse_transform(width: int, height: int, frames: int) -> KernelProfile:
    """Inverse DCT + dequantization on coded blocks (cache-resident)."""
    coeff_bytes = float(width * height * frames) * 0.15  # coded-block coverage
    return KernelProfile.cache_resident(
        name="inverse_transform",
        bytes_touched=coeff_bytes,
        reuse_factor=2.0,
        ops_per_byte=4.0,
        simd_fraction=0.8,
        notes="8x8 IDCT + dequant on decoded coefficients",
    )


def profile_decoder_other(width: int, height: int, frames: int) -> KernelProfile:
    """Frame management, intra prediction, output copies."""
    pixels = float(width * height * frames)
    return KernelProfile.streaming(
        name="other",
        bytes_read=pixels * 0.4,
        bytes_written=pixels * 0.3,
        ops_per_byte=0.5,
        instruction_overhead=0.2,
        simd_fraction=0.4,
        notes="intra prediction, frame buffers, misc",
    )


def decoder_functions(width: int, height: int, frames: int) -> list[WorkloadFunction]:
    """The software-decoder workload decomposition (Figures 10 and 11)."""
    return [
        WorkloadFunction(
            "sub_pixel_interpolation",
            profile_sub_pixel_interpolation(width, height, frames),
            accelerator_key="sub_pixel_interpolation",
            invocations=frames,
        ),
        WorkloadFunction("other_mc", profile_other_mc(width, height, frames)),
        WorkloadFunction(
            "deblocking_filter",
            profile_deblocking_filter(width, height, frames),
            accelerator_key="deblocking_filter",
            invocations=frames,
        ),
        WorkloadFunction("entropy_decoder", profile_entropy_decoder(width, height, frames)),
        WorkloadFunction(
            "inverse_transform", profile_inverse_transform(width, height, frames)
        ),
        WorkloadFunction("other", profile_decoder_other(width, height, frames)),
    ]


# ----------------------------------------------------------------------
# Encoder side (Figure 15)
# ----------------------------------------------------------------------
#: Diamond-search candidate positions evaluated per macroblock per
#: reference (with early termination, well below the full diamond walk).
SADS_PER_MB_PER_REF = 12
#: References searched (paper Figure 14).
REFERENCES = 3


def profile_motion_estimation(width: int, height: int, frames: int) -> KernelProfile:
    """Diamond-search ME over three reference frames."""
    pixels = float(width * height * frames)
    sad_reads = pixels * SADS_PER_MB_PER_REF * REFERENCES  # pixel comparisons
    # Search windows overlap heavily between neighbouring macroblocks;
    # unique off-chip traffic is a few bytes per pixel per reference.
    dram_bytes = pixels * 1.6 * REFERENCES
    # CPU: 16-lane SAD instructions; accelerator: its systolic SAD array
    # retires ~2.7 pixel-diffs per datapath op (alu_ops sizes PIM-Acc).
    cpu_sad_instructions = sad_reads / 8.0
    alu_ops = sad_reads / 2.7
    mem_instructions = sad_reads / 16.0  # 16-byte vector loads
    instructions = cpu_sad_instructions + mem_instructions + pixels * 0.5
    lines = dram_bytes / 64.0
    return KernelProfile(
        name="motion_estimation",
        instructions=instructions,
        mem_instructions=mem_instructions,
        alu_ops=alu_ops,
        simd_fraction=0.4,
        l1_misses=lines * 2.0,
        llc_misses=lines,
        dram_bytes=dram_bytes,
        working_set_bytes=float(width * height * (REFERENCES + 1)),
        notes="diamond search + SAD over 3 references (Section 7.2.2)",
    )


def profile_intra_prediction(width: int, height: int, frames: int) -> KernelProfile:
    pixels = float(width * height * frames)
    return KernelProfile.cache_resident(
        name="intra_prediction",
        bytes_touched=pixels * 0.6,
        reuse_factor=4.0,
        ops_per_byte=1.5,
        simd_fraction=0.6,
        notes="4-mode intra prediction + SAD mode decision",
    )


def profile_transform(width: int, height: int, frames: int) -> KernelProfile:
    pixels = float(width * height * frames)
    return KernelProfile.cache_resident(
        name="transform",
        bytes_touched=pixels * 0.5,
        reuse_factor=2.0,
        ops_per_byte=2.0,
        simd_fraction=0.85,
        notes="forward 8x8 DCT on residuals",
    )


def profile_quantization_enc(width: int, height: int, frames: int) -> KernelProfile:
    pixels = float(width * height * frames)
    return KernelProfile.cache_resident(
        name="quantization",
        bytes_touched=pixels * 1.0,
        reuse_factor=1.5,
        ops_per_byte=1.2,
        simd_fraction=0.85,
        notes="coefficient quantization + zigzag",
    )


def encoder_functions(width: int, height: int, frames: int) -> list[WorkloadFunction]:
    """The software-encoder workload decomposition (Figure 15).

    "Other" is the encoder's internal decode loop (MC + deblocking +
    entropy coding of the reconstruction), which behaves like the
    software decoder (Section 7.2.1).
    """
    decode_loop = (
        profile_sub_pixel_interpolation(width, height, frames)
        .merged(profile_other_mc(width, height, frames), name="other")
        .scaled(0.8, name="other")
    )
    deblock = profile_deblocking_filter(width, height, frames)
    return [
        WorkloadFunction(
            "motion_estimation",
            profile_motion_estimation(width, height, frames),
            accelerator_key="motion_estimation",
            invocations=frames,
        ),
        WorkloadFunction(
            "intra_prediction", profile_intra_prediction(width, height, frames)
        ),
        WorkloadFunction("transform", profile_transform(width, height, frames)),
        WorkloadFunction(
            "quantization", profile_quantization_enc(width, height, frames)
        ),
        WorkloadFunction(
            "deblocking_filter",
            deblock,
            accelerator_key="deblocking_filter",
            invocations=frames,
        ),
        WorkloadFunction("other", decode_loop),
    ]
