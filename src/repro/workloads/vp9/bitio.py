"""Bit-granular I/O for the codec bitstream."""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first into a byte buffer."""

    def __init__(self):
        self._bytes = bytearray()
        self._current = 0
        self._filled = 0

    def write_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (1 if bit else 0)
        self._filled += 1
        if self._filled == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, most-significant first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if value < 0 or (count < 64 and value >> count):
            raise ValueError("value %d does not fit in %d bits" % (value, count))
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def getvalue(self) -> bytes:
        """The stream so far, zero-padded to a whole byte."""
        out = bytearray(self._bytes)
        if self._filled:
            out.append(self._current << (8 - self._filled))
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bytes) * 8 + self._filled


class BitReader:
    """Reads bits MSB-first from a byte buffer.

    Reading past the end returns zero bits (matching the writer's
    zero padding), so decoders never index out of bounds on the final
    partial byte.
    """

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # bit position

    def read_bit(self) -> int:
        byte_idx = self._pos >> 3
        if byte_idx >= len(self._data):
            self._pos += 1
            return 0
        bit = (self._data[byte_idx] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        if count < 0:
            raise ValueError("count must be non-negative")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    @property
    def bits_read(self) -> int:
        return self._pos
