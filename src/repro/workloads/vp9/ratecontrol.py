"""Rate control for the VP9-class encoder.

Real-time video capture (Section 7: Hangouts, YouTube live) encodes to a
*bitrate target*, not a fixed quantizer.  This module adds a classic
one-pass rate controller on top of :class:`Vp9Encoder`: a leaky "bit
bucket" tracks how far the stream is above/below target, and the
quantizer step for each frame is adjusted proportionally, within bounds.

This is an extension beyond the paper's evaluation (the paper encodes
with fixed parameters), included because a capture pipeline without rate
control would not be adoptable; the tests verify convergence to target
on stationary content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.vp9.encoder import EncodedFrame, Vp9Encoder
from repro.workloads.vp9.frame import Frame


@dataclass
class RateControlConfig:
    """Targets and bounds for the one-pass controller."""

    target_bytes_per_frame: float
    min_qstep: float = 2.0
    max_qstep: float = 120.0
    #: Proportional gain: fractional qstep change per fractional rate error.
    gain: float = 0.5
    #: Bucket leak: how much accumulated error carries between frames.
    leak: float = 0.7

    def __post_init__(self):
        if self.target_bytes_per_frame <= 0:
            raise ValueError("target must be positive")
        if not self.min_qstep < self.max_qstep:
            raise ValueError("qstep bounds inverted")


@dataclass
class RateControlledEncoder:
    """A Vp9Encoder wrapped with one-pass rate control."""

    config: RateControlConfig
    search_range: int = 16
    initial_qstep: float = 24.0
    _encoder: Vp9Encoder = field(init=False)
    _qstep: float = field(init=False)
    _debt: float = field(init=False, default=0.0)
    history: list = field(init=False, default_factory=list)

    def __post_init__(self):
        self._qstep = float(self.initial_qstep)
        self._encoder = Vp9Encoder(
            qstep=self._qstep, search_range=self.search_range
        )

    @property
    def qstep(self) -> float:
        return self._qstep

    def encode_frame(self, frame: Frame) -> EncodedFrame:
        self._encoder.qstep = float(int(round(self._qstep)))
        encoded = self._encoder.encode_frame(frame)
        self._update(len(encoded.data), encoded.is_key)
        self.history.append(
            {"bytes": len(encoded.data), "qstep": self._encoder.qstep,
             "is_key": encoded.is_key}
        )
        return encoded

    def _update(self, produced_bytes: int, is_key: bool) -> None:
        cfg = self.config
        # Key frames are naturally large; give them 3x budget before
        # charging the bucket.
        budget = cfg.target_bytes_per_frame * (3.0 if is_key else 1.0)
        error = (produced_bytes - budget) / cfg.target_bytes_per_frame
        self._debt = cfg.leak * self._debt + error
        adjustment = 1.0 + cfg.gain * self._debt
        adjustment = min(max(adjustment, 0.5), 2.0)
        self._qstep = min(
            max(self._qstep * adjustment, cfg.min_qstep), cfg.max_qstep
        )

    @property
    def stats(self):
        return self._encoder.stats

    @property
    def mean_bytes_per_frame(self) -> float:
        if not self.history:
            return 0.0
        inter = [h["bytes"] for h in self.history if not h["is_key"]]
        if not inter:
            return float(self.history[0]["bytes"])
        return sum(inter) / len(inter)


def encode_at_bitrate(
    frames: list[Frame], target_bytes_per_frame: float, **kwargs
) -> tuple[list[EncodedFrame], RateControlledEncoder]:
    """Encode a clip at a byte budget; returns (encoded, controller)."""
    controller = RateControlledEncoder(
        config=RateControlConfig(target_bytes_per_frame=target_bytes_per_frame),
        **kwargs,
    )
    return [controller.encode_frame(f) for f in frames], controller
