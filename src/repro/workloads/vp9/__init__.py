"""VP9 video playback and capture (paper Sections 6 and 7).

A from-scratch, simplified VP9-class codec plus analytical models of the
hardware encoder/decoder:

* :mod:`.frame` / :mod:`.video` -- frames and synthetic test video;
* :mod:`.bitio` / :mod:`.entropy` -- bit I/O and the adaptive binary
  range (boolean) coder;
* :mod:`.transform` -- integer-friendly DCT transforms + quantization;
* :mod:`.predict` -- intra prediction modes;
* :mod:`.mc` -- motion compensation with 8-tap sub-pixel interpolation
  (the decoder's dominant PIM target);
* :mod:`.me` -- diamond-search motion estimation with SAD matching (the
  encoder's dominant PIM target);
* :mod:`.deblock` -- the deblocking filter;
* :mod:`.encoder` / :mod:`.decoder` -- the full encode/decode loops
  (bit-exact reconstruction roundtrip);
* :mod:`.profiles` -- analytic kernel profiles and the Figure 10/11/15
  workload decompositions;
* :mod:`.hardware` -- the hardware codec off-chip traffic and energy
  models (Figures 12, 16, 21);
* :mod:`.targets` -- the Figure 20 PIM targets.
"""

from repro.workloads.vp9.frame import Frame, MACROBLOCK
from repro.workloads.vp9.video import synthetic_video
from repro.workloads.vp9.bitio import BitWriter, BitReader
from repro.workloads.vp9.entropy import RangeEncoder, RangeDecoder, AdaptiveBit
from repro.workloads.vp9.transform import (
    forward_dct,
    inverse_dct,
    quantize_coefficients,
    dequantize_coefficients,
)
from repro.workloads.vp9.predict import intra_predict, INTRA_MODES
from repro.workloads.vp9.mc import (
    MotionVector,
    interpolate_block,
    motion_compensate_block,
    SUBPEL_TAPS,
)
from repro.workloads.vp9.me import diamond_search, full_search, sad
from repro.workloads.vp9.deblock import deblock_frame
from repro.workloads.vp9.encoder import Vp9Encoder, EncodedFrame, EncoderStats
from repro.workloads.vp9.decoder import Vp9Decoder, DecoderStats
from repro.workloads.vp9.profiles import (
    decoder_functions,
    encoder_functions,
    profile_sub_pixel_interpolation,
    profile_deblocking_filter,
    profile_motion_estimation,
)
from repro.workloads.vp9.hardware import (
    HardwareDecoderModel,
    HardwareEncoderModel,
    CodecTraffic,
    PimPlacement,
)
from repro.workloads.vp9.framecompress import (
    CompressedFrame,
    compress_frame,
    decompress_frame,
    measure_compression_factor,
)
from repro.workloads.vp9.ratecontrol import (
    RateControlConfig,
    RateControlledEncoder,
    encode_at_bitrate,
)
from repro.workloads.vp9.conferencing import ConferencingScenario, evaluate_conferencing
from repro.workloads.vp9.rd import RdPoint, bd_psnr, rd_curve
from repro.workloads.vp9.targets import video_pim_targets

__all__ = [
    "Frame",
    "MACROBLOCK",
    "synthetic_video",
    "BitWriter",
    "BitReader",
    "RangeEncoder",
    "RangeDecoder",
    "AdaptiveBit",
    "forward_dct",
    "inverse_dct",
    "quantize_coefficients",
    "dequantize_coefficients",
    "intra_predict",
    "INTRA_MODES",
    "MotionVector",
    "interpolate_block",
    "motion_compensate_block",
    "SUBPEL_TAPS",
    "diamond_search",
    "full_search",
    "sad",
    "deblock_frame",
    "Vp9Encoder",
    "EncodedFrame",
    "EncoderStats",
    "Vp9Decoder",
    "DecoderStats",
    "decoder_functions",
    "encoder_functions",
    "profile_sub_pixel_interpolation",
    "profile_deblocking_filter",
    "profile_motion_estimation",
    "HardwareDecoderModel",
    "HardwareEncoderModel",
    "CodecTraffic",
    "PimPlacement",
    "video_pim_targets",
    "CompressedFrame",
    "compress_frame",
    "decompress_frame",
    "measure_compression_factor",
    "RateControlConfig",
    "RateControlledEncoder",
    "encode_at_bitrate",
    "ConferencingScenario",
    "evaluate_conferencing",
    "RdPoint",
    "bd_psnr",
    "rd_curve",
]
