"""Adaptive binary range coder (VP9's "boolean coder" equivalent).

VP9's entropy layer is a binary arithmetic coder driven by 8-bit
probabilities; symbols (motion vectors, coefficient magnitudes) are
binarized into trees of boolean decisions.  This module implements a
standard 32-bit binary arithmetic coder with carry (E3) handling plus a
counts-based adaptive probability model -- functionally the same class
of coder, verified by exact roundtrip in the tests.
"""

from __future__ import annotations

from repro.workloads.vp9.bitio import BitReader, BitWriter

_TOP = 0xFFFFFFFF
_HALF = 0x80000000
_QUARTER = 0x40000000
_THREE_QUARTER = 0xC0000000


class AdaptiveBit:
    """A counts-based adaptive probability for one binary context."""

    def __init__(self):
        self.count0 = 1
        self.count1 = 1

    @property
    def prob0(self) -> int:
        """P(bit = 0), scaled to 1..255."""
        p = (self.count0 * 256) // (self.count0 + self.count1)
        return min(max(p, 1), 255)

    def update(self, bit: int) -> None:
        if bit:
            self.count1 += 1
        else:
            self.count0 += 1
        # Periodic halving keeps the model adaptive to local statistics.
        if self.count0 + self.count1 > 1024:
            self.count0 = (self.count0 + 1) // 2
            self.count1 = (self.count1 + 1) // 2


class RangeEncoder:
    """Binary arithmetic encoder."""

    def __init__(self):
        self._writer = BitWriter()
        self._low = 0
        self._high = _TOP
        self._pending = 0
        self._closed = False

    def encode(self, bit: int, prob0: int = 128) -> None:
        """Encode one bit under P(0) = prob0/256."""
        if self._closed:
            raise RuntimeError("encoder already finished")
        if not 1 <= prob0 <= 255:
            raise ValueError("prob0 must be in 1..255")
        span = self._high - self._low + 1
        split = self._low + (span * prob0 >> 8) - 1
        if bit:
            self._low = split + 1
        else:
            self._high = split
        # Renormalize.
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTER:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low = (self._low << 1) & _TOP
            self._high = ((self._high << 1) | 1) & _TOP

    def encode_adaptive(self, bit: int, model: AdaptiveBit) -> None:
        self.encode(bit, model.prob0)
        model.update(bit)

    def encode_literal(self, value: int, bits: int) -> None:
        """Encode a raw ``bits``-wide literal at probability 1/2."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if value < 0 or (bits < 64 and value >> bits):
            raise ValueError("value %d does not fit in %d bits" % (value, bits))
        for shift in range(bits - 1, -1, -1):
            self.encode((value >> shift) & 1, 128)

    def _emit(self, bit: int) -> None:
        self._writer.write_bit(bit)
        while self._pending:
            self._writer.write_bit(1 - bit)
            self._pending -= 1

    def finish(self) -> bytes:
        """Flush the final interval and return the bitstream."""
        if not self._closed:
            self._pending += 1
            if self._low < _QUARTER:
                self._emit(0)
            else:
                self._emit(1)
            self._closed = True
        return self._writer.getvalue()


class RangeDecoder:
    """Binary arithmetic decoder (mirror of :class:`RangeEncoder`)."""

    def __init__(self, data: bytes):
        self._reader = BitReader(data)
        self._low = 0
        self._high = _TOP
        self._value = self._reader.read_bits(32)

    def decode(self, prob0: int = 128) -> int:
        if not 1 <= prob0 <= 255:
            raise ValueError("prob0 must be in 1..255")
        span = self._high - self._low + 1
        split = self._low + (span * prob0 >> 8) - 1
        bit = 0 if self._value <= split else 1
        if bit:
            self._low = split + 1
        else:
            self._high = split
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTER:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                break
            self._low = (self._low << 1) & _TOP
            self._high = ((self._high << 1) | 1) & _TOP
            self._value = ((self._value << 1) | self._reader.read_bit()) & _TOP
        return bit

    def decode_adaptive(self, model: AdaptiveBit) -> int:
        bit = self.decode(model.prob0)
        model.update(bit)
        return bit

    def decode_literal(self, bits: int) -> int:
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.decode(128)
        return value
