"""Rate-distortion tooling for the VP9-class codec.

Utilities for comparing encoder configurations the way codec work is
actually judged: encode the same clip across a quantizer sweep, collect
(bitrate, PSNR) points, and compare two configurations by the average
PSNR delta at matched bitrates (a simplified BD-PSNR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.vp9.decoder import decode_video
from repro.workloads.vp9.encoder import Vp9Encoder
from repro.workloads.vp9.frame import Frame


@dataclass(frozen=True)
class RdPoint:
    """One (rate, distortion) measurement."""

    qstep: float
    bits_per_pixel: float
    psnr_db: float


def rd_curve(
    frames: list[Frame],
    qsteps=(4, 8, 16, 32, 64),
    search_range: int = 16,
    allow_split: bool = True,
) -> list[RdPoint]:
    """Encode ``frames`` at each quantizer and measure rate/PSNR."""
    if not frames:
        raise ValueError("need at least one frame")
    pixels_per_frame = frames[0].width * frames[0].height
    points = []
    for qstep in qsteps:
        encoder = Vp9Encoder(
            qstep=qstep, search_range=search_range, allow_split=allow_split
        )
        encoded = [encoder.encode_frame(f) for f in frames]
        decoded, _ = decode_video(encoded)
        total_bits = 8.0 * sum(len(f.data) for f in encoded)
        bpp = total_bits / (pixels_per_frame * len(frames))
        finite = [
            f.psnr(d) for f, d in zip(frames, decoded) if f.psnr(d) != float("inf")
        ]
        psnr = sum(finite) / len(finite) if finite else 99.0
        points.append(RdPoint(qstep=float(qstep), bits_per_pixel=bpp, psnr_db=psnr))
    return points


def _interp_psnr(points: list[RdPoint], bpp: float) -> float:
    """PSNR at a bitrate, linearly interpolated in log-rate."""
    pts = sorted(points, key=lambda p: p.bits_per_pixel)
    rates = np.log([p.bits_per_pixel for p in pts])
    psnrs = np.array([p.psnr_db for p in pts])
    return float(np.interp(np.log(bpp), rates, psnrs))


def bd_psnr(reference: list[RdPoint], candidate: list[RdPoint]) -> float:
    """Average PSNR gain of ``candidate`` over ``reference`` across the
    overlapping bitrate range (positive = candidate is better).

    A simplified Bjontegaard delta: both curves are sampled at shared
    bitrates and the PSNR difference is averaged.
    """
    if len(reference) < 2 or len(candidate) < 2:
        raise ValueError("need at least two RD points per curve")
    lo = max(
        min(p.bits_per_pixel for p in reference),
        min(p.bits_per_pixel for p in candidate),
    )
    hi = min(
        max(p.bits_per_pixel for p in reference),
        max(p.bits_per_pixel for p in candidate),
    )
    if hi <= lo:
        raise ValueError("RD curves do not overlap in bitrate")
    samples = np.exp(np.linspace(np.log(lo), np.log(hi), 16))
    deltas = [
        _interp_psnr(candidate, b) - _interp_psnr(reference, b) for b in samples
    ]
    return float(np.mean(deltas))
