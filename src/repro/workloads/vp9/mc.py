"""Motion compensation with sub-pixel interpolation (paper Section 6.2.2).

VP9 motion vectors have up to 1/8-pixel resolution; when a vector points
between pixels, the predictor is built with separable 8-tap FIR filters
(horizontal pass, then vertical).  Interpolating a WxH block therefore
reads a (W+7)x(H+7) window of the reference frame -- the source of the
"2.9 reference pixels fetched per current pixel" the paper measures, and
the decoder's dominant data-movement component.

Filter coefficients are the even phases of libvpx's 8-tap "regular"
filter bank (128-scaled integers), giving exact integer arithmetic.

Two interpolation engines are provided: a vectorized fast path (the
default) that applies each separable pass as one windowed matrix product
over the whole block, and a per-pixel scalar oracle kept purely for
verification.  Both use exact integer arithmetic, so their outputs are
bit-identical; ``tests/perf/test_vectorized_equivalence.py`` enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.obs.recorder import get_recorder
from repro.workloads.vp9.frame import MACROBLOCK

#: 8-tap filters for the 8 eighth-pel phases (row = phase), 128-scaled.
SUBPEL_TAPS = np.array(
    [
        [0, 0, 0, 128, 0, 0, 0, 0],
        [-1, 3, -10, 122, 18, -6, 2, 0],
        [-1, 4, -16, 112, 37, -11, 4, -1],
        [-1, 5, -19, 97, 58, -16, 5, -1],
        [-1, 6, -19, 78, 78, -19, 6, -1],
        [-1, 5, -16, 58, 97, -19, 5, -1],
        [-1, 4, -11, 37, 112, -16, 4, -1],
        [0, 2, -6, 18, 122, -10, 3, -1],
    ],
    dtype=np.int32,
)

#: Filter footprint: 3 pixels before, 4 after the integer position.
TAPS_BEFORE = 3
TAPS_AFTER = 4


@dataclass(frozen=True)
class MotionVector:
    """A motion vector in eighth-pel units (positive = down/right)."""

    dx: int
    dy: int

    @property
    def int_x(self) -> int:
        return self.dx >> 3

    @property
    def int_y(self) -> int:
        return self.dy >> 3

    @property
    def frac_x(self) -> int:
        return self.dx & 7

    @property
    def frac_y(self) -> int:
        return self.dy & 7

    @property
    def is_subpel(self) -> bool:
        return bool(self.frac_x or self.frac_y)


def _clamped_window(
    ref: np.ndarray, y0: int, x0: int, h: int, w: int
) -> np.ndarray:
    """Read a (h, w) window at (y0, x0) with edge-clamped coordinates."""
    rows = np.clip(np.arange(y0, y0 + h), 0, ref.shape[0] - 1)
    cols = np.clip(np.arange(x0, x0 + w), 0, ref.shape[1] - 1)
    return ref[np.ix_(rows, cols)]


def _interpolate_fast(
    window: np.ndarray, frac_y: int, frac_x: int, h: int, w: int
) -> np.ndarray:
    """Vectorized separable filter: each pass is one windowed matrix
    product (``sliding_window_view @ taps``) over the whole block.

    All arithmetic is int32 (maximum per-pass magnitude is
    ``sum(|taps|) * 255 < 2^16``), so the result is bit-identical to the
    per-pixel oracle.
    """
    if frac_x:
        horiz = sliding_window_view(window, 8, axis=1) @ SUBPEL_TAPS[frac_x]
        horiz = np.clip((horiz + 64) >> 7, 0, 255)
    else:
        horiz = window[:, TAPS_BEFORE : TAPS_BEFORE + w]
    if frac_y:
        vert = sliding_window_view(horiz, 8, axis=0) @ SUBPEL_TAPS[frac_y]
        vert = np.clip((vert + 64) >> 7, 0, 255)
    else:
        vert = horiz[TAPS_BEFORE : TAPS_BEFORE + h, :]
    return vert.astype(np.uint8)


def _round_shift_clip(acc: int) -> int:
    value = (acc + 64) >> 7
    return 0 if value < 0 else (255 if value > 255 else value)


def _interpolate_scalar(
    window: np.ndarray, frac_y: int, frac_x: int, h: int, w: int
) -> np.ndarray:
    """Per-pixel scalar oracle: explicit 8-tap accumulation with Python
    integers, mirroring libvpx's convolve8 loop structure."""
    rows = window.tolist()
    if frac_x:
        taps = SUBPEL_TAPS[frac_x].tolist()
        horiz = [
            [
                _round_shift_clip(sum(taps[t] * row[x + t] for t in range(8)))
                for x in range(w)
            ]
            for row in rows
        ]
    else:
        horiz = [row[TAPS_BEFORE : TAPS_BEFORE + w] for row in rows]
    if frac_y:
        taps = SUBPEL_TAPS[frac_y].tolist()
        vert = [
            [
                _round_shift_clip(
                    sum(taps[t] * horiz[y + t][x] for t in range(8))
                )
                for x in range(w)
            ]
            for y in range(h)
        ]
    else:
        vert = horiz[TAPS_BEFORE : TAPS_BEFORE + h]
    return np.array(vert, dtype=np.uint8)


def interpolate_block(
    ref: np.ndarray,
    y0: int,
    x0: int,
    frac_y: int,
    frac_x: int,
    h: int,
    w: int,
    fast: bool = True,
) -> np.ndarray:
    """Interpolate a (h, w) block at integer base (y0, x0) + fractional
    offset (frac_y, frac_x) in eighth-pels.

    Separable: the horizontal 8-tap pass runs over (h+7) rows, then the
    vertical pass reduces to h rows.  Matches libvpx's convolve8 rounding
    (add 64, shift 7, clip) at each stage.  ``fast`` selects the
    vectorized engine (default) or the per-pixel scalar oracle; the two
    are bit-identical.
    """
    if not (0 <= frac_x < 8 and 0 <= frac_y < 8):
        raise ValueError("fractional offsets must be in 0..7")
    get_recorder().counters.add(
        "kernel.mc.fast_path" if fast else "kernel.mc.scalar_path"
    )
    if frac_x == 0 and frac_y == 0:
        return _clamped_window(ref, y0, x0, h, w).astype(np.uint8)
    window = _clamped_window(
        ref, y0 - TAPS_BEFORE, x0 - TAPS_BEFORE, h + 7, w + 7
    ).astype(np.int32)
    engine = _interpolate_fast if fast else _interpolate_scalar
    return engine(window, frac_y, frac_x, h, w)


def motion_compensate_block(
    ref: np.ndarray,
    mb_row: int,
    mb_col: int,
    mv: MotionVector,
    size: int = MACROBLOCK,
    fast: bool = True,
) -> np.ndarray:
    """Build the motion-compensated predictor for one macroblock."""
    y0 = mb_row * size + mv.int_y
    x0 = mb_col * size + mv.int_x
    return interpolate_block(ref, y0, x0, mv.frac_y, mv.frac_x, size, size, fast=fast)


def reference_pixels_fetched(mv: MotionVector, size: int = MACROBLOCK) -> int:
    """Reference-frame pixels a hardware MC unit fetches for one block."""
    h = size + (7 if mv.frac_y else 0)
    w = size + (7 if mv.frac_x else 0)
    return h * w
