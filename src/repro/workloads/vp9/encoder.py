"""The VP9-class encoder (paper Figure 14).

Per frame: each 16x16 macroblock is predicted either by motion
estimation against up to three reference frames (diamond search + SAD)
or by intra prediction; the mode decision picks the cheaper predictor.
The residual goes through 8x8 DCT and uniform quantization, the levels
are entropy-coded with the adaptive range coder, and the frame is
reconstructed (inverse path + deblocking filter) to serve as a reference
for subsequent frames -- exactly the loop of Figure 14.

The encoder's reconstruction is bit-exact with the decoder's output,
which the integration tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.vp9.deblock import DeblockStats, deblock_frame
from repro.workloads.vp9.entropy import AdaptiveBit, RangeEncoder
from repro.workloads.vp9.frame import Frame, MACROBLOCK
from repro.workloads.vp9.mc import MotionVector, motion_compensate_block
from repro.workloads.vp9.me import SearchStats, multi_reference_search
from repro.workloads.vp9.predict import INTRA_MODES, best_intra_mode
from repro.workloads.vp9.transform import (
    BLOCK,
    dequantize_coefficients,
    forward_dct,
    inverse_dct,
    quantize_coefficients,
    zigzag_scan,
    zigzag_unscan,
)

#: Inter mode is preferred when its SAD beats intra by this margin
#: (models the rate cost of coding motion vectors).
INTER_BIAS = 64

#: A 16x16 block is split into four 8x8 sub-blocks when the split's
#: total SAD beats the whole-block SAD by this margin (rate cost of the
#: three extra motion vectors).
SPLIT_BIAS = 192

#: Number of reference frames kept (paper Figure 14: three).
MAX_REFERENCES = 3


@dataclass
class EncoderStats:
    """Aggregate operation counts over all encoded frames."""

    frames: int = 0
    macroblocks: int = 0
    inter_macroblocks: int = 0
    intra_macroblocks: int = 0
    split_macroblocks: int = 0
    subpel_blocks: int = 0
    search: SearchStats = field(default_factory=SearchStats)
    deblock: DeblockStats = field(default_factory=DeblockStats)
    transform_blocks: int = 0
    coded_blocks: int = 0
    nonzero_coefficients: int = 0
    bitstream_bytes: int = 0


@dataclass(frozen=True)
class EncodedFrame:
    """One frame's compressed representation."""

    data: bytes
    is_key: bool
    width: int
    height: int


class _Contexts:
    """Adaptive probability contexts, identical in encoder and decoder."""

    def __init__(self):
        self.mode = AdaptiveBit()  # inter (1) vs intra (0)
        self.intra_mode = [AdaptiveBit(), AdaptiveBit()]
        self.ref_index = [AdaptiveBit(), AdaptiveBit()]
        self.split = AdaptiveBit()  # 16x16 MV (0) vs four 8x8 MVs (1)
        self.mv_zero = AdaptiveBit()
        self.mv_sign = AdaptiveBit()
        self.block_coded = AdaptiveBit()
        self.coeff_zero = AdaptiveBit()
        self.coeff_sign = AdaptiveBit()
        self.golomb = AdaptiveBit()


def _encode_uint(enc: RangeEncoder, ctx: _Contexts, value: int) -> None:
    """Exp-Golomb-style unsigned coding: unary bit-length, then bits."""
    if value < 0:
        raise ValueError("value must be unsigned")
    nbits = value.bit_length()
    for _ in range(nbits):
        enc.encode_adaptive(1, ctx.golomb)
    enc.encode_adaptive(0, ctx.golomb)
    if nbits:
        enc.encode_literal(value & ((1 << (nbits - 1)) - 1), nbits - 1)


def _encode_mv_component(enc: RangeEncoder, ctx: _Contexts, v: int) -> None:
    if v == 0:
        enc.encode_adaptive(1, ctx.mv_zero)
        return
    enc.encode_adaptive(0, ctx.mv_zero)
    enc.encode_adaptive(1 if v < 0 else 0, ctx.mv_sign)
    _encode_uint(enc, ctx, abs(v) - 1)


class Vp9Encoder:
    """Stateful encoder: feed frames in order with :meth:`encode_frame`."""

    def __init__(
        self,
        qstep: float = 16.0,
        search_range: int = 16,
        deblock_threshold: int = 12,
        allow_split: bool = True,
    ):
        if not 1.0 <= qstep <= 255.0:
            raise ValueError("qstep must be in [1, 255]")
        self.qstep = float(int(qstep))  # kept integral so it survives the header
        self.search_range = search_range
        self.deblock_threshold = deblock_threshold
        self.allow_split = allow_split
        self.references: list[Frame] = []
        self.stats = EncoderStats()
        self._reconstructed: Frame | None = None

    # ------------------------------------------------------------------
    @property
    def last_reconstructed(self) -> Frame | None:
        """The encoder-side reconstruction of the last frame (what the
        decoder will reproduce bit-exactly)."""
        return self._reconstructed

    def encode_frame(self, frame: Frame) -> EncodedFrame:
        is_key = not self.references
        enc = RangeEncoder()
        ctx = _Contexts()
        # Frame header.
        enc.encode_literal(frame.width // MACROBLOCK, 12)
        enc.encode_literal(frame.height // MACROBLOCK, 12)
        enc.encode_literal(int(self.qstep), 8)
        enc.encode_literal(1 if is_key else 0, 1)
        enc.encode_literal(self.deblock_threshold, 8)

        recon = Frame.blank(frame.width, frame.height)
        for row in range(frame.mb_rows):
            for col in range(frame.mb_cols):
                self._encode_macroblock(enc, ctx, frame, recon, row, col, is_key)
        recon = deblock_frame(recon, self.deblock_threshold, self.stats.deblock)
        self._reconstructed = recon
        self.references.insert(0, recon)
        del self.references[MAX_REFERENCES:]
        data = enc.finish()
        self.stats.frames += 1
        self.stats.bitstream_bytes += len(data)
        return EncodedFrame(
            data=data, is_key=is_key, width=frame.width, height=frame.height
        )

    # ------------------------------------------------------------------
    def _encode_macroblock(
        self,
        enc: RangeEncoder,
        ctx: _Contexts,
        frame: Frame,
        recon: Frame,
        row: int,
        col: int,
        is_key: bool,
    ) -> None:
        self.stats.macroblocks += 1
        current = frame.macroblock(row, col)
        use_inter = False
        mv = MotionVector(0, 0)
        ref_idx = 0
        if not is_key:
            refs = [r.pixels for r in self.references]
            ref_idx, mv, inter_cost = multi_reference_search(
                current, refs, row, col, self.search_range, self.stats.search
            )
            intra_mode, intra_pred, intra_cost = best_intra_mode(
                recon.pixels, current, row, col
            )
            use_inter = inter_cost + INTER_BIAS < intra_cost
        if use_inter:
            from repro.workloads.vp9.me import sad

            enc.encode_adaptive(1, ctx.mode)
            enc.encode_adaptive(ref_idx & 1, ctx.ref_index[0])
            enc.encode_adaptive((ref_idx >> 1) & 1, ctx.ref_index[1])
            # Refine to half-pel by probing the 8 half-pel neighbours.
            mv = self._halfpel_refine(current, ref_idx, row, col, mv)
            whole_pred = motion_compensate_block(
                self.references[ref_idx].pixels, row, col, mv
            )
            whole_cost = sad(current, whole_pred)
            split = False
            if self.allow_split:
                sub_mvs, split_cost, split_pred = self._split_search(
                    current, ref_idx, row, col
                )
                split = split_cost + SPLIT_BIAS < whole_cost
            enc.encode_adaptive(1 if split else 0, ctx.split)
            if split:
                self.stats.split_macroblocks += 1
                for sub_mv in sub_mvs:
                    _encode_mv_component(enc, ctx, sub_mv.dx)
                    _encode_mv_component(enc, ctx, sub_mv.dy)
                prediction = split_pred
                if any(m.is_subpel for m in sub_mvs):
                    self.stats.subpel_blocks += 1
            else:
                _encode_mv_component(enc, ctx, mv.dx)
                _encode_mv_component(enc, ctx, mv.dy)
                prediction = whole_pred
                if mv.is_subpel:
                    self.stats.subpel_blocks += 1
            self.stats.inter_macroblocks += 1
        else:
            if not is_key:
                enc.encode_adaptive(0, ctx.mode)
            intra_mode, prediction, _ = best_intra_mode(
                recon.pixels, current, row, col
            )
            mode_idx = INTRA_MODES.index(intra_mode)
            enc.encode_adaptive(mode_idx & 1, ctx.intra_mode[0])
            enc.encode_adaptive((mode_idx >> 1) & 1, ctx.intra_mode[1])
            self.stats.intra_macroblocks += 1
        residual = current.astype(np.int32) - prediction.astype(np.int32)
        recon_block = self._code_residual(enc, ctx, residual, prediction)
        recon.set_macroblock(row, col, recon_block)

    def _split_search(self, current: np.ndarray, ref_idx: int, row: int, col: int):
        """Search an independent motion vector per 8x8 quadrant.

        Returns (mvs in raster order, total SAD, assembled prediction).
        VP9 partitions blocks down to 4x4; we implement one split level
        (16x16 -> 8x8), which captures the behaviour that matters here:
        more, smaller reference fetches per macroblock.
        """
        from repro.workloads.vp9.me import diamond_search, sad

        ref = self.references[ref_idx].pixels
        half = MACROBLOCK // 2
        mvs = []
        total_cost = 0
        prediction = np.empty((MACROBLOCK, MACROBLOCK), dtype=np.uint8)
        for qy in range(2):
            for qx in range(2):
                sub = current[
                    qy * half : (qy + 1) * half, qx * half : (qx + 1) * half
                ]
                sub_mv, _ = diamond_search(
                    sub, ref, row * 2 + qy, col * 2 + qx,
                    self.search_range, self.stats.search, size=half,
                )
                sub_pred = motion_compensate_block(
                    ref, row * 2 + qy, col * 2 + qx, sub_mv, size=half
                )
                total_cost += sad(sub, sub_pred)
                prediction[
                    qy * half : (qy + 1) * half, qx * half : (qx + 1) * half
                ] = sub_pred
                mvs.append(sub_mv)
        return mvs, total_cost, prediction

    def _halfpel_refine(
        self, current: np.ndarray, ref_idx: int, row: int, col: int, mv: MotionVector
    ) -> MotionVector:
        """Probe the eight half-pel positions around the integer MV."""
        from repro.workloads.vp9.me import sad

        ref = self.references[ref_idx].pixels
        best_mv, best_cost = mv, None
        for ddy in (-4, 0, 4):
            for ddx in (-4, 0, 4):
                cand = MotionVector(dx=mv.dx + ddx, dy=mv.dy + ddy)
                pred = motion_compensate_block(ref, row, col, cand)
                cost = sad(current, pred)
                self.stats.search.sad_evaluations += 1
                self.stats.search.pixels_compared += current.size
                if best_cost is None or cost < best_cost:
                    best_mv, best_cost = cand, cost
        return best_mv

    def _code_residual(
        self,
        enc: RangeEncoder,
        ctx: _Contexts,
        residual: np.ndarray,
        prediction: np.ndarray,
    ) -> np.ndarray:
        """Transform-code the residual; returns the reconstructed block."""
        recon = prediction.astype(np.int32).copy()
        n = MACROBLOCK // BLOCK
        for by in range(n):
            for bx in range(n):
                sub = residual[
                    by * BLOCK : (by + 1) * BLOCK, bx * BLOCK : (bx + 1) * BLOCK
                ]
                self.stats.transform_blocks += 1
                levels = quantize_coefficients(forward_dct(sub), self.qstep)
                scanned = zigzag_scan(levels)
                nonzero = np.nonzero(scanned)[0]
                if len(nonzero) == 0:
                    enc.encode_adaptive(0, ctx.block_coded)
                    continue
                enc.encode_adaptive(1, ctx.block_coded)
                self.stats.coded_blocks += 1
                eob = int(nonzero[-1]) + 1
                enc.encode_literal(eob, 7)
                for i in range(eob):
                    level = int(scanned[i])
                    if level == 0:
                        enc.encode_adaptive(1, ctx.coeff_zero)
                        continue
                    enc.encode_adaptive(0, ctx.coeff_zero)
                    enc.encode_adaptive(1 if level < 0 else 0, ctx.coeff_sign)
                    _encode_uint(enc, ctx, abs(level) - 1)
                    self.stats.nonzero_coefficients += 1
                rec_sub = inverse_dct(
                    dequantize_coefficients(zigzag_unscan(scanned), self.qstep)
                )
                recon[
                    by * BLOCK : (by + 1) * BLOCK, bx * BLOCK : (bx + 1) * BLOCK
                ] += np.round(rec_sub).astype(np.int32)
        return np.clip(recon, 0, 255).astype(np.uint8)


def encode_video(
    frames: list[Frame], qstep: float = 16.0, search_range: int = 16
) -> tuple[list[EncodedFrame], Vp9Encoder]:
    """Encode a frame sequence; returns (encoded frames, encoder)."""
    encoder = Vp9Encoder(qstep=qstep, search_range=search_range)
    return [encoder.encode_frame(f) for f in frames], encoder
