"""Deblocking filter (paper Section 6.2.2).

Block-based prediction and transform create discontinuities at block
boundaries; the in-loop deblocking filter detects edges whose two sides
differ by more than the natural image gradient and applies a low-pass
filter across them.  It runs over every 8x8 block edge of the frame
(vertical edges first, then horizontal, as in VP9), reading up to four
pixels on each side and modifying up to two -- a streaming, branchy,
low-compute kernel that touches the whole frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.vp9.frame import Frame

#: Deblocking runs on the transform-block grid.
EDGE_SPACING = 8


@dataclass
class DeblockStats:
    """Edge counts from one deblocking pass."""

    edges_checked: int = 0
    edges_filtered: int = 0
    pixels_modified: int = 0


def _filter_edges(pixels: np.ndarray, threshold: int, stats: DeblockStats) -> np.ndarray:
    """Filter all vertical edges of ``pixels`` in place (columns at
    multiples of EDGE_SPACING).  Horizontal edges are handled by calling
    this on the transpose."""
    h, w = pixels.shape
    work = pixels.astype(np.int32)
    for x in range(EDGE_SPACING, w, EDGE_SPACING):
        p1 = work[:, x - 2]
        p0 = work[:, x - 1]
        q0 = work[:, x]
        q1 = work[:, x + 1] if x + 1 < w else work[:, x]
        stats.edges_checked += h
        # Filter condition: a step across the edge that is larger than
        # the local gradient on either side (i.e. a blocking artifact,
        # not a natural image edge).
        step = np.abs(p0 - q0)
        flat_p = np.abs(p1 - p0)
        flat_q = np.abs(q0 - q1)
        mask = (step > 0) & (step <= threshold) & (flat_p <= threshold) & (
            flat_q <= threshold
        )
        count = int(mask.sum())
        if count == 0:
            continue
        stats.edges_filtered += count
        stats.pixels_modified += 2 * count
        # 4-tap low-pass across the edge (VP9's normal filter shape).
        avg = (p1 + p0 + q0 + q1 + 2) >> 2
        new_p0 = np.where(mask, (p0 + avg + 1) >> 1, p0)
        new_q0 = np.where(mask, (q0 + avg + 1) >> 1, q0)
        work[:, x - 1] = new_p0
        work[:, x] = new_q0
    return np.clip(work, 0, 255).astype(np.uint8)


def deblock_frame(
    frame: Frame, threshold: int = 12, stats: DeblockStats | None = None
) -> Frame:
    """Apply the in-loop deblocking filter to a reconstructed frame.

    Vertical block edges are filtered first, then horizontal edges (on
    the result), matching VP9's ordering.  Returns a new frame.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    stats = stats if stats is not None else DeblockStats()
    vertical = _filter_edges(frame.pixels, threshold, stats)
    horizontal = _filter_edges(vertical.T, threshold, stats).T
    return Frame(pixels=np.ascontiguousarray(horizontal))
