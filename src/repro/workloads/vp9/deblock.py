"""Deblocking filter (paper Section 6.2.2).

Block-based prediction and transform create discontinuities at block
boundaries; the in-loop deblocking filter detects edges whose two sides
differ by more than the natural image gradient and applies a low-pass
filter across them.  It runs over every 8x8 block edge of the frame
(vertical edges first, then horizontal, as in VP9), reading up to four
pixels on each side and modifying up to two -- a streaming, branchy,
low-compute kernel that touches the whole frame.

Two engines are provided: a mask-based whole-frame fast path (the
default) that filters every edge of a pass at once, and a per-pixel
scalar oracle.  Edges are 8 columns apart while the filter reads columns
x-2..x+1 and writes x-1..x, so no two edges of a pass share pixels; the
edges of one pass are therefore independent and the two engines are
bit-identical (enforced by ``tests/perf/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.recorder import get_recorder
from repro.workloads.vp9.frame import Frame

#: Deblocking runs on the transform-block grid.
EDGE_SPACING = 8


@dataclass
class DeblockStats:
    """Edge counts from one deblocking pass."""

    edges_checked: int = 0
    edges_filtered: int = 0
    pixels_modified: int = 0


def _filter_edges_fast(
    pixels: np.ndarray, threshold: int, stats: DeblockStats
) -> np.ndarray:
    """Filter all vertical edges of ``pixels`` at once (columns at
    multiples of EDGE_SPACING).  Horizontal edges are handled by calling
    this on the transpose."""
    h, w = pixels.shape
    work = pixels.astype(np.int32)
    xs = np.arange(EDGE_SPACING, w, EDGE_SPACING)
    if xs.size == 0:
        return np.clip(work, 0, 255).astype(np.uint8)
    # Gather the four pixels around every edge as (h, n_edges) panels.
    p1 = work[:, xs - 2]
    p0 = work[:, xs - 1]
    q0 = work[:, xs]
    q1 = work[:, np.minimum(xs + 1, w - 1)]
    stats.edges_checked += h * int(xs.size)
    # Filter condition: a step across the edge that is larger than the
    # local gradient on either side (i.e. a blocking artifact, not a
    # natural image edge).
    step = np.abs(p0 - q0)
    mask = (
        (step > 0)
        & (step <= threshold)
        & (np.abs(p1 - p0) <= threshold)
        & (np.abs(q0 - q1) <= threshold)
    )
    count = int(mask.sum())
    if count:
        stats.edges_filtered += count
        stats.pixels_modified += 2 * count
        # 4-tap low-pass across the edge (VP9's normal filter shape).
        avg = (p1 + p0 + q0 + q1 + 2) >> 2
        work[:, xs - 1] = np.where(mask, (p0 + avg + 1) >> 1, p0)
        work[:, xs] = np.where(mask, (q0 + avg + 1) >> 1, q0)
    return np.clip(work, 0, 255).astype(np.uint8)


def _filter_edges_scalar(
    pixels: np.ndarray, threshold: int, stats: DeblockStats
) -> np.ndarray:
    """Per-pixel scalar oracle for :func:`_filter_edges_fast`."""
    h, w = pixels.shape
    work = [[int(v) for v in row] for row in pixels.tolist()]
    for x in range(EDGE_SPACING, w, EDGE_SPACING):
        xq1 = x + 1 if x + 1 < w else x
        for row in work:
            p1, p0, q0, q1 = row[x - 2], row[x - 1], row[x], row[xq1]
            stats.edges_checked += 1
            step = abs(p0 - q0)
            if not (
                0 < step <= threshold
                and abs(p1 - p0) <= threshold
                and abs(q0 - q1) <= threshold
            ):
                continue
            stats.edges_filtered += 1
            stats.pixels_modified += 2
            avg = (p1 + p0 + q0 + q1 + 2) >> 2
            row[x - 1] = (p0 + avg + 1) >> 1
            row[x] = (q0 + avg + 1) >> 1
    return np.clip(np.array(work, dtype=np.int32), 0, 255).astype(np.uint8)


def deblock_frame(
    frame: Frame,
    threshold: int = 12,
    stats: DeblockStats | None = None,
    fast: bool = True,
) -> Frame:
    """Apply the in-loop deblocking filter to a reconstructed frame.

    Vertical block edges are filtered first, then horizontal edges (on
    the result), matching VP9's ordering.  Returns a new frame.
    ``fast`` selects the whole-frame mask engine (default) or the scalar
    oracle; outputs and stats are bit-identical.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    stats = stats if stats is not None else DeblockStats()
    get_recorder().counters.add(
        "kernel.deblock.fast_path" if fast else "kernel.deblock.scalar_path"
    )
    filter_edges = _filter_edges_fast if fast else _filter_edges_scalar
    vertical = filter_edges(frame.pixels, threshold, stats)
    horizontal = filter_edges(vertical.T, threshold, stats).T
    return Frame(pixels=np.ascontiguousarray(horizontal))
