"""Video frames.

The codec operates on 8-bit luma frames decomposed into 16x16-pixel
macroblocks (the paper's MC granularity).  Chroma is omitted: every PIM
target in Sections 6-7 is analyzed on the luma path, and carrying 4:2:0
chroma would only rescale the traffic numbers by a constant factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Macroblock edge length (pixels); motion vectors are per macroblock.
MACROBLOCK = 16


@dataclass
class Frame:
    """One 8-bit grayscale video frame."""

    pixels: np.ndarray  # (h, w) uint8

    def __post_init__(self):
        self.pixels = np.asarray(self.pixels)
        if self.pixels.ndim != 2:
            raise ValueError("Frame expects a 2-D (h, w) array")
        if self.pixels.dtype != np.uint8:
            raise ValueError("Frame pixels must be uint8")
        h, w = self.pixels.shape
        if h % MACROBLOCK or w % MACROBLOCK:
            raise ValueError(
                "frame dimensions %dx%d must be multiples of %d" % (w, h, MACROBLOCK)
            )

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def mb_rows(self) -> int:
        return self.height // MACROBLOCK

    @property
    def mb_cols(self) -> int:
        return self.width // MACROBLOCK

    @property
    def num_macroblocks(self) -> int:
        return self.mb_rows * self.mb_cols

    def macroblock(self, row: int, col: int) -> np.ndarray:
        """The (row, col) macroblock as a 16x16 view."""
        if not (0 <= row < self.mb_rows and 0 <= col < self.mb_cols):
            raise IndexError("macroblock (%d, %d) out of range" % (row, col))
        y, x = row * MACROBLOCK, col * MACROBLOCK
        return self.pixels[y : y + MACROBLOCK, x : x + MACROBLOCK]

    def set_macroblock(self, row: int, col: int, block: np.ndarray) -> None:
        y, x = row * MACROBLOCK, col * MACROBLOCK
        self.pixels[y : y + MACROBLOCK, x : x + MACROBLOCK] = block

    def copy(self) -> "Frame":
        return Frame(pixels=self.pixels.copy())

    def psnr(self, other: "Frame") -> float:
        """Peak signal-to-noise ratio against another frame (dB)."""
        if self.pixels.shape != other.pixels.shape:
            raise ValueError("frame size mismatch")
        diff = self.pixels.astype(np.float64) - other.pixels.astype(np.float64)
        mse = float(np.mean(diff * diff))
        if mse == 0:
            return float("inf")
        return 10.0 * np.log10(255.0 * 255.0 / mse)

    @staticmethod
    def blank(width: int, height: int, value: int = 128) -> "Frame":
        return Frame(pixels=np.full((height, width), value, dtype=np.uint8))


#: Standard resolutions used by the paper's evaluation.
RESOLUTIONS = {
    "HD": (1280, 720),
    "4K": (3840, 2160),
}
