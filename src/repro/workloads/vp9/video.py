"""Synthetic test video (stand-in for the Netflix/derf clips [152]).

Real test sequences are not available offline, so this module generates
video with the properties that matter to the codec kernels: smooth
textured backgrounds (so intra/inter prediction has something to
predict), moving objects with controllable velocity (so motion
estimation finds real, non-zero motion vectors and sub-pixel
interpolation is exercised at fractional offsets), and optional sensor
noise (so residuals are non-trivial).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.vp9.frame import Frame


def synthetic_video(
    width: int,
    height: int,
    frames: int,
    motion: float = 2.5,
    objects: int = 4,
    noise: float = 1.0,
    seed: int = 0,
) -> list[Frame]:
    """Generate ``frames`` frames of moving-object video.

    Args:
        motion: object velocity in pixels/frame (non-integer values force
            sub-pixel motion).
        objects: number of moving rectangles.
        noise: standard deviation of per-frame Gaussian sensor noise.
    """
    if frames < 1:
        raise ValueError("need at least one frame")
    if width < 16 or height < 16:
        raise ValueError(
            "frame geometry %dx%d too small: width and height must be >= 16 "
            "(one macroblock)" % (width, height)
        )
    if not np.isfinite(motion) or not np.isfinite(noise) or noise < 0:
        raise ValueError("motion must be finite and noise a non-negative float")
    rng = np.random.default_rng(seed)
    # Smooth background: low-frequency 2-D cosine mix, fixed per video.
    yy, xx = np.mgrid[0:height, 0:width]
    background = (
        128
        + 40 * np.cos(2 * np.pi * xx / max(width, 1) * 1.5)
        + 30 * np.sin(2 * np.pi * yy / max(height, 1) * 2.0)
        + 20 * np.cos(2 * np.pi * (xx + yy) / max(width + height, 1) * 3.0)
    )
    obj_specs = []
    for _ in range(objects):
        obj_specs.append(
            {
                "x": float(rng.uniform(0, width)),
                "y": float(rng.uniform(0, height)),
                "w": int(rng.integers(max(width // 16, 4), max(width // 6, 8))),
                "h": int(rng.integers(max(height // 16, 4), max(height // 6, 8))),
                "vx": float(rng.uniform(-motion, motion)),
                "vy": float(rng.uniform(-motion, motion)),
                "level": float(rng.uniform(30, 220)),
            }
        )
    out = []
    for t in range(frames):
        canvas = background.copy()
        for spec in obj_specs:
            ox = int(round(spec["x"] + spec["vx"] * t)) % width
            oy = int(round(spec["y"] + spec["vy"] * t)) % height
            x1 = min(ox + spec["w"], width)
            y1 = min(oy + spec["h"], height)
            canvas[oy:y1, ox:x1] = spec["level"]
        if noise > 0:
            canvas = canvas + rng.normal(0.0, noise, size=canvas.shape)
        out.append(Frame(pixels=np.clip(canvas, 0, 255).astype(np.uint8)))
    return out
