"""Hardware VP9 codec models (paper Sections 6.3 and 7.3; Figures 12, 16, 21).

The hardware decoder/encoder hide memory *latency* (prefetching, batched
motion vectors, large SRAM reference buffers) but still move every
reference/reconstructed pixel over the off-chip channel.  These models
account for that traffic per frame, by component, and evaluate the
paper's three configurations:

* ``VP9``      -- the baseline on-SoC hardware codec;
* ``PIM-Core`` -- MC (+ deblocking) / ME moved to a general-purpose PIM
  core in memory (in-memory traffic becomes cheap, but the computation
  is now an order of magnitude less efficient than fixed-function RTL);
* ``PIM-Acc``  -- the same hardware units relocated into the logic
  layer (Figures 13 and 17): RTL-efficient compute *and* in-memory
  traffic.

Each configuration can additionally enable lossless frame compression,
which shrinks reference/reconstructed-frame traffic by ~40% at the cost
of small compression-metadata streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.energy.components import EnergyParameters, default_energy_parameters

MB = 1024 * 1024

#: 4:2:0 chroma adds half the luma bytes again.
YUV_FACTOR = 1.5
#: Lossless frame compression keeps ~60% of a frame's raw bytes (the
#: factor measured by repro.workloads.vp9.framecompress on codec-like
#: content).  Per-codec traffic factors below refine this: the encoder's
#: reference *traffic* shrinks more (paper: -59.7%) because compression
#: also removes redundant re-fetches across overlapping search windows.
FRAME_COMPRESSION_FACTOR = 0.6


class PimPlacement(str, enum.Enum):
    """Where the codec's MC/ME + deblocking units execute."""

    NONE = "VP9"  # baseline: everything on the SoC
    PIM_CORE = "VP9 + PIM-Core"
    PIM_ACC = "VP9 + PIM-Acc"


@dataclass
class CodecTraffic:
    """Per-frame off-chip traffic by component (bytes)."""

    components: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return float(sum(self.components.values()))

    def share(self, component: str) -> float:
        total = self.total
        if total <= 0:
            return 0.0
        return self.components.get(component, 0.0) / total

    def megabytes(self) -> dict:
        return {k: v / MB for k, v in self.components.items()}


@dataclass(frozen=True)
class HardwareEnergy:
    """Per-frame energy (joules) split into the Figure 21 components."""

    dram: float
    memctrl: float
    interconnect: float
    computation: float

    @property
    def total(self) -> float:
        return self.dram + self.memctrl + self.interconnect + self.computation


class _HardwareCodecModel:
    """Shared machinery for the decoder and encoder models."""

    #: Pixel-traffic coefficients (bytes per YUV byte of one frame), set
    #: by subclasses.  Components marked pixel-data are reduced by frame
    #: compression and absorbed by PIM placement.
    PIXEL_COMPONENTS: dict = {}
    CONTROL_COMPONENTS: dict = {}
    #: Pixel-traffic multiplier under lossless frame compression.
    COMPRESSION_FACTOR = FRAME_COMPRESSION_FACTOR
    #: Hardware computation energy per YUV byte processed: the RTL
    #: datapath plus the large on-SoC SRAM reference buffers (875 kB in
    #: the decoder, Section 6.3.1).
    HW_COMPUTE_PER_BYTE = 430e-12
    #: Fraction of the computation energy spent in the SRAM reference
    #: buffers; PIM placement eliminates these buffers (the reference
    #: data never reaches the SoC).
    BUFFER_COMPUTE_FRACTION = 0.25
    #: Fraction of the *datapath* computation that belongs to the
    #: offloaded units (MC + deblocking for the decoder; ME + MC +
    #: deblocking for the encoder); entropy coding dominates the rest.
    OFFLOADED_COMPUTE_FRACTION = 0.35
    #: Energy-efficiency penalty of running the offloaded units on a
    #: general-purpose PIM core instead of RTL ("an order of magnitude",
    #: Section 10.3.2).
    PIM_CORE_PENALTY = 10.0

    def __init__(
        self,
        width: int,
        height: int,
        energy_params: EnergyParameters | None = None,
    ):
        if width <= 0 or height <= 0:
            raise ValueError("invalid resolution")
        self.width = width
        self.height = height
        self.params = energy_params or default_energy_parameters()

    @property
    def frame_bytes(self) -> float:
        """Decoded YUV bytes of one frame."""
        return self.width * self.height * YUV_FACTOR

    # ------------------------------------------------------------------
    def traffic(self, compression: bool = False) -> CodecTraffic:
        """Per-frame off-chip traffic breakdown (Figures 12 and 16)."""
        fb = self.frame_bytes
        comps: dict = {}
        factor = self.COMPRESSION_FACTOR if compression else 1.0
        for name, coeff in self.PIXEL_COMPONENTS.items():
            comps[name] = coeff * fb * factor
        for name, coeff in self.CONTROL_COMPONENTS.items():
            comps[name] = coeff * fb
        if compression:
            pixel_total = sum(self.PIXEL_COMPONENTS.values()) * fb
            comps["Compression Info"] = pixel_total * 0.05
        return CodecTraffic(components=comps)

    # ------------------------------------------------------------------
    def pim_traffic_split(
        self, compression: bool, placement: PimPlacement
    ) -> tuple[float, float]:
        """(off-chip bytes, in-memory bytes) for a PIM configuration.

        With MC/ME and the deblocking filter in memory, the pixel-data
        components (reference fetches, reconstructed frame) never cross
        the off-chip channel; only the control streams (bitstream, motion
        vectors, residual data, metadata) still do.
        """
        t = self.traffic(compression)
        if placement is PimPlacement.NONE:
            return t.total, 0.0
        pixel_names = set(self.PIXEL_COMPONENTS) | {"Compression Info"}
        off_chip = sum(v for k, v in t.components.items() if k not in pixel_names)
        in_memory = sum(v for k, v in t.components.items() if k in pixel_names)
        return off_chip, in_memory

    # ------------------------------------------------------------------
    def energy(
        self, compression: bool = False, placement: PimPlacement = PimPlacement.NONE
    ) -> HardwareEnergy:
        """Per-frame energy for one configuration (Figure 21)."""
        p = self.params
        off_chip, in_memory = self.pim_traffic_split(compression, placement)
        dram = off_chip * 8 * p.dram_energy_per_bit + in_memory * p.internal_energy_per_byte
        memctrl = off_chip * 8 * p.memctrl_energy_per_bit
        interconnect = off_chip * 8 * p.interconnect_energy_per_bit
        base_compute = self.frame_bytes * self.HW_COMPUTE_PER_BYTE
        if compression:
            # The (de)compression units add ~10% datapath work.
            base_compute *= 1.10
        buffers = base_compute * self.BUFFER_COMPUTE_FRACTION
        datapath = base_compute - buffers
        if placement is PimPlacement.NONE:
            computation = datapath + buffers
        elif placement is PimPlacement.PIM_CORE:
            offloaded = datapath * self.OFFLOADED_COMPUTE_FRACTION
            computation = datapath - offloaded + offloaded * self.PIM_CORE_PENALTY
        else:  # PIM-Acc: same RTL, relocated; SRAM buffers disappear.
            computation = datapath
        return HardwareEnergy(
            dram=dram,
            memctrl=memctrl,
            interconnect=interconnect,
            computation=computation,
        )

    def configurations(self) -> list[tuple[str, bool, PimPlacement]]:
        """The six Figure 21 bars: {VP9, PIM-Core, PIM-Acc} x {no comp, comp}."""
        out = []
        for compression in (False, True):
            for placement in PimPlacement:
                label = "%s%s" % (
                    placement.value,
                    " + compression" if compression else "",
                )
                out.append((label, compression, placement))
        return out


class HardwareDecoderModel(_HardwareCodecModel):
    """The hardware VP9 decoder (Figure 12 traffic, Figure 21 energy).

    Traffic coefficients reproduce the paper's breakdown: the reference
    frame dominates (the decoder reads ~2.9 reference pixels per decoded
    pixel during MC), the reconstructed frame is the second contributor,
    and control streams are small.  HD frames spend a *larger share* on
    reference data than 4K (75.5% vs 59.6%) because the fixed-size SRAM
    reference caches cover a smaller fraction of a 4K frame's working
    set -- modeled by the resolution-dependent coefficient below.
    """

    CONTROL_COMPONENTS = {
        "Decoder Data": 0.22,
        "Reconst. Frame Metadata": 0.07,
        "Deblocking Filter": 0.10,
    }

    COMPRESSION_FACTOR = 0.62  # paper Fig. 12: ref share 59.6% -> 48.8%

    def __init__(self, width, height, energy_params=None):
        super().__init__(width, height, energy_params)
        is_hd = width * height <= 1280 * 720
        ref = 3.4 if is_hd else 2.0
        self.PIXEL_COMPONENTS = {
            "Reference Frame": ref,
            "Reconstructed Frame": 0.75,
        }


class HardwareEncoderModel(_HardwareCodecModel):
    """The hardware VP9 encoder (Figure 16 traffic, Figure 21 energy).

    ME's reference fetches dominate (65.1% for HD); the current (input)
    frame and the reconstructed frame are the other main pixel streams.
    The current frame's *input* side cannot be frame-compressed (it
    arrives raw from the camera pipeline), so its share grows when
    compression is enabled, as the paper observes.
    """

    CONTROL_COMPONENTS = {
        "Current Frame": 0.85,  # raw camera input: never compressed
        "Encoded Bitstream": 0.06,
        "Other": 0.10,
    }
    OFFLOADED_COMPUTE_FRACTION = 0.33

    COMPRESSION_FACTOR = 0.40  # paper Sec. 7.3.1: traffic -59.7%
    #: The encoder's datapath (ME SAD arrays + transforms) works harder
    #: per byte than the decoder's.
    HW_COMPUTE_PER_BYTE = 790e-12

    def __init__(self, width, height, energy_params=None):
        super().__init__(width, height, energy_params)
        is_hd = width * height <= 1280 * 720
        ref = 4.3 if is_hd else 3.3
        self.PIXEL_COMPONENTS = {
            "Reference Frame": ref,
            "Reconstructed Frame": 0.75,
            "Deblocking Filter": 0.10,
        }
