"""Motion estimation (paper Section 7.2.2).

The encoder's inter-prediction search: for each macroblock, find the
motion vector minimizing the sum of absolute differences (SAD) against a
reference frame.  libvpx uses the diamond search algorithm [157]; a
full (exhaustive) search is provided as the verification oracle for the
tests.

Two SAD engines back both searches: the fast path (default) computes
candidate SADs from a zero-copy ``sliding_window_view`` over the
reference — all candidates of the search window in one batched
reduction — while the scalar oracle evaluates each visited candidate
with a per-pixel Python loop.  Control flow (visit order, tie-breaking,
early termination) is shared, so both engines return identical motion
vectors, costs, and :class:`SearchStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.obs.recorder import get_recorder
from repro.workloads.vp9.frame import MACROBLOCK
from repro.workloads.vp9.mc import MotionVector


@dataclass
class SearchStats:
    """Operation counts from one or more motion searches."""

    sad_evaluations: int = 0
    pixels_compared: int = 0

    def merge(self, other: "SearchStats") -> None:
        self.sad_evaluations += other.sad_evaluations
        self.pixels_compared += other.pixels_compared


def sad(a: np.ndarray, b: np.ndarray) -> int:
    """Sum of absolute differences between two equally-sized blocks."""
    if a.shape != b.shape:
        raise ValueError("SAD operands must have equal shape")
    return int(np.abs(a.astype(np.int32) - b.astype(np.int32)).sum())


def sad_scalar(a: np.ndarray, b: np.ndarray) -> int:
    """Per-pixel scalar oracle for :func:`sad`."""
    if a.shape != b.shape:
        raise ValueError("SAD operands must have equal shape")
    total = 0
    for row_a, row_b in zip(a.tolist(), b.tolist()):
        for va, vb in zip(row_a, row_b):
            total += abs(va - vb)
    return total


def _block_at(ref: np.ndarray, y: int, x: int, size: int) -> np.ndarray | None:
    """The (size, size) reference block at pixel (y, x), or None if it
    falls outside the frame."""
    if y < 0 or x < 0 or y + size > ref.shape[0] or x + size > ref.shape[1]:
        return None
    return ref[y : y + size, x : x + size]


def _window_sads(
    current: np.ndarray,
    ref: np.ndarray,
    base_y: int,
    base_x: int,
    search_range: int,
    size: int,
) -> np.ndarray:
    """SADs of every candidate displacement in the search window.

    Returns a (2R+1, 2R+1) array indexed by (dy + R, dx + R); candidates
    whose block falls outside the frame hold -1.  The computation is one
    batched |diff| reduction over a stride-tricks window view of the
    reference, i.e. no per-candidate Python work.
    """
    r = search_range
    sads = np.full((2 * r + 1, 2 * r + 1), -1, dtype=np.int64)
    ylo = max(-r, -base_y)
    yhi = min(r, ref.shape[0] - size - base_y)
    xlo = max(-r, -base_x)
    xhi = min(r, ref.shape[1] - size - base_x)
    if ylo > yhi or xlo > xhi:
        return sads
    wins = sliding_window_view(ref, (size, size))[
        base_y + ylo : base_y + yhi + 1, base_x + xlo : base_x + xhi + 1
    ]
    diffs = np.abs(wins.astype(np.int32) - current.astype(np.int32))
    sads[ylo + r : yhi + r + 1, xlo + r : xhi + r + 1] = diffs.sum(
        axis=(2, 3), dtype=np.int64
    )
    return sads


#: Large-diamond and small-diamond step patterns (dy, dx).
_LDSP = ((0, -2), (-1, -1), (-2, 0), (-1, 1), (0, 2), (1, 1), (2, 0), (1, -1))
_SDSP = ((0, -1), (-1, 0), (0, 1), (1, 0))


def diamond_search(
    current: np.ndarray,
    ref: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 16,
    stats: SearchStats | None = None,
    size: int = MACROBLOCK,
    fast: bool = True,
) -> tuple[MotionVector, int]:
    """Diamond search [157] for the best integer-pel motion vector.

    Walks the large diamond pattern until the best point is the center,
    then refines with the small diamond.  Returns (motion vector in
    eighth-pel units, best SAD).  With ``fast`` (the default) candidate
    SADs come from the precomputed stride-tricks window map; the diamond
    control flow — and therefore the visited-candidate statistics — is
    identical in both engines.
    """
    stats = stats if stats is not None else SearchStats()
    base_y, base_x = mb_row * size, mb_col * size
    get_recorder().counters.add(
        "kernel.me.fast_path" if fast else "kernel.me.scalar_path"
    )
    if fast:
        # A zero-copy window view over the reference: each candidate SAD
        # is one batched |diff| reduction with no per-candidate slicing
        # arithmetic or dtype conversion of ``current``.  The diamond
        # visit order re-centers *within* a ring iteration (a better
        # candidate shifts the remaining ring points), so candidates are
        # inherently sequential and whole-window precomputation would
        # evaluate ~(2R+1)^2 SADs where the walk visits only tens.
        wins = sliding_window_view(ref, (size, size))
        cur_i32 = current.astype(np.int32)
        max_y = ref.shape[0] - size
        max_x = ref.shape[1] - size

        def evaluate(dy: int, dx: int) -> int | None:
            y, x = base_y + dy, base_x + dx
            if y < 0 or x < 0 or y > max_y or x > max_x:
                return None
            stats.sad_evaluations += 1
            stats.pixels_compared += size * size
            return int(np.abs(wins[y, x] - cur_i32).sum())

    else:

        def evaluate(dy: int, dx: int) -> int | None:
            block = _block_at(ref, base_y + dy, base_x + dx, size)
            if block is None:
                return None
            stats.sad_evaluations += 1
            stats.pixels_compared += size * size
            return sad_scalar(current, block)

    best_dy, best_dx = 0, 0
    best_cost = evaluate(0, 0)
    if best_cost is None:
        return MotionVector(0, 0), 1 << 30
    # Large diamond until the center wins or the range is exhausted.
    while True:
        improved = False
        for dy, dx in _LDSP:
            ny, nx = best_dy + dy, best_dx + dx
            if abs(ny) > search_range or abs(nx) > search_range:
                continue
            cost = evaluate(ny, nx)
            if cost is not None and cost < best_cost:
                best_cost, best_dy, best_dx = cost, ny, nx
                improved = True
        if not improved:
            break
    # Small diamond refinement.
    for dy, dx in _SDSP:
        ny, nx = best_dy + dy, best_dx + dx
        if abs(ny) > search_range or abs(nx) > search_range:
            continue
        cost = evaluate(ny, nx)
        if cost is not None and cost < best_cost:
            best_cost, best_dy, best_dx = cost, ny, nx
    return MotionVector(dx=best_dx * 8, dy=best_dy * 8), best_cost


def full_search(
    current: np.ndarray,
    ref: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 8,
    stats: SearchStats | None = None,
    size: int = MACROBLOCK,
    fast: bool = True,
) -> tuple[MotionVector, int]:
    """Exhaustive integer-pel search (O(range^2) SADs).

    The fast path batch-computes every candidate SAD with stride-tricks
    windows; the scalar path evaluates per-pixel.  Scan order and
    tie-breaking are shared, so results and stats are identical.
    """
    stats = stats if stats is not None else SearchStats()
    base_y, base_x = mb_row * size, mb_col * size
    get_recorder().counters.add(
        "kernel.me.fast_path" if fast else "kernel.me.scalar_path"
    )
    sad_map = (
        _window_sads(current, ref, base_y, base_x, search_range, size)
        if fast
        else None
    )
    best = (MotionVector(0, 0), 1 << 30)
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            if sad_map is not None:
                mapped = sad_map[dy + search_range, dx + search_range]
                if mapped < 0:
                    continue
                cost = int(mapped)
            else:
                block = _block_at(ref, base_y + dy, base_x + dx, size)
                if block is None:
                    continue
                cost = sad_scalar(current, block)
            stats.sad_evaluations += 1
            stats.pixels_compared += size * size
            if cost < best[1] or (
                cost == best[1]
                and (abs(dy) + abs(dx))
                < (abs(best[0].int_y) + abs(best[0].int_x))
            ):
                best = (MotionVector(dx=dx * 8, dy=dy * 8), cost)
    return best


def multi_reference_search(
    current: np.ndarray,
    references: list[np.ndarray],
    mb_row: int,
    mb_col: int,
    search_range: int = 16,
    stats: SearchStats | None = None,
    size: int = MACROBLOCK,
    fast: bool = True,
) -> tuple[int, MotionVector, int]:
    """Search up to three reference frames (paper Figure 14: the encoder
    fetches three references).  Returns (ref index, mv, sad)."""
    if not references:
        raise ValueError("need at least one reference frame")
    best = None
    for idx, ref in enumerate(references[:3]):
        mv, cost = diamond_search(
            current, ref, mb_row, mb_col, search_range, stats, size, fast=fast
        )
        if best is None or cost < best[2]:
            best = (idx, mv, cost)
    return best
