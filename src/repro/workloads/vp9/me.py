"""Motion estimation (paper Section 7.2.2).

The encoder's inter-prediction search: for each macroblock, find the
motion vector minimizing the sum of absolute differences (SAD) against a
reference frame.  libvpx uses the diamond search algorithm [157]; a
full (exhaustive) search is provided as the verification oracle for the
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.vp9.frame import MACROBLOCK
from repro.workloads.vp9.mc import MotionVector


@dataclass
class SearchStats:
    """Operation counts from one or more motion searches."""

    sad_evaluations: int = 0
    pixels_compared: int = 0

    def merge(self, other: "SearchStats") -> None:
        self.sad_evaluations += other.sad_evaluations
        self.pixels_compared += other.pixels_compared


def sad(a: np.ndarray, b: np.ndarray) -> int:
    """Sum of absolute differences between two equally-sized blocks."""
    if a.shape != b.shape:
        raise ValueError("SAD operands must have equal shape")
    return int(np.abs(a.astype(np.int32) - b.astype(np.int32)).sum())


def _block_at(ref: np.ndarray, y: int, x: int, size: int) -> np.ndarray | None:
    """The (size, size) reference block at pixel (y, x), or None if it
    falls outside the frame."""
    if y < 0 or x < 0 or y + size > ref.shape[0] or x + size > ref.shape[1]:
        return None
    return ref[y : y + size, x : x + size]


#: Large-diamond and small-diamond step patterns (dy, dx).
_LDSP = ((0, -2), (-1, -1), (-2, 0), (-1, 1), (0, 2), (1, 1), (2, 0), (1, -1))
_SDSP = ((0, -1), (-1, 0), (0, 1), (1, 0))


def diamond_search(
    current: np.ndarray,
    ref: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 16,
    stats: SearchStats | None = None,
    size: int = MACROBLOCK,
) -> tuple[MotionVector, int]:
    """Diamond search [157] for the best integer-pel motion vector.

    Walks the large diamond pattern until the best point is the center,
    then refines with the small diamond.  Returns (motion vector in
    eighth-pel units, best SAD).
    """
    stats = stats if stats is not None else SearchStats()
    base_y, base_x = mb_row * size, mb_col * size

    def evaluate(dy: int, dx: int) -> int | None:
        block = _block_at(ref, base_y + dy, base_x + dx, size)
        if block is None:
            return None
        stats.sad_evaluations += 1
        stats.pixels_compared += size * size
        return sad(current, block)

    best_dy, best_dx = 0, 0
    best_cost = evaluate(0, 0)
    if best_cost is None:
        return MotionVector(0, 0), 1 << 30
    # Large diamond until the center wins or the range is exhausted.
    while True:
        improved = False
        for dy, dx in _LDSP:
            ny, nx = best_dy + dy, best_dx + dx
            if abs(ny) > search_range or abs(nx) > search_range:
                continue
            cost = evaluate(ny, nx)
            if cost is not None and cost < best_cost:
                best_cost, best_dy, best_dx = cost, ny, nx
                improved = True
        if not improved:
            break
    # Small diamond refinement.
    for dy, dx in _SDSP:
        ny, nx = best_dy + dy, best_dx + dx
        if abs(ny) > search_range or abs(nx) > search_range:
            continue
        cost = evaluate(ny, nx)
        if cost is not None and cost < best_cost:
            best_cost, best_dy, best_dx = cost, ny, nx
    return MotionVector(dx=best_dx * 8, dy=best_dy * 8), best_cost


def full_search(
    current: np.ndarray,
    ref: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 8,
    stats: SearchStats | None = None,
    size: int = MACROBLOCK,
) -> tuple[MotionVector, int]:
    """Exhaustive integer-pel search (test oracle; O(range^2) SADs)."""
    stats = stats if stats is not None else SearchStats()
    base_y, base_x = mb_row * size, mb_col * size
    best = (MotionVector(0, 0), 1 << 30)
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            block = _block_at(ref, base_y + dy, base_x + dx, size)
            if block is None:
                continue
            stats.sad_evaluations += 1
            stats.pixels_compared += size * size
            cost = sad(current, block)
            if cost < best[1] or (
                cost == best[1]
                and (abs(dy) + abs(dx))
                < (abs(best[0].int_y) + abs(best[0].int_x))
            ):
                best = (MotionVector(dx=dx * 8, dy=dy * 8), cost)
    return best


def multi_reference_search(
    current: np.ndarray,
    references: list[np.ndarray],
    mb_row: int,
    mb_col: int,
    search_range: int = 16,
    stats: SearchStats | None = None,
    size: int = MACROBLOCK,
) -> tuple[int, MotionVector, int]:
    """Search up to three reference frames (paper Figure 14: the encoder
    fetches three references).  Returns (ref index, mv, sad)."""
    if not references:
        raise ValueError("need at least one reference frame")
    best = None
    for idx, ref in enumerate(references[:3]):
        mv, cost = diamond_search(
            current, ref, mb_row, mb_col, search_range, stats, size
        )
        if best is None or cost < best[2]:
            best = (idx, mv, cost)
    return best
