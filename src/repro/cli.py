"""Command-line interface.

    python -m repro figures [--figure "Figure 18"] [--write PATH]
                            [--jobs N] [--no-cache] [--cache-flush-every N]
                            [--manifest DIR] [--trace-out PATH]
                            [--max-retries N] [--target-timeout S]
                            [--checkpoint PATH] [--resume]
    python -m repro export [--dir figures_data]
    python -m repro evaluate [--workload chrome|tensorflow|vp9|all] [--jobs N]
                             [--manifest DIR] [--trace-out PATH]
                             [--max-retries N] [--target-timeout S]
                             [--checkpoint PATH] [--resume]
    python -m repro cachesweep [--workload NAME|all] [--batch|--no-batch]
                               [--trace-dir DIR] [--jobs N] [--no-cache]
                               [--cache-flush-every N]
                               [--manifest DIR] [--trace-out PATH]
                               [--max-retries N] [--checkpoint PATH] [--resume]
    python -m repro cache {compact|clear|prune} [--dir PATH]
                          [--max-age-days DAYS]
    python -m repro trace {list|prune|clear} [--dir PATH]
                          [--max-age-days DAYS]
    python -m repro fleet {worker|serve|status|drain} [--fleet PATH]
                          [--host HOST] [--port N] [--port-file PATH]
                          [--cache-dir DIR] [--register URL]
                          [--advertise-host HOST] [--weight N]
                          [--secret-file PATH] [--url URL]
                          [--jobs-ttl S] [--drain-grace S]
    python -m repro characterize
    python -m repro codec [--width W --height H --frames N --qstep Q]
    python -m repro scorecard
    python -m repro areas
"""

from __future__ import annotations

import argparse
import contextlib
import sys


@contextlib.contextmanager
def _obs_session(args):
    """An active recorder while ``--manifest``/``--trace-out`` ask for one.

    Yields the recorder (or None when observability stays off); the
    previous recorder is restored on exit, so in-process callers (tests,
    notebooks) are unaffected by a CLI run.
    """
    if not (getattr(args, "manifest", None) or getattr(args, "trace_out", None)):
        yield None
        return
    from repro.obs.recorder import recording

    with recording() as recorder:
        yield recorder


def _write_obs_outputs(args, recorder, command: str, config=None, results=None):
    """Write the manifest and/or Chrome trace a run asked for."""
    if recorder is None:
        return
    if args.trace_out:
        from repro.obs.spans import write_chrome_trace

        print("wrote trace %s" % write_chrome_trace(args.trace_out, recorder.spans))
    if args.manifest:
        from repro.obs.manifest import build_manifest, write_manifest

        manifest = build_manifest(
            command=command, config=config, results=results, recorder=recorder
        )
        print("wrote manifest %s" % write_manifest(args.manifest, manifest))


def _add_obs_flags(parser) -> None:
    parser.add_argument(
        "--manifest", metavar="DIR",
        help="write a run manifest (manifest.json) into DIR",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write the run's spans as Chrome chrome://tracing JSON",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="check runtime conservation invariants during the run "
        "(equivalent to REPRO_STRICT=1)",
    )


def _add_cache_batch_flag(parser) -> None:
    parser.add_argument(
        "--cache-flush-every", type=int, default=None, metavar="N",
        help="buffer N memo entries per segment flush (default 1: each "
        "entry is written through immediately, like the legacy "
        "file-per-entry cache; larger values batch N entries per blob "
        "write)",
    )


def _add_resilience_flags(parser) -> None:
    parser.add_argument(
        "--max-retries", type=int, metavar="N",
        help="tolerate per-target faults: retry each failed/crashed/hung "
        "target up to N times (N + 1 total attempts; 0 quarantines on "
        "the first failure), then quarantine it (degraded result) "
        "instead of aborting the sweep",
    )
    parser.add_argument(
        "--target-timeout", type=float, metavar="SECONDS",
        help="declare a target hung after SECONDS, kill its worker, "
        "respawn the pool and retry (implies fault tolerance; "
        "needs --jobs > 1)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH",
        help="journal completed targets to PATH (append-only JSONL, "
        "keyed by config+code version) as they finish",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reload completed targets from --checkpoint instead of "
        "recomputing them (bit-identical to an uninterrupted run)",
    )


def _retry_policy(args):
    """The :class:`RetryPolicy` the resilience flags ask for (or None)."""
    if args.resume and not args.checkpoint:
        raise ValueError("--resume requires --checkpoint PATH")
    if args.max_retries is not None and args.max_retries < 0:
        raise ValueError(
            "--max-retries must be >= 0, got %d" % args.max_retries
        )
    if args.max_retries is None and args.target_timeout is None:
        return None
    from repro.core.resilience import RetryPolicy

    # --max-retries N means N *retries*: N + 1 total attempts.  With
    # only --target-timeout, default to two retries per target.
    return RetryPolicy(
        max_attempts=args.max_retries + 1 if args.max_retries is not None else 3,
        timeout_s=args.target_timeout,
    )


def _add_fleet_flag(parser) -> None:
    parser.add_argument(
        "--fleet", metavar="PATH",
        help="dispatch parallel work to the worker fleet described by "
        "this JSON manifest (see 'python -m repro fleet') instead of "
        "local worker processes; --jobs left at 1 defaults to the "
        "fleet's worker count",
    )


def _fleet_setup(args):
    """(pool_factory, manifest) for ``--fleet``, or ``(None, None)``."""
    if not getattr(args, "fleet", None):
        return None, None
    from repro.fleet import FleetManifest, fleet_pool_factory

    manifest = FleetManifest.load(args.fleet)
    if getattr(args, "jobs", 1) == 1:
        workers = len(manifest.workers)
        if not workers and manifest.gateway is not None:
            # Elastic fleet: the gateway knows the live member count.
            from repro.fleet.wire import FleetTransportError, http_json

            try:
                status, doc = http_json(
                    "GET",
                    manifest.gateway.base_url + "/status",
                    timeout=5.0,
                    secret=manifest.load_secret(),
                )
                if status == 200:
                    workers = sum(
                        1 for w in doc.get("workers", []) if w.get("alive")
                    )
            except FleetTransportError:
                pass  # gateway down: run serial; retries still reach it
        args.jobs = max(workers, 1)
    return fleet_pool_factory(manifest), manifest


def _memo_cache(args, fleet_manifest=None):
    """The memo cache the cache flags ask for (or None with --no-cache).

    With a fleet manifest that names a gateway, the cache is the
    gateway's shared one (:class:`repro.fleet.cache.RemoteMemoCache`),
    so every fleet client sees every other client's finished sweeps.
    """
    if args.no_cache:
        return None
    if fleet_manifest is not None and fleet_manifest.gateway is not None:
        from repro.fleet.cache import RemoteMemoCache

        return RemoteMemoCache(
            fleet_manifest.gateway.base_url,
            secret=fleet_manifest.load_secret(),
        )
    from repro.core.memo import MemoCache

    if getattr(args, "cache_flush_every", None) is not None:
        if args.cache_flush_every < 1:
            raise ValueError(
                "--cache-flush-every must be >= 1, got %d"
                % args.cache_flush_every
            )
        return MemoCache(flush_every=args.cache_flush_every)
    return MemoCache()


def _cmd_figures(args) -> int:
    from repro.analysis.report import all_results, render_markdown

    pool_factory, fleet_manifest = _fleet_setup(args)
    cache = _memo_cache(args, fleet_manifest)
    with _obs_session(args) as recorder:
        results = all_results(
            jobs=args.jobs,
            cache=cache,
            retry_policy=_retry_policy(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            pool_factory=pool_factory,
        )
        if args.write:
            with open(args.write, "w") as f:
                f.write(render_markdown(results))
            print("wrote %s" % args.write)
        else:
            for result in results:
                if (
                    args.figure
                    and args.figure.lower() not in result.figure_id.lower()
                ):
                    continue
                if args.chart:
                    from repro.analysis.ascii import render_chart

                    print(render_chart(result))
                else:
                    print(result.render_text())
                print()
        if recorder is not None:
            from repro.config import default_system

            _write_obs_outputs(
                args,
                recorder,
                command="figures",
                config=default_system(),
                results={"figures": [r.figure_id for r in results]},
            )
    if cache is not None:
        cache.flush()
        cache.maybe_compact()
    return 0


def _cmd_export(args) -> int:
    from repro.analysis.export import export_all

    written = export_all(args.dir)
    print("wrote %d files to %s" % (len(written), args.dir))
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core.runner import ExperimentRunner

    targets = []
    if args.workload in ("chrome", "all"):
        from repro.workloads.chrome.targets import browser_pim_targets

        targets += browser_pim_targets()
    if args.workload in ("tensorflow", "all"):
        from repro.workloads.tensorflow.targets import tensorflow_pim_targets

        targets += tensorflow_pim_targets()
    if args.workload in ("vp9", "all"):
        from repro.workloads.vp9.targets import video_pim_targets

        targets += video_pim_targets()
    if not targets:
        print("unknown workload %r" % args.workload, file=sys.stderr)
        return 2
    retry_policy = _retry_policy(args)
    pool_factory, _fleet_manifest = _fleet_setup(args)
    with _obs_session(args) as recorder:
        result = ExperimentRunner().evaluate(
            targets,
            jobs=args.jobs,
            retry_policy=retry_policy,
            checkpoint=args.checkpoint,
            resume=args.resume,
            pool_factory=pool_factory,
        )
        print(
            "%-26s %8s %8s %9s %9s" % ("kernel", "E core", "E acc", "S core", "S acc")
        )
        for row in result.rows():
            if row.get("failed"):
                print(
                    "%-26s FAILED after %d attempt(s): %s"
                    % (row["target"], row["attempts"], row["error"])
                )
                continue
            print(
                "%-26s %8.2f %8.2f %8.2fx %8.2fx"
                % (
                    row["target"],
                    row["energy_pim_core"],
                    row["energy_pim_acc"],
                    row["speedup_pim_core"],
                    row["speedup_pim_acc"],
                )
            )
        print(
            "mean energy reduction: core %.1f%%, acc %.1f%%"
            % (
                100 * result.mean_pim_core_energy_reduction,
                100 * result.mean_pim_acc_energy_reduction,
            )
        )
        if result.degraded:
            print(
                "DEGRADED: %d of %d targets quarantined; means cover "
                "survivors only"
                % (len(result.failures), len(result.failures) + len(result.names)),
                file=sys.stderr,
            )
        if recorder is not None:
            from repro.config import default_system

            results = {
                "mean_pim_core_energy_reduction":
                    result.mean_pim_core_energy_reduction,
                "mean_pim_acc_energy_reduction":
                    result.mean_pim_acc_energy_reduction,
                "mean_pim_core_speedup": result.mean_pim_core_speedup,
                "mean_pim_acc_speedup": result.mean_pim_acc_speedup,
                "targets": result.names,
            }
            if retry_policy is not None or args.checkpoint:
                results["degraded"] = result.degraded
                results["failures"] = [
                    {
                        "target": f.target,
                        "attempts": f.attempts,
                        "error": f.error,
                    }
                    for f in result.failures
                ]
            _write_obs_outputs(
                args,
                recorder,
                command="evaluate --workload %s" % args.workload,
                config=default_system(),
                results=results,
            )
    return 0


def _cmd_cachesweep(args) -> int:
    from repro.analysis.cachesweep import sweep_all, workload_names
    from repro.sim.artifact import TraceStore

    if args.workload == "all":
        names = workload_names()
    elif args.workload in workload_names():
        names = [args.workload]
    else:
        print(
            "unknown workload %r; available: %s"
            % (args.workload, ", ".join(workload_names() + ["all"])),
            file=sys.stderr,
        )
        return 2
    pool_factory, fleet_manifest = _fleet_setup(args)
    cache = _memo_cache(args, fleet_manifest)
    store = TraceStore(args.trace_dir) if args.trace_dir else TraceStore()
    retry_policy = _retry_policy(args)
    with _obs_session(args) as recorder:
        # --jobs fans out across workloads (several names) or across
        # shards of one workload's batch plan (a single name); the
        # journal-per-workload suffixing lives in sweep_all.
        documents = sweep_all(
            names,
            batch=args.batch,
            store=store,
            cache=cache,
            jobs=args.jobs,
            retry_policy=retry_policy,
            checkpoint=args.checkpoint,
            resume=args.resume,
            pool_factory=pool_factory,
        )
        for name, document in documents.items():
            artifact = document["artifact"] or "(none)"
            print(
                "%s  (artifact %s, %s)"
                % (
                    name,
                    artifact[:12],
                    "batched" if document["batched"] else "serial/cached",
                )
            )
            print(
                "  %-22s %9s %9s %8s %12s %8s"
                % ("config", "L1 miss%", "LLC MPKI", "PIM?", "DRAM bytes", "Mcycles")
            )
            for row in document["rows"]:
                print(
                    "  %-22s %8.2f%% %9.1f %8s %12d %8.2f"
                    % (
                        row["config"],
                        100 * row["l1_miss_rate"],
                        row["llc_mpki"],
                        "yes" if row["pim_candidate"] else "no",
                        row["dram_bytes"],
                        row["cycles"] / 1e6,
                    )
                )
            for failure in document["failures"]:
                print(
                    "  %-22s FAILED after %d attempt(s): %s"
                    % (failure["config"], failure["attempts"], failure["error"])
                )
            print()
        if recorder is not None:
            from repro.config import default_system

            _write_obs_outputs(
                args,
                recorder,
                command="cachesweep --workload %s" % args.workload,
                config=default_system(),
                results={
                    name: {
                        "artifact": doc["artifact"],
                        "batched": doc["batched"],
                        "configs": [r["config"] for r in doc["rows"]],
                        "failures": [f["config"] for f in doc["failures"]],
                    }
                    for name, doc in documents.items()
                },
            )
    if cache is not None:
        cache.flush()
        cache.maybe_compact()
    if any(doc["failures"] for doc in documents.values()):
        print("DEGRADED: some geometries were quarantined", file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    from repro.core.memo import MemoCache

    cache = MemoCache(args.dir)
    if args.action == "clear":
        removed = cache.clear()
        print("cleared %d entries/files from %s" % (removed, cache.directory))
    elif args.action == "prune":
        days = args.max_age_days if args.max_age_days is not None else 30.0
        removed = cache.prune(max_age_days=days)
        print(
            "pruned %d file(s) older than %g day(s) from %s"
            % (removed, days, cache.directory)
        )
    else:
        from repro.core.store import CompactionBusy

        try:
            stats = cache.compact(max_age_days=args.max_age_days)
        except CompactionBusy as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(
            "compacted %s: %d live entries (%d segment(s) merged, "
            "%d legacy file(s) folded), %d file(s) removed, "
            "%d quarantined, %d aged file(s) pruned"
            % (
                cache.directory,
                stats.entries,
                stats.segments_merged,
                stats.legacy_folded,
                stats.files_removed,
                stats.quarantined,
                stats.pruned,
            )
        )
    return 0


def _cmd_trace(args) -> int:
    from repro.sim.artifact import TraceStore

    store = TraceStore(args.dir) if args.dir else TraceStore()
    if args.action == "list":
        rows = store.artifacts()
        if not rows:
            print("no trace artifacts in %s" % store.directory)
            return 0
        print(
            "%-44s %-8s %10s %8s %12s"
            % ("artifact", "status", "size", "age", "accesses")
        )
        for row in rows:
            print(
                "%-44s %-8s %9.1fk %7.1fd %12s"
                % (
                    row["name"],
                    row["status"],
                    row["bytes"] / 1024.0,
                    row["age_days"],
                    row.get("accesses", "-"),
                )
            )
    elif args.action == "prune":
        days = args.max_age_days if args.max_age_days is not None else 30.0
        removed = store.prune(max_age_days=days)
        print(
            "pruned %d file(s) older than %g day(s) from %s"
            % (removed, days, store.directory)
        )
    else:
        removed = store.clear()
        print("cleared %d file(s) from %s" % (removed, store.directory))
    return 0


def _drain_discover(manifest, secret) -> list:
    """Worker URLs to drain: the manifest's static list, or for an
    elastic fleet whatever the gateway currently reports alive."""
    urls = [spec.base_url for spec in manifest.workers]
    if urls or manifest.gateway is None:
        return urls
    from repro.fleet.wire import FleetTransportError, http_json

    try:
        status, doc = http_json(
            "GET",
            manifest.gateway.base_url + "/status",
            timeout=5.0,
            secret=secret,
        )
    except FleetTransportError as exc:
        print("gateway unreachable: %s" % exc, file=sys.stderr)
        return []
    if status != 200:
        return []
    return [w["url"] for w in doc.get("workers", []) if w.get("alive")]


def _drain_targets(urls, secret) -> int:
    """POST /drain to each worker URL; 0 = all acknowledged."""
    from repro.fleet.wire import FleetTransportError, http_json

    if not urls:
        print("no workers to drain", file=sys.stderr)
        return 2
    failures = 0
    for url in urls:
        try:
            status, doc = http_json(
                "POST", url.rstrip("/") + "/drain", {}, timeout=5.0, secret=secret
            )
        except FleetTransportError as exc:
            print("%s: unreachable (%s)" % (url, exc), file=sys.stderr)
            failures += 1
            continue
        if status == 200 and doc.get("ok"):
            print("%s: draining" % url)
        else:
            print("%s: refused (%d): %s" % (url, status, doc.get("error")), file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def _worker_secret(args):
    """The signing secret for a bare worker (no manifest in hand):
    ``REPRO_FLEET_SECRET`` wins, else ``--secret-file``."""
    import os
    from pathlib import Path

    from repro.fleet.wire import FLEET_SECRET_ENV

    env = os.environ.get(FLEET_SECRET_ENV)
    if env:
        return env
    if getattr(args, "secret_file", None):
        secret = Path(args.secret_file).read_text().strip()
        if not secret:
            raise ValueError("fleet secret_file %s is empty" % args.secret_file)
        return secret
    return None


def _cmd_fleet(args) -> int:
    if args.action == "worker":
        from repro.fleet.worker import serve_worker

        serve_worker(
            host=args.host or "127.0.0.1",
            port=args.port if args.port is not None else 0,
            port_file=args.port_file,
            register=args.register,
            advertise_host=args.advertise_host,
            weight=args.weight,
            secret=_worker_secret(args),
            jobs_ttl_s=args.jobs_ttl,
            drain_grace_s=args.drain_grace,
        )
        return 0
    if args.action == "drain" and args.url:
        return _drain_targets([args.url], _worker_secret(args))
    if not args.fleet:
        print("error: fleet %s requires --fleet PATH" % args.action, file=sys.stderr)
        return 2
    from repro.fleet.manifest import FleetManifest

    manifest = FleetManifest.load(args.fleet)
    if args.secret_file:
        manifest.secret_file = args.secret_file
    secret = manifest.load_secret()
    if args.action == "serve":
        from repro.fleet.gateway import serve_gateway

        gw = manifest.gateway
        serve_gateway(
            manifest,
            host=args.host or (gw.host if gw is not None else "127.0.0.1"),
            port=args.port
            if args.port is not None
            else (gw.port if gw is not None else 0),
            cache_dir=args.cache_dir,
            port_file=args.port_file,
            secret=secret,
        )
        return 0
    if args.action == "drain":
        return _drain_targets(_drain_discover(manifest, secret), secret)
    # status
    from repro.fleet.wire import FleetTransportError, http_json

    if manifest.gateway is not None:
        url = manifest.gateway.base_url
        try:
            status, doc = http_json("GET", url + "/status", timeout=5.0, secret=secret)
        except FleetTransportError as exc:
            print("gateway %s unreachable: %s" % (url, exc), file=sys.stderr)
            return 1
        if status != 200 or not doc.get("ok"):
            print("gateway %s unhealthy: %r" % (url, doc), file=sys.stderr)
            return 1
        cache = doc.get("cache", {})
        membership = doc.get("membership") or {}
        print(
            "gateway %s: pid %s, up %ss, cache entries %s, members %s (lease %ss)"
            % (
                url,
                doc.get("pid"),
                doc.get("uptime_s"),
                cache.get("entries"),
                membership.get("members", 0),
                membership.get("lease_s", "-"),
            )
        )
        workers = doc.get("workers", [])
    else:
        workers = []
        for spec in manifest.workers:
            entry = {"url": spec.base_url, "weight": spec.weight, "health": None}
            try:
                status, health = http_json(
                    "GET", spec.base_url + "/health", timeout=5.0, secret=secret
                )
                entry["alive"] = status == 200 and bool(health.get("ok"))
                entry["health"] = health if entry["alive"] else None
            except FleetTransportError:
                entry["alive"] = False
            workers.append(entry)
    print("%-28s %6s %6s %6s %8s %10s" % ("worker", "weight", "alive", "busy", "pid", "completed"))
    dead = 0
    for entry in workers:
        health = entry.get("health") or {}
        alive = bool(entry.get("alive"))
        dead += 0 if alive else 1
        print(
            "%-28s %6d %6s %6s %8s %10s"
            % (
                entry["url"],
                entry.get("weight", 1),
                "yes" if alive else "NO",
                {True: "yes", False: "no"}.get(health.get("busy"), "-"),
                health.get("pid", "-"),
                health.get("completed", "-"),
            )
        )
    return 1 if dead else 0


def _cmd_characterize(args) -> int:
    from repro.analysis.headline import workload_characterizations

    print("%-20s %22s" % ("workload", "data-movement share"))
    total = []
    for ch in workload_characterizations():
        print("%-20s %21.1f%%" % (ch.workload, 100 * ch.data_movement_fraction))
        total.append(ch.data_movement_fraction)
    print("%-20s %21.1f%%  (paper: 62.7%%)" % ("AVERAGE", 100 * sum(total) / len(total)))
    return 0


def _cmd_codec(args) -> int:
    from repro.workloads.vp9.decoder import decode_video
    from repro.workloads.vp9.encoder import encode_video
    from repro.workloads.vp9.video import synthetic_video

    clip = synthetic_video(args.width, args.height, args.frames, motion=2.5, seed=1)
    encoded, encoder = encode_video(clip, qstep=args.qstep)
    decoded, decoder = decode_video(encoded)
    raw = args.width * args.height * args.frames
    coded = sum(len(f.data) for f in encoded)
    psnr = sum(a.psnr(b) for a, b in zip(clip, decoded)) / len(clip)
    print(
        "%dx%d x%d: %.1f kB -> %.2f kB (%.1fx), PSNR %.1f dB"
        % (args.width, args.height, args.frames, raw / 1024, coded / 1024,
           raw / coded, psnr)
    )
    print(
        "inter MBs %d/%d, sub-pel blocks %d, ref pixels/pixel %.2f"
        % (
            decoder.stats.inter_macroblocks,
            decoder.stats.macroblocks,
            decoder.stats.subpel_blocks,
            decoder.stats.reference_pixels_per_pixel,
        )
    )
    return 0


def _cmd_scorecard(args) -> int:
    from repro.analysis.scorecard import full_scorecard

    print(full_scorecard().render_text())
    return 0


def _cmd_areas(args) -> int:
    from repro.energy.area import AreaModel

    model = AreaModel()
    print("per-vault budget: %.2f mm^2" % model.budget_per_vault_mm2)
    core = model.check_pim_core()
    print(
        "%-26s %6.2f mm^2  %5.1f%% of vault  %s"
        % ("pim_core", core.area_mm2, 100 * core.fraction_of_budget,
           "OK" if core.fits else "TOO BIG")
    )
    for check in model.check_all_accelerators():
        print(
            "%-26s %6.2f mm^2  %5.1f%% of vault  %s"
            % (check.target, check.area_mm2, 100 * check.fraction_of_budget,
               "OK" if check.fits else "TOO BIG")
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASPLOS'18 consumer-workloads PIM reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("--figure", help="substring filter, e.g. 'Figure 18'")
    figures.add_argument("--write", help="write EXPERIMENTS.md to this path")
    figures.add_argument(
        "--chart", action="store_true", help="render rows as ASCII bars"
    )
    figures.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="regenerate figures with N worker processes",
    )
    figures.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk figure memo cache",
    )
    _add_cache_batch_flag(figures)
    _add_obs_flags(figures)
    _add_resilience_flags(figures)
    _add_fleet_flag(figures)
    figures.set_defaults(fn=_cmd_figures)

    export = sub.add_parser("export", help="export figure data as JSON")
    export.add_argument("--dir", default="figures_data")
    export.set_defaults(fn=_cmd_export)

    evaluate = sub.add_parser("evaluate", help="evaluate PIM targets")
    evaluate.add_argument(
        "--workload", default="all", choices=["chrome", "tensorflow", "vp9", "all"]
    )
    evaluate.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate targets with N worker processes",
    )
    _add_obs_flags(evaluate)
    _add_resilience_flags(evaluate)
    _add_fleet_flag(evaluate)
    evaluate.set_defaults(fn=_cmd_evaluate)

    cachesweep = sub.add_parser(
        "cachesweep",
        help="cache design-space sweep over shared trace artifacts",
    )
    cachesweep.add_argument(
        "--workload", default="all",
        help="sweep workload name, or 'all' (default)",
    )
    cachesweep.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="evaluate all geometries in one batched replay pass "
        "(--no-batch replays each geometry serially; results are "
        "bit-identical either way)",
    )
    cachesweep.add_argument(
        "--trace-dir", metavar="DIR",
        help="directory for the shared trace artifacts "
        "(default: the package cache directory)",
    )
    cachesweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes, on every path: shards of the batched "
        "plan, per-config serial replays (--no-batch), and whole "
        "workloads (--workload all); each worker memory-maps the "
        "shared artifact — results are bit-identical to --jobs 1",
    )
    cachesweep.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk sweep memo cache",
    )
    _add_cache_batch_flag(cachesweep)
    _add_obs_flags(cachesweep)
    _add_resilience_flags(cachesweep)
    _add_fleet_flag(cachesweep)
    cachesweep.set_defaults(fn=_cmd_cachesweep)

    cache_cmd = sub.add_parser(
        "cache", help="manage the on-disk memo cache segments"
    )
    cache_cmd.add_argument(
        "action", choices=["compact", "clear", "prune"],
        help="compact: rewrite all live entries (segments + legacy "
        "files) into one fresh segment, quarantining corrupt blobs; "
        "clear: delete everything; prune: remove aged foreign-version "
        "files and debris",
    )
    cache_cmd.add_argument(
        "--dir", metavar="PATH", default=None,
        help="cache directory (default: the package cache directory)",
    )
    cache_cmd.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="age cutoff for pruning foreign-version files and debris "
        "(prune defaults to 30; compact age-prunes only when given)",
    )
    cache_cmd.set_defaults(fn=_cmd_cache)

    trace_cmd = sub.add_parser(
        "trace", help="manage the on-disk trace-artifact store"
    )
    trace_cmd.add_argument(
        "action", choices=["list", "prune", "clear"],
        help="list: describe every artifact (status, size, age); "
        "prune: remove aged stale-version artifacts, quarantine files "
        "and tmp debris (current-version artifacts are never pruned); "
        "clear: delete everything",
    )
    trace_cmd.add_argument(
        "--dir", metavar="PATH", default=None,
        help="trace-artifact directory (default: the package cache's "
        "traces directory, as used by cachesweep --trace-dir)",
    )
    trace_cmd.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="age cutoff for prune (default 30)",
    )
    trace_cmd.set_defaults(fn=_cmd_trace)

    fleet = sub.add_parser(
        "fleet", help="run or inspect the distributed sweep fleet"
    )
    fleet.add_argument(
        "action", choices=["worker", "serve", "status", "drain"],
        help="worker: run one single-slot HTTP worker; serve: run the "
        "gateway (dispatch + membership + shared result cache) for a "
        "manifest; status: print fleet health; drain: gracefully "
        "decommission workers (finish in-flight job, deregister, exit 0)",
    )
    fleet.add_argument(
        "--fleet", metavar="PATH",
        help="fleet manifest JSON (required for serve/status, and for "
        "drain without --url)",
    )
    fleet.add_argument(
        "--host", metavar="HOST", default=None,
        help="bind address (worker/serve; default 127.0.0.1 or the "
        "manifest's gateway entry)",
    )
    fleet.add_argument(
        "--port", type=int, metavar="N", default=None,
        help="bind port (0 = ephemeral; default 0 for worker, the "
        "manifest's gateway port for serve)",
    )
    fleet.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port to PATH once listening (for "
        "launchers that bind ephemeral ports)",
    )
    fleet.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="gateway shared-cache directory (serve; default: "
        "<package cache>/fleet); also holds the persisted membership "
        "table a restarted gateway rehydrates from",
    )
    fleet.add_argument(
        "--register", metavar="URL", default=None,
        help="worker: announce to this gateway URL at boot and renew a "
        "heartbeat lease, instead of appearing in a static manifest",
    )
    fleet.add_argument(
        "--advertise-host", metavar="HOST", default=None,
        help="worker: hostname to register (when the bind address is a "
        "wildcard peers can't dial)",
    )
    fleet.add_argument(
        "--weight", type=int, metavar="N", default=1,
        help="worker: round-robin weight to register with (default 1)",
    )
    fleet.add_argument(
        "--secret-file", metavar="PATH", default=None,
        help="file holding the fleet's shared request-signing secret "
        "(REPRO_FLEET_SECRET overrides; no secret = unsigned loopback)",
    )
    fleet.add_argument(
        "--url", metavar="URL", default=None,
        help="drain: target one worker URL directly instead of the "
        "manifest/gateway fleet",
    )
    fleet.add_argument(
        "--jobs-ttl", type=float, metavar="S", default=600.0,
        help="worker: expire unfetched finished-job records after S "
        "seconds (default 600)",
    )
    fleet.add_argument(
        "--drain-grace", type=float, metavar="S", default=30.0,
        help="worker: max seconds a drain waits for the in-flight job "
        "and its result hand-off (default 30)",
    )
    fleet.set_defaults(fn=_cmd_fleet)

    characterize = sub.add_parser(
        "characterize", help="data-movement share per workload"
    )
    characterize.set_defaults(fn=_cmd_characterize)

    codec = sub.add_parser("codec", help="run the functional VP9-class codec")
    codec.add_argument("--width", type=int, default=96)
    codec.add_argument("--height", type=int, default=64)
    codec.add_argument("--frames", type=int, default=6)
    codec.add_argument("--qstep", type=float, default=16.0)
    codec.set_defaults(fn=_cmd_codec)

    scorecard = sub.add_parser(
        "scorecard", help="paper-anchor reproduction scorecard"
    )
    scorecard.set_defaults(fn=_cmd_scorecard)

    areas = sub.add_parser("areas", help="PIM logic area budget checks")
    areas.set_defaults(fn=_cmd_areas)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.validate import InvariantError, strict_mode

    scope = (
        strict_mode()
        if getattr(args, "strict", False)
        else contextlib.nullcontext()
    )
    try:
        with scope:
            return args.fn(args)
    except (ValueError, InvariantError) as exc:
        # ConfigError is a ValueError: bad configs, malformed bitstreams,
        # and strict-mode violations all surface as one actionable line.
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
