"""Area model for PIM logic (paper Section 3.3 and Sections 4-7).

An HMC-like 3D-stacked memory offers 50-60 mm^2 of logic-layer area, i.e.
roughly 3.5-4.4 mm^2 per vault.  The paper checks each proposed PIM core /
accelerator against this budget; this module reproduces those checks and
records the per-accelerator areas reported in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import StackedMemoryConfig, PimCoreConfig


@dataclass(frozen=True)
class AcceleratorArea:
    """Area of one fixed-function PIM accelerator."""

    target: str
    area_mm2: float
    source: str = ""


#: Per-accelerator areas reported in the paper (22 nm).
PAPER_ACCELERATOR_AREAS: dict[str, AcceleratorArea] = {
    "texture_tiling": AcceleratorArea(
        "texture_tiling", 0.25, "Section 4.2.2: four in-memory tiling units"
    ),
    "color_blitting": AcceleratorArea(
        "color_blitting", 0.25, "Section 4.2.2: reuses the tiling logic units"
    ),
    "compression": AcceleratorArea(
        "compression", 0.25, "Section 4.3.2: LZO accelerator bound from [156]"
    ),
    "decompression": AcceleratorArea(
        "decompression", 0.25, "Section 4.3.2: LZO accelerator bound from [156]"
    ),
    "packing": AcceleratorArea(
        "packing", 0.25, "Section 5.3: reuses the tiling logic units"
    ),
    "quantization": AcceleratorArea(
        "quantization", 0.25, "Section 5.3: reuses the tiling logic units"
    ),
    "sub_pixel_interpolation": AcceleratorArea(
        "sub_pixel_interpolation", 0.21, "Section 6.2.2: VP9 HW sub-pel unit"
    ),
    "deblocking_filter": AcceleratorArea(
        "deblocking_filter", 0.12, "Section 6.2.2: VP9 HW deblocking unit"
    ),
    "motion_compensation_unit": AcceleratorArea(
        "motion_compensation_unit", 0.33, "Section 6.3.2: MC + deblocking for HW codec"
    ),
    "motion_estimation": AcceleratorArea(
        "motion_estimation", 1.24, "Section 7.2.2: VP9 HW ME unit"
    ),
}


@dataclass(frozen=True)
class AreaCheck:
    """Result of checking a PIM logic block against the vault budget."""

    target: str
    area_mm2: float
    budget_mm2: float

    @property
    def fraction_of_budget(self) -> float:
        return self.area_mm2 / self.budget_mm2

    @property
    def fits(self) -> bool:
        return self.area_mm2 <= self.budget_mm2


class AreaModel:
    """Checks PIM logic areas against the per-vault logic-layer budget."""

    def __init__(self, memory: StackedMemoryConfig | None = None):
        self.memory = memory or StackedMemoryConfig()

    @property
    def budget_per_vault_mm2(self) -> float:
        return self.memory.area_per_vault_mm2

    def check_pim_core(self, pim_core: PimCoreConfig | None = None) -> AreaCheck:
        """The PIM core needs <= 9.4% of the per-vault area (Section 3.3)."""
        core = pim_core or PimCoreConfig()
        return AreaCheck(
            target="pim_core",
            area_mm2=core.area_mm2,
            budget_mm2=self.budget_per_vault_mm2,
        )

    def check_accelerator(self, target: str) -> AreaCheck:
        if target not in PAPER_ACCELERATOR_AREAS:
            raise KeyError(
                "unknown PIM accelerator %r; known: %s"
                % (target, sorted(PAPER_ACCELERATOR_AREAS))
            )
        acc = PAPER_ACCELERATOR_AREAS[target]
        return AreaCheck(
            target=target, area_mm2=acc.area_mm2, budget_mm2=self.budget_per_vault_mm2
        )

    def check_all_accelerators(self) -> list[AreaCheck]:
        return [self.check_accelerator(name) for name in sorted(PAPER_ACCELERATOR_AREAS)]
