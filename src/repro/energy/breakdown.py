"""Energy breakdowns by hardware component.

The paper reports energy split across six components (Figure 2, Figure 11,
Figures 18-20): CPU, L1, LLC, interconnect, memory controller, and DRAM.
PIM executions add two more: the PIM logic's compute energy and the internal
(logic-layer to DRAM-layer) memory energy.  ``EnergyBreakdown`` is the
common currency passed between the timing models, the offload engine, and
the figure harnesses.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, fields

from repro.validate.strict import invariant


class Component(str, enum.Enum):
    """Hardware components that consume energy in the model."""

    CPU = "cpu"
    L1 = "l1"
    LLC = "llc"
    INTERCONNECT = "interconnect"
    MEMCTRL = "memctrl"
    DRAM = "dram"
    PIM_COMPUTE = "pim_compute"
    PIM_MEMORY = "pim_memory"


@dataclass
class EnergyBreakdown:
    """Energy (joules) consumed by each hardware component.

    ``cpu`` is further split for reporting purposes into active (compute)
    and stall energy via ``cpu_stall``; ``cpu`` always includes the stall
    portion so that ``total`` is a plain sum of the component fields.
    """

    cpu: float = 0.0
    l1: float = 0.0
    llc: float = 0.0
    interconnect: float = 0.0
    memctrl: float = 0.0
    dram: float = 0.0
    pim_compute: float = 0.0
    pim_memory: float = 0.0
    #: Portion of ``cpu`` attributable to memory stalls (informational).
    cpu_stall: float = 0.0

    _COMPONENT_FIELDS = (
        "cpu",
        "l1",
        "llc",
        "interconnect",
        "memctrl",
        "dram",
        "pim_compute",
        "pim_memory",
    )

    @property
    def total(self) -> float:
        return sum(getattr(self, name) for name in self._COMPONENT_FIELDS)

    @property
    def data_movement(self) -> float:
        """Energy spent moving data rather than computing on it.

        Following the paper (Section 4.2.1): caches, interconnect, memory
        controller, and DRAM, plus CPU cycles stalled waiting on memory.
        PIM internal memory traffic also counts as movement.
        """
        return (
            self.l1
            + self.llc
            + self.interconnect
            + self.memctrl
            + self.dram
            + self.pim_memory
            + self.cpu_stall
        )

    @property
    def compute(self) -> float:
        """Energy spent on actual computation (CPU active + PIM logic)."""
        return (self.cpu - self.cpu_stall) + self.pim_compute

    @property
    def data_movement_fraction(self) -> float:
        total = self.total
        if total <= 0.0:
            return 0.0
        return self.data_movement / total

    def component(self, which: Component) -> float:
        return getattr(self, which.value)

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """A copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def __radd__(self, other):
        # Support sum() over breakdowns.
        if other == 0:
            return self
        return self.__add__(other)

    @staticmethod
    def zero() -> "EnergyBreakdown":
        return EnergyBreakdown()

    def publish(self, counters, prefix: str) -> None:
        """Accumulate every component into a counter registry.

        Publishes ``<prefix>.<component>`` for each non-zero component
        (plus the informational ``cpu_stall`` split), so per-component
        joules are exported through the observability layer rather than
        staying buried in result objects.
        """
        for name in self._COMPONENT_FIELDS + ("cpu_stall",):
            value = getattr(self, name)
            if value:
                counters.add("%s.%s" % (prefix, name), value)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._COMPONENT_FIELDS}

    def check_invariants(self, name: str = "energy.breakdown") -> None:
        """Strict-mode conservation checks on this breakdown.

        Raises :class:`repro.validate.InvariantError` (and publishes
        ``validate.<name>.*`` counters) if any component is negative or
        non-finite, the stall split exceeds the CPU total, or the
        compute/data-movement split fails to reconstruct ``total``.
        """
        bad = [
            (field_name, value)
            for field_name in self._COMPONENT_FIELDS + ("cpu_stall",)
            for value in (getattr(self, field_name),)
            if not math.isfinite(value) or value < 0.0
        ]
        invariant(
            not bad,
            name + ".components",
            "negative or non-finite components: %r" % bad,
        )
        invariant(
            self.cpu_stall <= self.cpu * (1.0 + 1e-12),
            name + ".stall_share",
            "cpu_stall %.17g exceeds cpu %.17g" % (self.cpu_stall, self.cpu),
        )
        total = self.total
        reconstructed = self.compute + self.data_movement
        invariant(
            abs(reconstructed - total) <= 1e-9 * max(abs(total), 1e-30),
            name + ".conservation",
            "compute + data_movement = %.17g but total = %.17g"
            % (reconstructed, total),
        )
