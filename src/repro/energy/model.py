"""Event-based energy accounting.

``EnergyModel`` converts the traffic/operation counts of a
:class:`repro.sim.profile.KernelProfile` (plus stall-cycle counts supplied
by the timing models) into per-component :class:`EnergyBreakdown` objects,
for each of the three execution targets the paper evaluates: the SoC CPU
(CPU-Only), the general-purpose PIM core, and the fixed-function PIM
accelerator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.energy.breakdown import EnergyBreakdown
from repro.energy.components import EnergyParameters, default_energy_parameters
from repro.obs.recorder import get_recorder
from repro.validate.strict import resolve_strict

if TYPE_CHECKING:  # avoid a circular import; KernelProfile is annotation-only
    from repro.sim.profile import KernelProfile


class EnergyModel:
    """Maps execution statistics to component energies."""

    def __init__(self, params: EnergyParameters | None = None):
        self.params = params or default_energy_parameters()

    # ------------------------------------------------------------------
    # CPU-Only execution
    # ------------------------------------------------------------------
    def cpu_components(
        self, profile: KernelProfile, stall_cycles: float
    ) -> EnergyBreakdown:
        """Energy breakdown for running ``profile`` on the SoC CPU.

        Off-chip traffic (``profile.dram_bytes``) is charged per bit to the
        interconnect, memory controller, and DRAM; cache accesses are
        charged per event; the CPU is charged per retired instruction plus
        a per-cycle stall cost.
        """
        p = self.params
        cpu_active = profile.instructions * p.cpu_energy_per_instruction
        cpu_stall = max(stall_cycles, 0.0) * p.cpu_stall_energy_per_cycle
        bits = profile.dram_bytes * 8
        breakdown = EnergyBreakdown(
            cpu=cpu_active + cpu_stall,
            cpu_stall=cpu_stall,
            l1=profile.mem_instructions * p.l1_energy_per_access,
            llc=profile.l1_misses * p.llc_energy_per_line,
            interconnect=bits * p.interconnect_energy_per_bit,
            memctrl=bits * p.memctrl_energy_per_bit,
            dram=bits * p.dram_energy_per_bit,
        )
        return self._published(breakdown, "energy.cpu_only")

    # ------------------------------------------------------------------
    # PIM-core execution
    # ------------------------------------------------------------------
    def pim_core_components(
        self,
        profile: KernelProfile,
        scalar_instructions: float,
        simd_instructions: float,
        stall_cycles: float,
    ) -> EnergyBreakdown:
        """Energy breakdown for running ``profile`` on the PIM core.

        The PIM core accesses DRAM through the internal (TSV) path, so the
        off-chip interconnect/memctrl/DRAM-I/O costs disappear; a SIMD
        instruction is charged twice the scalar per-instruction energy
        (wider datapath, fewer instructions -- a net win at width 4).
        """
        p = self.params
        compute = (
            scalar_instructions * p.pim_core_energy_per_instruction
            + simd_instructions * 2.0 * p.pim_core_energy_per_instruction
            + max(stall_cycles, 0.0) * p.pim_core_stall_energy_per_cycle
        )
        memory = (
            profile.pim_bytes * p.internal_energy_per_byte
            + profile.mem_instructions * p.pim_l1_energy_per_access
        )
        return self._published(
            EnergyBreakdown(pim_compute=compute, pim_memory=memory),
            "energy.pim_core",
        )

    # ------------------------------------------------------------------
    # PIM-accelerator execution
    # ------------------------------------------------------------------
    def pim_accelerator_components(self, profile: KernelProfile) -> EnergyBreakdown:
        """Energy breakdown for running ``profile`` on a PIM accelerator.

        Computation is charged at 1/20th of CPU per-op energy (the paper's
        conservative accelerator-efficiency assumption); data is charged at
        the internal path cost plus a small per-access SRAM-buffer cost.
        """
        p = self.params
        compute = profile.alu_ops * p.accelerator_energy_per_op
        buffer_accesses = profile.pim_bytes / 8.0
        memory = (
            profile.pim_bytes * p.internal_energy_per_byte
            + buffer_accesses * 0.5 * p.pim_l1_energy_per_access
        )
        return self._published(
            EnergyBreakdown(pim_compute=compute, pim_memory=memory),
            "energy.pim_acc",
        )

    @staticmethod
    def _published(breakdown: EnergyBreakdown, prefix: str) -> EnergyBreakdown:
        """Export the breakdown through the counter registry when one is
        listening (per-component joules plus a kernel count); under
        strict mode every produced breakdown is invariant-checked."""
        if resolve_strict():
            breakdown.check_invariants(prefix)
        recorder = get_recorder()
        if recorder.enabled:
            breakdown.publish(recorder.counters, prefix)
            recorder.counters.add(prefix + ".kernels", 1)
        return breakdown
