"""Battery-life estimation (the paper's motivation, Section 1).

The paper's case for PIM is battery life: lithium-ion capacity has only
doubled in 20 years while workload demands exploded.  This module turns
the per-workload energy models into a device-level estimate: given a
battery capacity and a daily usage mix (hours of browsing, video
playback/capture, ML inference), how much screen-on time does PIM buy?

This is an extension beyond the paper's evaluation (the paper stops at
per-workload energy); the usage mix and display/idle power constants are
documented model inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.offload import OffloadEngine

WH = 3600.0  # joules per watt-hour


@dataclass(frozen=True)
class UsageMix:
    """Fraction of active time spent in each activity (must sum to 1)."""

    browsing: float = 0.45
    video_playback: float = 0.30
    video_capture: float = 0.05
    inference: float = 0.20

    def __post_init__(self):
        total = self.browsing + self.video_playback + self.video_capture + self.inference
        if abs(total - 1.0) > 1e-6:
            raise ValueError("usage fractions must sum to 1, got %.3f" % total)


@dataclass(frozen=True)
class DeviceConfig:
    """Device-level constants outside the workload models."""

    battery_wh: float = 38.0  # Chromebook-class battery
    #: Display + radios + rails: constant while the screen is on, not
    #: affected by PIM.
    fixed_power_w: float = 2.2


@dataclass
class BatteryEstimate:
    """Screen-on hours for the CPU-only and PIM configurations."""

    cpu_only_hours: float
    pim_hours: float

    @property
    def improvement(self) -> float:
        """Fractional battery-life extension (0.2 = +20%)."""
        if self.cpu_only_hours <= 0:
            return 0.0
        return self.pim_hours / self.cpu_only_hours - 1.0


class BatteryModel:
    """Estimates screen-on time from the workload energy models."""

    def __init__(
        self,
        device: DeviceConfig | None = None,
        engine: "OffloadEngine | None" = None,
    ):
        from repro.core.offload import OffloadEngine

        self.device = device or DeviceConfig()
        self.engine = engine or OffloadEngine()

    # ------------------------------------------------------------------
    def activity_power(self, functions: list) -> tuple[float, float]:
        """(CPU-only watts, PIM watts) of SoC+memory for one activity.

        The activity repeats its workload back-to-back; power is energy
        over execution time.  With PIM, the offloaded work is both
        cheaper and faster, so the *rate* of work rises; we keep the
        activity's work rate fixed at the CPU-only rate (the user's video
        does not play faster), so PIM's saved time becomes idle time and
        PIM power = PIM energy / CPU-only time.
        """
        from repro.core.workload import offloaded_totals

        totals = offloaded_totals(functions, self.engine)
        if totals.cpu_time_s <= 0:
            return 0.0, 0.0
        cpu_power = totals.cpu_energy_j / totals.cpu_time_s
        pim_power = totals.pim_energy_j / totals.cpu_time_s
        return cpu_power, pim_power

    # ------------------------------------------------------------------
    def estimate(self, mix: UsageMix | None = None) -> BatteryEstimate:
        mix = mix or UsageMix()
        activities = self._activity_functions()
        cpu_power = pim_power = self.device.fixed_power_w
        weights = {
            "browsing": mix.browsing,
            "video_playback": mix.video_playback,
            "video_capture": mix.video_capture,
            "inference": mix.inference,
        }
        for name, weight in weights.items():
            cpu_w, pim_w = self.activity_power(activities[name])
            cpu_power += weight * cpu_w
            pim_power += weight * pim_w
        budget_j = self.device.battery_wh * WH
        return BatteryEstimate(
            cpu_only_hours=budget_j / cpu_power / 3600.0,
            pim_hours=budget_j / pim_power / 3600.0,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _activity_functions() -> dict:
        from repro.workloads.chrome.pages import PAGES
        from repro.workloads.tensorflow.models import resnet_v2_152
        from repro.workloads.tensorflow.network import network_functions
        from repro.workloads.vp9.profiles import decoder_functions, encoder_functions

        return {
            "browsing": PAGES["Google Docs"].scrolling_functions(),
            "video_playback": decoder_functions(1280, 720, 30),
            "video_capture": encoder_functions(1280, 720, 30),
            "inference": network_functions(resnet_v2_152()),
        }
