"""Thermal constraints (paper Sections 1 and 2).

Two thermal budgets govern the design space:

* the **SoC's** dissipation limit — "the thermal power dissipation of
  consumer devices has become a severe performance constraint": when a
  workload's sustained SoC power exceeds the envelope, the clock
  throttles and everything slows down;
* the **3D-stacked memory's logic layer** — the reason the paper insists
  on *low-complexity* PIM logic: DRAM retention degrades with
  temperature, so the logic layer can only host a few watts.

This module models both: a throttling model for the SoC, and a power
check for the PIM logic against the logic-layer budget (the thermal
counterpart of the Section 3.3 area check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.offload import OffloadEngine


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal envelopes for the SoC and the memory stack."""

    #: Sustained SoC power before throttling (Chromebook-class, fanless).
    soc_tdp_w: float = 4.0
    #: Power the whole 3D-stack logic layer can dissipate without
    #: degrading DRAM retention (HMC-class thermal analyses).
    logic_layer_budget_w: float = 10.0
    #: Throttling strength: how hard the governor clamps when over TDP
    #: (1.0 = perfect proportional clamp to the envelope).
    clamp: float = 1.0


@dataclass(frozen=True)
class ThrottleResult:
    """Sustained execution under the SoC thermal envelope."""

    raw_power_w: float
    throttle_factor: float  # <= 1.0; applied to the clock
    effective_time_s: float

    @property
    def throttled(self) -> bool:
        return self.throttle_factor < 1.0


@dataclass(frozen=True)
class PimPowerCheck:
    """PIM logic power against the logic-layer thermal budget."""

    target: str
    pim_power_w: float
    budget_w: float

    @property
    def fits(self) -> bool:
        return self.pim_power_w <= self.budget_w

    @property
    def fraction_of_budget(self) -> float:
        return self.pim_power_w / self.budget_w if self.budget_w > 0 else float("inf")


class ThermalModel:
    """SoC throttling + logic-layer power checks."""

    def __init__(
        self,
        config: ThermalConfig | None = None,
        engine: "OffloadEngine | None" = None,
    ):
        from repro.core.offload import OffloadEngine

        self.config = config or ThermalConfig()
        self.engine = engine or OffloadEngine()

    # ------------------------------------------------------------------
    def sustained_execution(
        self, energy_j: float, time_s: float
    ) -> ThrottleResult:
        """Apply the SoC envelope to a (energy, time) execution.

        When raw power exceeds the TDP, the governor scales the clock by
        ``TDP / power`` (dynamic power is ~linear in frequency at fixed
        voltage), stretching execution time accordingly.
        """
        if time_s <= 0:
            return ThrottleResult(0.0, 1.0, 0.0)
        power = energy_j / time_s
        tdp = self.config.soc_tdp_w
        if power <= tdp:
            return ThrottleResult(power, 1.0, time_s)
        factor = max(tdp / power, 0.05) ** self.config.clamp
        return ThrottleResult(power, factor, time_s / factor)

    def workload_throttling(
        self, functions: list
    ) -> tuple[ThrottleResult, ThrottleResult]:
        """(CPU-only, with-PIM) sustained execution for one workload.

        With PIM, the offloaded kernels' power dissipates in the memory
        stack instead of the SoC, relieving the SoC envelope.
        """
        from repro.core.workload import offloaded_totals

        totals = offloaded_totals(functions, self.engine)
        cpu = self.sustained_execution(totals.cpu_energy_j, totals.cpu_time_s)
        # SoC-side power under PIM: the non-offloaded functions only.
        soc_energy = soc_time = 0.0
        for f in functions:
            if f.accelerator_key is not None:
                continue
            execution = self.engine.cpu_model.run(f.profile)
            soc_energy += execution.energy_j
            soc_time += execution.time_s
        pim = self.sustained_execution(soc_energy, max(totals.pim_time_s, soc_time))
        return cpu, pim

    # ------------------------------------------------------------------
    def check_pim_target(self, target, use_accelerator=True) -> PimPowerCheck:
        """Does this target's PIM logic fit the logic-layer power budget?

        Power = PIM-side energy over PIM execution time (the logic layer
        must sustain it for the kernel's duration).
        """
        execution = (
            self.engine.run_pim_acc(target)
            if use_accelerator
            else self.engine.run_pim_core(target)
        )
        pim_energy = execution.energy.pim_compute + execution.energy.pim_memory
        power = pim_energy / execution.time_s if execution.time_s > 0 else 0.0
        return PimPowerCheck(
            target=target.name,
            pim_power_w=power,
            budget_w=self.config.logic_layer_budget_w,
        )

    def check_all_targets(self, targets: list) -> list[PimPowerCheck]:
        return [self.check_pim_target(t) for t in targets]
