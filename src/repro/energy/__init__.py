"""Component-level energy model for consumer-device SoCs with PIM.

This package reproduces the energy-accounting methodology of Section 3.1 of
the paper: total system energy is the sum of the energy consumed by the CPU
cores, the L1 and L2 (last-level) caches, the off-chip interconnect, the
memory controller, and DRAM.  *Data movement* energy is everything except
the CPU-compute component, matching the paper's definition ("the data
movement energy includes the energy consumed by DRAM, the off-chip
interconnect, and the on-chip caches").
"""

from repro.energy.breakdown import Component, EnergyBreakdown
from repro.energy.components import EnergyParameters, default_energy_parameters
from repro.energy.model import EnergyModel
from repro.energy.area import AreaModel, AcceleratorArea, PAPER_ACCELERATOR_AREAS
from repro.energy.battery import BatteryModel, BatteryEstimate, DeviceConfig, UsageMix
from repro.energy.thermal import ThermalModel, ThermalConfig, PimPowerCheck, ThrottleResult

__all__ = [
    "Component",
    "EnergyBreakdown",
    "EnergyParameters",
    "default_energy_parameters",
    "EnergyModel",
    "AreaModel",
    "AcceleratorArea",
    "PAPER_ACCELERATOR_AREAS",
    "BatteryModel",
    "BatteryEstimate",
    "DeviceConfig",
    "UsageMix",
    "ThermalModel",
    "ThermalConfig",
    "PimPowerCheck",
    "ThrottleResult",
]
