"""Per-component energy parameters.

The paper builds its energy model from public sources: CACTI-P 6.5 at 22 nm
for the caches, instruction-level ARM energy characterizations for the CPU,
LPDDR3 datasheet numbers for the baseline DRAM, and HMC/HBM estimates for
3D-stacked DRAM.  None of those tools run here, so this module records a
self-consistent 22 nm-class parameter set drawn from the same public
literature.  Absolute joules are therefore approximate; all paper-facing
claims in this repository are about *ratios* (energy fractions, PIM-vs-CPU
factors), which depend only on the relative magnitudes below:

* moving a byte off-chip costs ~an order of magnitude more than an ALU op
  (the paper's core premise, citing Keckler et al. [80]);
* internal 3D-stacked access costs a few times less than off-chip access;
* a fixed-function accelerator is 20x more energy-efficient than the CPU
  for the same computation (paper Section 3.1, citing [1]);
* a Cortex-R8-class PIM core spends several times less energy per
  instruction than an 8-wide OoO core.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.validate.fields import require_positive

PJ = 1e-12  # picojoule, in joules
NJ = 1e-9  # nanojoule, in joules


@dataclass(frozen=True)
class EnergyParameters:
    """Energy cost constants for every modeled hardware event.

    All values are joules per event; "per bit" values are joules per bit
    transferred.
    """

    # --- CPU core (8-wide OoO, 22 nm class) -----------------------------
    #: Energy per retired instruction, core only (FE+ROB+ALU+RF), excluding
    #: caches which are accounted separately.
    cpu_energy_per_instruction: float = 120 * PJ
    #: Energy burned per core cycle while stalled on memory (clock tree,
    #: leakage, speculative wakeups).
    cpu_stall_energy_per_cycle: float = 60 * PJ

    # --- PIM core (Cortex-R8 class, 1-wide in-order + 4-wide SIMD) ------
    #: Conservative per-instruction energy for the PIM core (paper uses the
    #: Cortex-R8 as the bound).
    pim_core_energy_per_instruction: float = 40 * PJ
    pim_core_stall_energy_per_cycle: float = 15 * PJ

    # --- PIM accelerator -------------------------------------------------
    #: The paper conservatively assumes accelerators are 20x more
    #: energy-efficient than CPU cores for the same computation.  Applied as
    #: cpu_energy_per_instruction / ratio per equivalent operation.
    accelerator_efficiency_vs_cpu: float = 20.0

    # --- Caches (CACTI-class, 22 nm) -------------------------------------
    #: L1 D-cache dynamic energy per load/store access (64 kB, 4-way).
    l1_energy_per_access: float = 12 * PJ
    #: PIM core's smaller L1 (32 kB).
    pim_l1_energy_per_access: float = 8 * PJ
    #: Shared L2/LLC dynamic energy per 64 B line access (2 MB, 8-way).
    llc_energy_per_line: float = 400 * PJ

    # --- Off-chip path (SoC <-> LPDDR3 or stacked-DRAM channel) ----------
    #: On-chip interconnect + PHY energy per bit crossing the chip edge.
    interconnect_energy_per_bit: float = 6 * PJ
    #: Memory-controller queuing/scheduling energy per bit serviced.
    memctrl_energy_per_bit: float = 4 * PJ
    #: DRAM array + I/O energy per bit for off-chip access (LPDDR3 class,
    #: array + periphery + interface).
    dram_energy_per_bit: float = 30 * PJ

    # --- Internal 3D-stacked path (logic layer <-> DRAM layers) ----------
    #: DRAM array + TSV energy per bit for accesses made from the logic
    #: layer of 3D-stacked memory (no off-chip I/O, short vertical wires).
    #: The DRAM-array portion is unchanged vs. off-chip access; only the
    #: interface energy disappears, so the internal path is ~2x cheaper per
    #: bit, not free.
    stacked_internal_energy_per_bit: float = 17 * PJ
    #: Vault-controller energy per bit for internal accesses.
    vault_ctrl_energy_per_bit: float = 3 * PJ

    def __post_init__(self) -> None:
        # Every parameter is an energy cost per event: zero or negative
        # joules (or NaN) silently zeroes whole components downstream, so
        # all fields must be strictly positive and finite.
        for f in fields(self):
            require_positive(self, f.name, getattr(self, f.name))

    # --- Derived conveniences --------------------------------------------
    @property
    def offchip_energy_per_byte(self) -> float:
        """Total energy to move one byte between DRAM and the SoC."""
        per_bit = (
            self.interconnect_energy_per_bit
            + self.memctrl_energy_per_bit
            + self.dram_energy_per_bit
        )
        return per_bit * 8

    @property
    def internal_energy_per_byte(self) -> float:
        """Total energy for the PIM logic to move one byte from DRAM layers."""
        per_bit = self.stacked_internal_energy_per_bit + self.vault_ctrl_energy_per_bit
        return per_bit * 8

    @property
    def accelerator_energy_per_op(self) -> float:
        return self.cpu_energy_per_instruction / self.accelerator_efficiency_vs_cpu


def default_energy_parameters() -> EnergyParameters:
    """The calibrated parameter set used by every experiment."""
    return EnergyParameters()
