"""Timing models for PIM logic: the PIM core and PIM accelerators.

Both live in the logic layer of 3D-stacked memory, one per vault
(Section 3.3).  They access DRAM through the internal TSV path -- 8x the
bandwidth of the off-chip channel at a fraction of the per-bit energy --
which is where the paper's gains come from: the PIM targets are simple
enough that even a 1-wide Cortex-R8-class core keeps up with them, while
the data no longer crosses the off-chip channel.
"""

from __future__ import annotations

from repro.config import SystemConfig, default_system
from repro.energy.components import EnergyParameters
from repro.energy.model import EnergyModel
from repro.sim.cpu import Execution
from repro.sim.dram import StackedDramInternal
from repro.sim.profile import KernelProfile


class PimCoreModel:
    """The general-purpose PIM core (1-wide in-order + 4-wide SIMD)."""

    #: MLP of a simple in-order core with SIMD loads; the shorter internal
    #: path keeps more of its few outstanding requests in flight.
    MLP = 6.0

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        self.system = system or default_system()
        self.energy_model = EnergyModel(energy_params)
        self.dram = StackedDramInternal(self.system.stacked_memory)

    def instruction_mix(self, profile: KernelProfile) -> tuple[float, float]:
        """Split a profile's instructions into (scalar, simd) counts.

        The vectorizable fraction of the data-processing and memory
        instructions collapses by the SIMD width; everything else runs
        scalar.
        """
        width = self.system.pim_core.simd_width
        vectorizable = profile.simd_fraction * (
            profile.alu_ops + profile.mem_instructions
        )
        vectorizable = min(vectorizable, profile.instructions)
        simd_instructions = vectorizable / width
        scalar_instructions = profile.instructions - vectorizable
        return scalar_instructions, simd_instructions

    def run(self, profile: KernelProfile, vaults_used: int = 1) -> Execution:
        pim = self.system.pim_core
        scalar, simd = self.instruction_mix(profile)
        effective_instructions = scalar + simd
        compute_cycles = effective_instructions / (
            pim.sustained_ipc * max(vaults_used, 1)
        )
        mem_time = self.dram.service_time(
            profile.pim_bytes, mlp=self.MLP, vaults_used=vaults_used
        )
        mem_cycles = mem_time * pim.frequency_hz
        total_cycles = max(compute_cycles, mem_cycles)
        stall_cycles = (total_cycles - compute_cycles) * max(vaults_used, 1)
        time_s = total_cycles / pim.frequency_hz
        energy = self.energy_model.pim_core_components(
            profile, scalar, simd, stall_cycles
        )
        return Execution(
            machine="PIM-Core", time_s=time_s, energy=energy, profile=profile
        )


class PimAcceleratorModel:
    """A fixed-function PIM accelerator (N in-memory logic units).

    Each accelerator consists of ``logic_units`` simple ALU pipelines
    operating on independent data chunks (the paper empirically uses four),
    fed by DMA-style streaming from the vault -- hence the high effective
    memory-level parallelism.
    """

    MLP = 16.0
    #: Fraction of the vault bandwidth the accelerator's load-compute-store
    #: double buffering actually sustains (4 kB chunk turnaround).
    STREAMING_EFFICIENCY = 0.67

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        self.system = system or default_system()
        self.energy_model = EnergyModel(energy_params)
        self.dram = StackedDramInternal(self.system.stacked_memory)

    def run(self, profile: KernelProfile, vaults_used: int = 1) -> Execution:
        acc = self.system.pim_accelerator
        throughput = (
            acc.logic_units * acc.ops_per_unit_per_cycle * acc.frequency_hz
        ) * max(vaults_used, 1)
        compute_time = profile.alu_ops / throughput if throughput > 0 else 0.0
        mem_time = self.dram.service_time(
            profile.pim_bytes, mlp=self.MLP, vaults_used=vaults_used
        ) / self.STREAMING_EFFICIENCY
        time_s = max(compute_time, mem_time)
        energy = self.energy_model.pim_accelerator_components(profile)
        return Execution(
            machine="PIM-Acc", time_s=time_s, energy=energy, profile=profile
        )
