"""Trace-driven set-associative cache simulator.

Models the SoC cache hierarchy of Table 1 (64 kB 4-way L1, 2 MB 8-way LLC)
with true-LRU replacement and write-back/write-allocate policy.  The
simulator replays :class:`repro.sim.trace.MemoryTrace` objects and reports
per-level hits, misses, writebacks, and resulting DRAM traffic.  It is the
reproduction's stand-in for the performance-counter traffic measurements in
the paper and is used to validate the analytic profiles.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.config import CacheConfig, SocConfig, CACHE_LINE_BYTES
from repro.obs.recorder import get_recorder
from repro.sim.trace import MemoryTrace
from repro.validate.strict import invariant, resolve_strict


@dataclass
class CacheStats:
    """Access statistics for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """One set-associative, write-back, write-allocate cache level."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # One OrderedDict per set: line_tag -> dirty flag; LRU order is
        # insertion order (move_to_end on hit).
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    def reset(self) -> None:
        self.stats = CacheStats()
        for s in self._sets:
            s.clear()

    def access(self, line_addr: int, is_write: bool):
        """Access one cache line.

        Returns:
            (hit, victim): ``hit`` is True on a cache hit; ``victim`` is the
            (line_addr, dirty) pair evicted to make room, or None.
        """
        set_idx = line_addr % self.config.num_sets
        tag = line_addr // self.config.num_sets
        lines = self._sets[set_idx]
        self.stats.accesses += 1
        if tag in lines:
            self.stats.hits += 1
            lines.move_to_end(tag)
            if is_write:
                lines[tag] = True
            return True, None
        self.stats.misses += 1
        victim = None
        if len(lines) >= self.config.associativity:
            victim_tag, victim_dirty = lines.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
            victim_line = victim_tag * self.config.num_sets + set_idx
            victim = (victim_line, victim_dirty)
        lines[tag] = is_write
        return False, victim

    def contains(self, line_addr: int) -> bool:
        set_idx = line_addr % self.config.num_sets
        tag = line_addr // self.config.num_sets
        return tag in self._sets[set_idx]


@dataclass
class HierarchyStats:
    """Aggregate results of replaying a trace through the hierarchy."""

    l1: CacheStats = field(default_factory=CacheStats)
    llc: CacheStats = field(default_factory=CacheStats)
    dram_line_reads: int = 0
    dram_line_writes: int = 0
    instructions_hint: float = 0.0

    @property
    def dram_bytes(self) -> int:
        return (self.dram_line_reads + self.dram_line_writes) * CACHE_LINE_BYTES

    def mpki(self, instructions: float | None = None) -> float:
        n = instructions if instructions is not None else self.instructions_hint
        if n <= 0:
            return 0.0
        return self.llc.misses / (n / 1000.0)


class CacheHierarchy:
    """A two-level (L1 + shared LLC) inclusive-ish hierarchy.

    Misses in L1 access the LLC; LLC misses fetch from DRAM.  Dirty
    evictions write back to the next level (L1 victims are installed into
    the LLC as dirty; LLC dirty victims count as DRAM writes).
    """

    def __init__(self, soc: SocConfig | None = None):
        cfg = soc or SocConfig()
        self.l1 = Cache(cfg.l1, name="L1")
        self.llc = Cache(cfg.l2, name="LLC")
        self.dram_line_reads = 0
        self.dram_line_writes = 0

    def reset(self) -> None:
        self.l1.reset()
        self.llc.reset()
        self.dram_line_reads = 0
        self.dram_line_writes = 0

    def access(self, address: int, is_write: bool) -> None:
        line = address // CACHE_LINE_BYTES
        hit, victim = self.l1.access(line, is_write)
        if victim is not None:
            victim_line, victim_dirty = victim
            if victim_dirty:
                self._llc_install_writeback(victim_line)
        if hit:
            return
        # L1 miss: fetch line through the LLC (the fill itself is a read).
        llc_hit, llc_victim = self.llc.access(line, is_write=False)
        if llc_victim is not None:
            _, dirty = llc_victim
            if dirty:
                self.dram_line_writes += 1
        if not llc_hit:
            self.dram_line_reads += 1

    def _llc_install_writeback(self, line: int) -> None:
        hit, victim = self.llc.access(line, is_write=True)
        if victim is not None:
            _, dirty = victim
            if dirty:
                self.dram_line_writes += 1
        if not hit:
            # Write-allocate: the line is fetched before being overwritten.
            self.dram_line_reads += 1

    def flush(self) -> None:
        """Write back all dirty lines (end-of-kernel accounting)."""
        for cache, sink in ((self.l1, self._llc_install_writeback), (self.llc, None)):
            for set_idx, lines in enumerate(cache._sets):
                for tag, dirty in list(lines.items()):
                    if not dirty:
                        continue
                    cache.stats.writebacks += 1
                    line = tag * cache.config.num_sets + set_idx
                    if sink is not None:
                        sink(line)
                    else:
                        self.dram_line_writes += 1
                    lines[tag] = False

    def replay(
        self,
        trace: MemoryTrace,
        flush: bool = True,
        instructions_hint: float = 0.0,
        strict: bool | None = None,
    ) -> HierarchyStats:
        """Replay a full trace, one access at a time.

        This is the slow, obviously-correct path; :meth:`replay_fast`
        produces bit-identical statistics and should be preferred for
        large traces.  ``strict`` arms the conservation invariants
        (``None`` defers to the global strict mode).
        """
        strict = resolve_strict(strict)
        recorder = get_recorder()
        before = self._counter_state() if (recorder.enabled or strict) else None
        with recorder.span("sim.cache.replay"):
            addresses = trace.addresses
            writes = trace.is_write
            access = self.access
            for i in range(len(trace)):
                access(int(addresses[i]), bool(writes[i]))
            return self._finish(
                len(trace), flush, instructions_hint, recorder, before, strict
            )

    def replay_fast(
        self,
        trace: MemoryTrace,
        flush: bool = True,
        instructions_hint: float = 0.0,
        strict: bool | None = None,
    ) -> HierarchyStats:
        """Replay a trace via line-run compression; bit-identical to
        :meth:`replay`.

        :meth:`MemoryTrace.line_runs` folds each run of consecutive
        accesses to the same cache line into one (line, count, any_write)
        record.  Within a run, accesses after the first are guaranteed L1
        hits on an already-MRU line, so they cannot change LRU state,
        victims, or lower-level traffic; their entire effect is
        ``count - 1`` extra L1 accesses/hits plus OR-ing their write flags
        into the line's dirty bit.  Dirtiness itself is flag-order
        independent (it is a monotone OR), so performing the run's first
        access with the folded flag and bulk-adding the remaining hits
        reproduces the per-access statistics exactly.  The equivalence is
        enforced by property tests (``tests/sim/test_replay_equivalence``).
        """
        strict = resolve_strict(strict)
        recorder = get_recorder()
        before = self._counter_state() if (recorder.enabled or strict) else None
        with recorder.span("sim.cache.replay_fast"):
            self._replay_line_runs(trace, strict)
            return self._finish(
                len(trace), flush, instructions_hint, recorder, before, strict
            )

    @classmethod
    def replay_batch(
        cls,
        trace: MemoryTrace,
        socs,
        flush: bool = True,
        instructions_hint: float = 0.0,
        strict: bool | None = None,
    ) -> list[HierarchyStats]:
        """Replay one trace under N SoC configs in a single shared pass.

        Returns one :class:`HierarchyStats` per config in input order,
        each bit-identical to ``CacheHierarchy(soc).replay_fast(trace)``
        on a fresh hierarchy; see :func:`repro.sim.batch.replay_batch`.
        """
        from repro.sim.batch import replay_batch

        return replay_batch(
            trace,
            socs,
            flush=flush,
            instructions_hint=instructions_hint,
            strict=strict,
        )

    def _replay_line_runs(self, trace: MemoryTrace, strict: bool = False) -> None:
        run_lines, run_counts, run_writes = trace.line_runs()
        if strict:
            self._check_line_runs(len(trace), run_lines, run_counts)
        l1, llc = self.l1, self.llc
        l1_num_sets, l1_assoc = l1.config.num_sets, l1.config.associativity
        llc_num_sets, llc_assoc = llc.config.num_sets, llc.config.associativity
        l1_sets, llc_sets = l1._sets, llc._sets
        # Stats are accumulated in locals and folded back once at the end;
        # pure integer additions, so the totals are bit-identical.
        l1_acc = l1_hits = l1_miss = l1_wb = 0
        llc_acc = llc_hits = llc_miss = llc_wb = 0
        dram_reads = dram_writes = 0
        for line, count, is_write in zip(
            run_lines.tolist(), run_counts.tolist(), run_writes.tolist()
        ):
            # Inlined Cache.access for L1 with the run's hits folded in.
            set_idx = line % l1_num_sets
            tag = line // l1_num_sets
            lines = l1_sets[set_idx]
            l1_acc += count
            if tag in lines:
                l1_hits += count
                lines.move_to_end(tag)
                if is_write:
                    lines[tag] = True
                continue
            l1_miss += 1
            l1_hits += count - 1
            if len(lines) >= l1_assoc:
                victim_tag, victim_dirty = lines.popitem(last=False)
                if victim_dirty:
                    l1_wb += 1
                    # Inlined _llc_install_writeback (LLC write-allocate).
                    victim_line = victim_tag * l1_num_sets + set_idx
                    wb_set = victim_line % llc_num_sets
                    wb_tag = victim_line // llc_num_sets
                    wb_lines = llc_sets[wb_set]
                    llc_acc += 1
                    if wb_tag in wb_lines:
                        llc_hits += 1
                        wb_lines.move_to_end(wb_tag)
                        wb_lines[wb_tag] = True
                    else:
                        llc_miss += 1
                        if len(wb_lines) >= llc_assoc:
                            _, wb_victim_dirty = wb_lines.popitem(last=False)
                            if wb_victim_dirty:
                                llc_wb += 1
                                dram_writes += 1
                        wb_lines[wb_tag] = True
                        dram_reads += 1
            lines[tag] = is_write
            # L1 miss: fetch line through the LLC (the fill itself is a
            # read) — inlined Cache.access on the LLC.
            llc_set = line % llc_num_sets
            llc_tag = line // llc_num_sets
            llc_lines = llc_sets[llc_set]
            llc_acc += 1
            if llc_tag in llc_lines:
                llc_hits += 1
                llc_lines.move_to_end(llc_tag)
            else:
                llc_miss += 1
                if len(llc_lines) >= llc_assoc:
                    _, llc_victim_dirty = llc_lines.popitem(last=False)
                    if llc_victim_dirty:
                        llc_wb += 1
                        dram_writes += 1
                llc_lines[llc_tag] = False
                dram_reads += 1
        l1.stats.accesses += l1_acc
        l1.stats.hits += l1_hits
        l1.stats.misses += l1_miss
        l1.stats.writebacks += l1_wb
        llc.stats.accesses += llc_acc
        llc.stats.hits += llc_hits
        llc.stats.misses += llc_miss
        llc.stats.writebacks += llc_wb
        self.dram_line_reads += dram_reads
        self.dram_line_writes += dram_writes

    #: Registry names for the hierarchy's counters, in the order produced
    #: by :meth:`_counter_state`.
    _COUNTER_NAMES = (
        "sim.cache.l1.accesses",
        "sim.cache.l1.hits",
        "sim.cache.l1.misses",
        "sim.cache.l1.writebacks",
        "sim.cache.llc.accesses",
        "sim.cache.llc.hits",
        "sim.cache.llc.misses",
        "sim.cache.llc.writebacks",
        "sim.cache.dram.line_reads",
        "sim.cache.dram.line_writes",
    )

    def _counter_state(self) -> tuple:
        """Every published statistic, as one cumulative tuple."""
        l1, llc = self.l1.stats, self.llc.stats
        return (
            l1.accesses, l1.hits, l1.misses, l1.writebacks,
            llc.accesses, llc.hits, llc.misses, llc.writebacks,
            self.dram_line_reads, self.dram_line_writes,
        )

    @staticmethod
    def _check_line_runs(num_accesses, run_lines, run_counts) -> None:
        """Strict-mode structural checks on a trace's line-run compression.

        The replay_fast equivalence argument assumes the run encoding is
        well-formed: counts cover the trace exactly, every run is
        non-empty, and consecutive runs change line (otherwise a fold
        could hide an eviction between same-line runs).
        """
        invariant(
            int(run_counts.sum()) == num_accesses,
            "trace.line_runs.total",
            "run counts sum to %d for a %d-access trace"
            % (int(run_counts.sum()), num_accesses),
        )
        invariant(
            run_counts.size == 0 or int(run_counts.min()) >= 1,
            "trace.line_runs.counts",
            "found an empty line run",
        )
        invariant(
            bool((run_lines[1:] != run_lines[:-1]).all()),
            "trace.line_runs.boundaries",
            "consecutive runs share a cache line",
        )

    def _check_accounting(self, num_accesses: int, before: tuple) -> None:
        """Strict-mode conservation laws over this replay's stat deltas.

        Computed as deltas so replays accumulating on a shared hierarchy
        are each checked in isolation.
        """
        after = self._counter_state()
        (
            l1_acc, l1_hit, l1_miss, l1_wb,
            llc_acc, llc_hit, llc_miss, llc_wb,
            dram_reads, dram_writes,
        ) = tuple(now - prior for prior, now in zip(before, after))
        invariant(
            l1_hit + l1_miss == l1_acc,
            "cache.l1.accounting",
            "hits %d + misses %d != accesses %d" % (l1_hit, l1_miss, l1_acc),
        )
        invariant(
            llc_hit + llc_miss == llc_acc,
            "cache.llc.accounting",
            "hits %d + misses %d != accesses %d" % (llc_hit, llc_miss, llc_acc),
        )
        invariant(
            l1_acc == num_accesses,
            "cache.l1.coverage",
            "L1 saw %d accesses for a %d-access trace" % (l1_acc, num_accesses),
        )
        invariant(
            llc_acc == l1_miss + l1_wb,
            "cache.llc.traffic",
            "LLC accesses %d != L1 misses %d + L1 writebacks %d"
            % (llc_acc, l1_miss, l1_wb),
        )
        # Every LLC miss fetches exactly one line from DRAM, and every
        # dirty LLC eviction (or flush) writes exactly one line back.
        invariant(
            dram_reads == llc_miss and dram_writes == llc_wb,
            "cache.dram.traffic",
            "DRAM deltas reads=%d writes=%d vs LLC misses=%d writebacks=%d"
            % (dram_reads, dram_writes, llc_miss, llc_wb),
        )

    def _finish(
        self,
        num_accesses: int,
        flush: bool,
        instructions_hint: float,
        recorder=None,
        before: tuple | None = None,
        strict: bool = False,
    ) -> HierarchyStats:
        if flush:
            self.flush()
        if strict and before is not None:
            self._check_accounting(num_accesses, before)
        if recorder is not None and recorder.enabled:
            # Publish this replay's *delta* (the stats objects accumulate
            # across replays on the same hierarchy; the registry must not
            # double-count earlier replays).
            counters = recorder.counters
            after = self._counter_state()
            base = before if before is not None else (0,) * len(after)
            for name, prior, current in zip(self._COUNTER_NAMES, base, after):
                counters.add(name, current - prior)
            counters.add("sim.cache.replays", 1)
            counters.add("sim.cache.trace_accesses", num_accesses)
        return HierarchyStats(
            l1=self.l1.stats,
            llc=self.llc.stats,
            dram_line_reads=self.dram_line_reads,
            dram_line_writes=self.dram_line_writes,
            instructions_hint=instructions_hint or float(num_accesses),
        )


def replay_trace(
    trace: MemoryTrace,
    soc: SocConfig | None = None,
    fast: bool = True,
    strict: bool | None = None,
) -> HierarchyStats:
    """Convenience wrapper: replay ``trace`` through a fresh hierarchy."""
    hierarchy = CacheHierarchy(soc)
    if fast:
        return hierarchy.replay_fast(trace, strict=strict)
    return hierarchy.replay(trace, strict=strict)
