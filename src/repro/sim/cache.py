"""Trace-driven set-associative cache simulator.

Models the SoC cache hierarchy of Table 1 (64 kB 4-way L1, 2 MB 8-way LLC)
with true-LRU replacement and write-back/write-allocate policy.  The
simulator replays :class:`repro.sim.trace.MemoryTrace` objects and reports
per-level hits, misses, writebacks, and resulting DRAM traffic.  It is the
reproduction's stand-in for the performance-counter traffic measurements in
the paper and is used to validate the analytic profiles.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.config import CacheConfig, SocConfig, CACHE_LINE_BYTES
from repro.sim.trace import MemoryTrace


@dataclass
class CacheStats:
    """Access statistics for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """One set-associative, write-back, write-allocate cache level."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # One OrderedDict per set: line_tag -> dirty flag; LRU order is
        # insertion order (move_to_end on hit).
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    def reset(self) -> None:
        self.stats = CacheStats()
        for s in self._sets:
            s.clear()

    def access(self, line_addr: int, is_write: bool):
        """Access one cache line.

        Returns:
            (hit, victim): ``hit`` is True on a cache hit; ``victim`` is the
            (line_addr, dirty) pair evicted to make room, or None.
        """
        set_idx = line_addr % self.config.num_sets
        tag = line_addr // self.config.num_sets
        lines = self._sets[set_idx]
        self.stats.accesses += 1
        if tag in lines:
            self.stats.hits += 1
            lines.move_to_end(tag)
            if is_write:
                lines[tag] = True
            return True, None
        self.stats.misses += 1
        victim = None
        if len(lines) >= self.config.associativity:
            victim_tag, victim_dirty = lines.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
            victim_line = victim_tag * self.config.num_sets + set_idx
            victim = (victim_line, victim_dirty)
        lines[tag] = is_write
        return False, victim

    def contains(self, line_addr: int) -> bool:
        set_idx = line_addr % self.config.num_sets
        tag = line_addr // self.config.num_sets
        return tag in self._sets[set_idx]


@dataclass
class HierarchyStats:
    """Aggregate results of replaying a trace through the hierarchy."""

    l1: CacheStats = field(default_factory=CacheStats)
    llc: CacheStats = field(default_factory=CacheStats)
    dram_line_reads: int = 0
    dram_line_writes: int = 0
    instructions_hint: float = 0.0

    @property
    def dram_bytes(self) -> int:
        return (self.dram_line_reads + self.dram_line_writes) * CACHE_LINE_BYTES

    def mpki(self, instructions: float | None = None) -> float:
        n = instructions if instructions is not None else self.instructions_hint
        if n <= 0:
            return 0.0
        return self.llc.misses / (n / 1000.0)


class CacheHierarchy:
    """A two-level (L1 + shared LLC) inclusive-ish hierarchy.

    Misses in L1 access the LLC; LLC misses fetch from DRAM.  Dirty
    evictions write back to the next level (L1 victims are installed into
    the LLC as dirty; LLC dirty victims count as DRAM writes).
    """

    def __init__(self, soc: SocConfig | None = None):
        cfg = soc or SocConfig()
        self.l1 = Cache(cfg.l1, name="L1")
        self.llc = Cache(cfg.l2, name="LLC")
        self.dram_line_reads = 0
        self.dram_line_writes = 0

    def reset(self) -> None:
        self.l1.reset()
        self.llc.reset()
        self.dram_line_reads = 0
        self.dram_line_writes = 0

    def access(self, address: int, is_write: bool) -> None:
        line = address // CACHE_LINE_BYTES
        hit, victim = self.l1.access(line, is_write)
        if victim is not None:
            victim_line, victim_dirty = victim
            if victim_dirty:
                self._llc_install_writeback(victim_line)
        if hit:
            return
        # L1 miss: fetch line through the LLC (the fill itself is a read).
        llc_hit, llc_victim = self.llc.access(line, is_write=False)
        if llc_victim is not None:
            _, dirty = llc_victim
            if dirty:
                self.dram_line_writes += 1
        if not llc_hit:
            self.dram_line_reads += 1

    def _llc_install_writeback(self, line: int) -> None:
        hit, victim = self.llc.access(line, is_write=True)
        if victim is not None:
            _, dirty = victim
            if dirty:
                self.dram_line_writes += 1
        if not hit:
            # Write-allocate: the line is fetched before being overwritten.
            self.dram_line_reads += 1

    def flush(self) -> None:
        """Write back all dirty lines (end-of-kernel accounting)."""
        for cache, sink in ((self.l1, self._llc_install_writeback), (self.llc, None)):
            for set_idx, lines in enumerate(cache._sets):
                for tag, dirty in list(lines.items()):
                    if not dirty:
                        continue
                    line = tag * cache.config.num_sets + set_idx
                    if sink is not None:
                        sink(line)
                    else:
                        self.dram_line_writes += 1
                    lines[tag] = False

    def replay(
        self,
        trace: MemoryTrace,
        flush: bool = True,
        instructions_hint: float = 0.0,
    ) -> HierarchyStats:
        """Replay a full trace and return aggregate statistics."""
        addresses = trace.addresses
        writes = trace.is_write
        access = self.access
        for i in range(len(trace)):
            access(int(addresses[i]), bool(writes[i]))
        if flush:
            self.flush()
        return HierarchyStats(
            l1=self.l1.stats,
            llc=self.llc.stats,
            dram_line_reads=self.dram_line_reads,
            dram_line_writes=self.dram_line_writes,
            instructions_hint=instructions_hint or float(len(trace)),
        )


def replay_trace(trace: MemoryTrace, soc: SocConfig | None = None) -> HierarchyStats:
    """Convenience wrapper: replay ``trace`` through a fresh hierarchy."""
    return CacheHierarchy(soc).replay(trace)
