"""Memory access traces.

A ``MemoryTrace`` is a flat sequence of (address, is_write) pairs at byte
granularity, stored as numpy arrays.  Workload kernels can record their
actual access patterns through a ``TraceRecorder`` while executing; the
cache simulator (:mod:`repro.sim.cache`) then replays the trace to measure
hit rates, MPKI, and off-chip traffic.  This is how the test suite checks
that the analytic locality classes in :mod:`repro.sim.profile` (streaming,
cache-resident, scattered) match what the kernels really do.

The recorder stores compact (base, count, is_write) range records and only
materializes per-access addresses when :meth:`TraceRecorder.trace` is
called, so instrumenting a kernel costs O(ranges), not O(accesses).  For
fast replay, :meth:`MemoryTrace.line_runs` run-length-compresses
consecutive same-line accesses; see :meth:`repro.sim.cache.CacheHierarchy.
replay_fast` for the equivalence argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CACHE_LINE_BYTES


@dataclass
class MemoryTrace:
    """A sequence of memory accesses.

    Attributes:
        addresses: byte addresses, uint64.
        is_write: boolean flags, same length as ``addresses``.
    """

    addresses: np.ndarray
    is_write: np.ndarray

    def __post_init__(self):
        self.addresses = np.asarray(self.addresses, dtype=np.uint64)
        self.is_write = np.asarray(self.is_write, dtype=bool)
        if self.addresses.shape != self.is_write.shape:
            raise ValueError("addresses and is_write must have equal length")
        # line_bytes -> (run_lines, run_counts, run_writes); see line_runs().
        self._line_runs_cache: dict = {}

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def num_reads(self) -> int:
        return int((~self.is_write).sum())

    @property
    def num_writes(self) -> int:
        return int(self.is_write.sum())

    def line_addresses(self, line_bytes: int = CACHE_LINE_BYTES) -> np.ndarray:
        """Cache-line indices touched, in access order."""
        return self.addresses // np.uint64(line_bytes)

    def unique_lines(self, line_bytes: int = CACHE_LINE_BYTES) -> int:
        return int(np.unique(self.line_addresses(line_bytes)).shape[0])

    def footprint_bytes(self, line_bytes: int = CACHE_LINE_BYTES) -> int:
        return self.unique_lines(line_bytes) * line_bytes

    def concatenated(self, other: "MemoryTrace") -> "MemoryTrace":
        return MemoryTrace(
            addresses=np.concatenate([self.addresses, other.addresses]),
            is_write=np.concatenate([self.is_write, other.is_write]),
        )

    def line_runs(
        self, line_bytes: int = CACHE_LINE_BYTES
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run-length-compress consecutive accesses to the same cache line.

        Returns ``(lines, counts, writes)`` where ``lines[i]`` is the cache
        line of run *i* (in first-access order), ``counts[i]`` how many
        consecutive accesses hit that line, and ``writes[i]`` the OR-fold
        of their write flags.

        A run is *exactly* replayable as one access: after the first access
        of a run the line is resident and most-recently-used, and no other
        line is touched before the run ends, so accesses 2..n of a run are
        guaranteed cache hits that cannot change LRU order, hit/miss
        outcomes, or evictions.  The only state they carry is the dirty
        bit, which is the OR of the run's write flags.

        The result is memoized per ``line_bytes`` on the trace object:
        replaying the same trace many times (a config sweep, or the
        cache and timing simulators back to back) computes the RLE once.
        Traces are treated as immutable once replayed — mutating
        ``addresses``/``is_write`` in place after a replay would leave a
        stale cache.  The memo travels with the trace through pickling,
        so pool workers receive the precomputed runs for free, and
        :class:`repro.sim.artifact.TraceArtifact` pre-seeds it from the
        artifact's stored columns.
        """
        cached = self._line_runs_cache.get(line_bytes)
        if cached is not None:
            return cached
        result = self._compute_line_runs(line_bytes)
        self._line_runs_cache[line_bytes] = result
        return result

    def _compute_line_runs(
        self, line_bytes: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lines = self.addresses // np.uint64(line_bytes)
        n = int(lines.shape[0])
        if n == 0:
            return (
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
            )
        boundaries = np.empty(n, dtype=bool)
        boundaries[0] = True
        np.not_equal(lines[1:], lines[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        run_lines = lines[starts]
        counts = np.diff(np.append(starts, n))
        writes = np.logical_or.reduceat(self.is_write, starts)
        return run_lines, counts, writes


#: Internal op kinds for TraceRecorder's compact record list.
_RANGE = 0
_ARRAY = 1
_BATCH = 2


def _expand_ranges(
    bases: np.ndarray, counts: np.ndarray, granularity: int
) -> np.ndarray:
    """Per-access addresses for many (base, count) ranges, in order.

    Equivalent to concatenating ``base + arange(count) * granularity``
    for every range, without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.uint64)
    starts = np.repeat(bases, counts)
    range_origin = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.uint64) - np.repeat(
        range_origin, counts
    ).astype(np.uint64)
    return starts + offsets * np.uint64(granularity)


class TraceRecorder:
    """Records memory accesses made by an instrumented kernel.

    Kernels call :meth:`read` / :meth:`write` with (base address, size)
    ranges; the recorder stores one compact record per range and expands
    it into one access per ``granularity`` bytes only when :meth:`trace`
    is called.  Ranges are cheap to record, so kernels can be instrumented
    at their natural operation granularity (a pixel row, a matrix tile)
    without distorting the implementation, and recording a multi-megabyte
    stream costs a constant amount of work per range.
    """

    def __init__(self, granularity: int = 8):
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        # (kind, payload, is_write): payload is (base, count) for _RANGE
        # records and a uint64 address array for _ARRAY records.
        self._ops: list[tuple[int, object, bool]] = []

    def read(self, base: int, size: int) -> None:
        self._record(base, size, is_write=False)

    def write(self, base: int, size: int) -> None:
        self._record(base, size, is_write=True)

    def read_indices(self, base: int, indices: np.ndarray, element_size: int) -> None:
        """Record scattered element reads at ``base + indices*element_size``."""
        self._ops.append((_ARRAY, self._index_addrs(base, indices, element_size), False))

    def write_indices(self, base: int, indices: np.ndarray, element_size: int) -> None:
        self._ops.append((_ARRAY, self._index_addrs(base, indices, element_size), True))

    @staticmethod
    def _index_addrs(base: int, indices, element_size: int) -> np.ndarray:
        if base < 0:
            raise ValueError("base address must be non-negative, got %d" % base)
        if element_size <= 0:
            raise ValueError("element size must be positive, got %d" % element_size)
        return np.uint64(base) + np.asarray(indices, dtype=np.uint64) * np.uint64(
            element_size
        )

    def record_ranges(self, bases, sizes, writes) -> None:
        """Record many (base, size, is_write) ranges in one call.

        Equivalent to issuing :meth:`read`/:meth:`write` once per range
        in array order, but with constant Python work per *batch*: the
        arrays are stored as one compact record and expanded together at
        :meth:`trace` time.  Vectorized kernels (e.g. the fast texture
        tiling path) use this to emit a whole frame's worth of range
        records at once; the materialized trace is byte-identical to the
        per-call recording, including read/write interleaving.
        """
        bases = np.asarray(bases)
        if bases.size and bases.dtype.kind != "u" and int(bases.min()) < 0:
            raise ValueError("base addresses must be non-negative")
        bases = np.ascontiguousarray(bases, dtype=np.uint64)
        sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        writes = np.ascontiguousarray(writes, dtype=bool)
        if not (bases.shape == sizes.shape == writes.shape) or bases.ndim != 1:
            raise ValueError("bases, sizes, writes must be equal-length 1-D arrays")
        if sizes.size == 0:
            return
        if int(sizes.min()) < 0:
            raise ValueError("size must be non-negative")
        nonzero = sizes > 0
        if not nonzero.all():
            bases, sizes, writes = bases[nonzero], sizes[nonzero], writes[nonzero]
            if sizes.size == 0:
                return
        counts = (sizes + self.granularity - 1) // self.granularity
        self._ops.append((_BATCH, (bases, counts, writes), None))

    def _record(self, base: int, size: int, is_write: bool) -> None:
        if base < 0:
            # Caught here so the error points at the recording kernel, not
            # at an OverflowError during uint64 materialization much later.
            raise ValueError("base address must be non-negative, got %d" % base)
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return
        count = (size + self.granularity - 1) // self.granularity
        self._ops.append((_RANGE, (base, count), is_write))

    @property
    def num_accesses(self) -> int:
        total = 0
        for kind, payload, _ in self._ops:
            if kind == _RANGE:
                total += payload[1]
            elif kind == _ARRAY:
                total += int(payload.shape[0])
            else:
                total += int(payload[1].sum())
        return total

    def range_records(self) -> list:
        """All recorded accesses as normalized (base, count, is_write)
        tuples in recording order.

        Batch records unfold into their per-range tuples and index
        records into one tuple per element, so two recorders that
        recorded the same access stream through different APIs compare
        equal.  Used by the scalar-vs-fast differential tests.
        """
        records: list = []
        for kind, payload, w in self._ops:
            if kind == _RANGE:
                records.append((int(payload[0]), int(payload[1]), w))
            elif kind == _ARRAY:
                records.extend((int(a), 1, w) for a in payload.tolist())
            else:
                bases, counts, writes = payload
                records.extend(
                    zip(bases.tolist(), counts.tolist(), writes.tolist())
                )
        return records

    def trace(self) -> MemoryTrace:
        if not self._ops:
            return MemoryTrace(
                addresses=np.empty(0, dtype=np.uint64), is_write=np.empty(0, dtype=bool)
            )
        addr_chunks = []
        flag_chunks = []
        for kind, payload, w in self._ops:
            if kind == _RANGE:
                base, count = payload
                addr_chunks.append(
                    np.uint64(base)
                    + np.arange(count, dtype=np.uint64) * np.uint64(self.granularity)
                )
                flag_chunks.append(np.full(count, w, dtype=bool))
            elif kind == _ARRAY:
                addr_chunks.append(payload)
                flag_chunks.append(np.full(payload.shape[0], w, dtype=bool))
            else:
                bases, counts, writes = payload
                addr_chunks.append(_expand_ranges(bases, counts, self.granularity))
                flag_chunks.append(np.repeat(writes, counts))
        return MemoryTrace(
            addresses=np.concatenate(addr_chunks),
            is_write=np.concatenate(flag_chunks),
        )


class AddressSpace:
    """A trivial bump allocator handing out disjoint address ranges.

    Instrumented kernels use this to place their buffers at
    non-overlapping addresses so recorded traces reflect distinct objects.
    """

    def __init__(self, base: int = 0x1000_0000, alignment: int = 4096):
        self._next = base
        self._alignment = alignment

    def alloc(self, size: int) -> int:
        addr = self._next
        aligned = (size + self._alignment - 1) // self._alignment * self._alignment
        self._next += aligned
        return addr
