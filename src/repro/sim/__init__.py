"""Performance-model substrate: caches, DRAM, CPU/PIM timing.

The paper's evaluation combines hardware performance counters (for the
workload characterization) with gem5 full-system simulation (for the PIM
evaluation).  This package provides the equivalent substrate for the
reproduction:

* :mod:`repro.sim.profile` -- the ``KernelProfile`` abstraction: exact
  dynamic operation counts and memory-traffic statistics produced by the
  instrumented workload kernels (stand-in for performance counters);
* :mod:`repro.sim.trace` / :mod:`repro.sim.cache` -- a trace-driven
  set-associative cache-hierarchy simulator used to validate the locality
  assumptions baked into the analytic profiles;
* :mod:`repro.sim.artifact` / :mod:`repro.sim.batch` -- memory-mapped
  columnar trace artifacts and config-batched replay, so design-space
  sweeps trace each workload once and evaluate many cache
  configurations in one pass;
* :mod:`repro.sim.dram` -- LPDDR3 and 3D-stacked DRAM bandwidth/latency
  models;
* :mod:`repro.sim.cpu` / :mod:`repro.sim.pim` -- roofline-style timing and
  energy models for the SoC CPU, the PIM core, and PIM accelerators;
* :mod:`repro.sim.coherence` -- the CPU<->PIM fine-grained coherence cost
  model of Section 8.2.
"""

from repro.sim.profile import KernelProfile
from repro.sim.trace import MemoryTrace, TraceRecorder
from repro.sim.artifact import ArtifactError, TraceArtifact, TraceStore
from repro.sim.batch import (
    replay_batch,
    replay_timing_batch,
    sweep_batch,
    timing_batch_for_socs,
)
from repro.sim.cache import (
    Cache,
    CacheHierarchy,
    CacheStats,
    HierarchyStats,
    replay_trace,
)
from repro.sim.dram import DramTimings, OffChipDram, StackedDramInternal
from repro.sim.cpu import CpuModel, Execution
from repro.sim.pim import PimCoreModel, PimAcceleratorModel
from repro.sim.coherence import CoherenceModel, OffloadOverhead
from repro.sim.timing import TimingSimulator, TimingParameters, TimingResult
from repro.sim.rowbuffer import DramGeometry, RowBufferModel, RowBufferStats

__all__ = [
    "KernelProfile",
    "MemoryTrace",
    "TraceRecorder",
    "ArtifactError",
    "TraceArtifact",
    "TraceStore",
    "replay_batch",
    "replay_timing_batch",
    "sweep_batch",
    "timing_batch_for_socs",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyStats",
    "replay_trace",
    "DramTimings",
    "OffChipDram",
    "StackedDramInternal",
    "CpuModel",
    "Execution",
    "PimCoreModel",
    "PimAcceleratorModel",
    "CoherenceModel",
    "OffloadOverhead",
    "TimingSimulator",
    "TimingParameters",
    "TimingResult",
    "DramGeometry",
    "RowBufferModel",
    "RowBufferStats",
]
