"""DRAM row-buffer locality (Table 1's FR-FCFS scheduler, grounded).

The analytic DRAM models fold row-buffer behaviour into two constants:
the sustained-bandwidth efficiency (0.8) and the average access latency
(100 ns off-chip).  This module makes those constants inspectable: it
replays a line-address stream against a banked open-row DRAM model with
FR-FCFS-style reordering (row hits within a small queue window are
served first) and reports the row-hit rate and the implied average
latency -- the tests check that streaming kernels land near the
"efficient" constants and random kernels near the "latency" ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CACHE_LINE_BYTES
from repro.sim.trace import MemoryTrace


@dataclass(frozen=True)
class DramGeometry:
    """LPDDR3-class bank/row geometry."""

    num_banks: int = 8
    row_bytes: int = 2048  # 2 kB row buffer per bank
    #: Latencies (ns): column access on a row hit; precharge+activate+
    #: column on a row miss (conflict).
    row_hit_ns: float = 20.0
    row_miss_ns: float = 45.0

    def bank_and_row(self, line_addr: int) -> tuple[int, int]:
        """Map a cache-line address to (bank, row).

        Lines interleave across banks (consecutive lines hit different
        banks, the standard mapping for streaming bandwidth).
        """
        byte_addr = line_addr * CACHE_LINE_BYTES
        bank = line_addr % self.num_banks
        row = byte_addr // (self.row_bytes * self.num_banks)
        return bank, row


@dataclass
class RowBufferStats:
    """Outcome of replaying an address stream."""

    accesses: int = 0
    row_hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def average_latency_ns(self, geometry: DramGeometry) -> float:
        if self.accesses == 0:
            return 0.0
        misses = self.accesses - self.row_hits
        return (
            self.row_hits * geometry.row_hit_ns + misses * geometry.row_miss_ns
        ) / self.accesses


class RowBufferModel:
    """Open-row, per-bank row buffers with FR-FCFS-style reordering."""

    def __init__(self, geometry: DramGeometry | None = None, queue_window: int = 16):
        if queue_window < 1:
            raise ValueError("queue_window must be >= 1")
        self.geometry = geometry or DramGeometry()
        self.queue_window = queue_window

    def replay_lines(self, line_addresses) -> RowBufferStats:
        """Replay line-granularity addresses through the banks.

        FR-FCFS is approximated by draining each ``queue_window``-sized
        chunk row-hits-first: requests to currently-open rows are served
        before requests that would close them.
        """
        geometry = self.geometry
        open_rows: dict[int, int] = {}
        stats = RowBufferStats()
        pending = list(line_addresses)
        for start in range(0, len(pending), self.queue_window):
            window = [
                geometry.bank_and_row(int(a))
                for a in pending[start : start + self.queue_window]
            ]
            # First ready: serve row hits in the window first.
            hits = [ba for ba in window if open_rows.get(ba[0]) == ba[1]]
            misses = [ba for ba in window if open_rows.get(ba[0]) != ba[1]]
            for bank, row in hits + misses:
                stats.accesses += 1
                if open_rows.get(bank) == row:
                    stats.row_hits += 1
                else:
                    open_rows[bank] = row
        return stats

    def replay(self, trace: MemoryTrace) -> RowBufferStats:
        return self.replay_lines(np.unique(trace.line_addresses()))

    def replay_in_order(self, trace: MemoryTrace) -> RowBufferStats:
        """Replay preserving the trace's order (no dedup)."""
        return self.replay_lines(trace.line_addresses())
