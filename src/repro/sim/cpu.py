"""Roofline-style timing model for the SoC CPU (CPU-Only executions).

A kernel's runtime is the maximum of its compute-bound time (instructions
over sustained IPC) and its memory-bound time (off-chip traffic over
sustained channel bandwidth, or latency-bound for low-MLP streams).  This
matches the behaviour the paper observes on its memory-bound PIM targets:
"the CPU spends the majority of its time and energy stalling as it waits
for data from memory" (Section 6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, default_system
from repro.energy.breakdown import EnergyBreakdown
from repro.energy.components import EnergyParameters
from repro.energy.model import EnergyModel
from repro.sim.dram import OffChipDram
from repro.sim.profile import KernelProfile


@dataclass(frozen=True)
class Execution:
    """Result of running one kernel on one machine model."""

    machine: str
    time_s: float
    energy: EnergyBreakdown
    profile: KernelProfile

    @property
    def energy_j(self) -> float:
        return self.energy.total

    def speedup_over(self, baseline: "Execution") -> float:
        if self.time_s <= 0:
            return float("inf")
        return baseline.time_s / self.time_s

    def energy_reduction_vs(self, baseline: "Execution") -> float:
        """Fractional energy reduction relative to ``baseline`` (0.55 = -55%)."""
        if baseline.energy_j <= 0:
            return 0.0
        return 1.0 - self.energy_j / baseline.energy_j


class CpuModel:
    """Timing + energy model for CPU-Only execution of a kernel."""

    #: Memory-level parallelism sustained by the 8-wide OoO core.  The PIM
    #: targets' access patterns (strided tile writes, scattered reference-
    #: frame reads) defeat simple prefetchers, so the sustained MLP is well
    #: below the MSHR count.
    MLP = 6.0

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        self.system = system or default_system()
        self.energy_model = EnergyModel(energy_params)
        self.dram = OffChipDram(self.system.stacked_memory)

    def run(self, profile: KernelProfile, cores: int = 1) -> Execution:
        """Execute ``profile`` on ``cores`` CPU cores.

        Multi-core runs split the instruction stream evenly but share the
        single off-chip channel, which is what makes these kernels scale
        poorly on the CPU.
        """
        soc = self.system.soc
        cores = min(max(cores, 1), soc.num_cores)
        compute_cycles = profile.instructions / (soc.sustained_ipc * cores)
        mem_time = self.dram.service_time(profile.dram_bytes, mlp=self.MLP * cores)
        mem_cycles = mem_time * soc.frequency_hz
        total_cycles = max(compute_cycles, mem_cycles)
        stall_cycles = (total_cycles - compute_cycles) * cores
        time_s = total_cycles / soc.frequency_hz
        energy = self.energy_model.cpu_components(profile, stall_cycles)
        return Execution(
            machine="CPU-Only", time_s=time_s, energy=energy, profile=profile
        )
