"""Config-batched replay: N cache configurations over one trace, one pass.

A design-space sweep replays the *same* run stream under many cache
geometries.  The serial path (:meth:`repro.sim.cache.CacheHierarchy.
replay_fast`) costs one full Python-level loop over the trace per
configuration; this module factors that work by what actually differs
between configurations:

* **L1 pass** — the L1's behaviour depends only on its own geometry
  (sets x ways), so configs sharing an L1 geometry share one pass over
  the :meth:`repro.sim.trace.MemoryTrace.line_runs` stream.  The pass
  replays the exact inlined serial L1 loop (OrderedDict recency = true
  LRU) and records the *LLC event stream* it induces: for every L1 miss,
  an optional dirty-victim writeback-install followed by the line fetch.
* **LLC pass** — each (L1 geometry, LLC geometry) pair replays only that
  event stream, which is as long as the L1 miss traffic, not the trace.
* **Timing** — the event-driven model's cache state evolves through the
  same ``Cache.access`` sequence as the hierarchy replay, so its
  per-event outcomes (L1 hit / LLC hit / DRAM miss) are exactly the
  passes above.  Runs between latency events only accumulate integer
  issue gaps, so the ``pending`` value at each event is a prefix-sum
  difference over the shared run counts; the per-config loop touches
  only latency events, with the *same float expressions in the same
  order* as the serial engine.

After the passes each config's end state (the final OrderedDicts) is
poured into a real :class:`~repro.sim.cache.CacheHierarchy` and finished
through the *serial* ``_finish`` — same flush order, same strict
accounting checks, same published counters — which is why
:func:`replay_batch` and :func:`replay_timing_batch` are bit-identical
per config to serial ``replay_fast`` (property-tested in
``tests/sim/test_replay_batch.py``).  :func:`sweep_batch` evaluates both
engines from one set of shared passes — the sweep executor's fast path.

Counters: each batch publishes ``sim.replay_batch.batches`` /
``.configs`` / ``.runs``, plus ``.shared_trace_hits`` (config
evaluations that reused an already-materialized run stream — a memoized
trace or a loaded artifact).  Per-config ``sim.cache.*`` /
``sim.timing.*`` counters are identical to a serial sweep's; the
differential test in ``tests/sim/test_replay_equivalence.py`` pins
this.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque

import numpy as np

from repro.obs.recorder import get_recorder
from repro.sim.cache import CacheHierarchy, CacheStats, HierarchyStats
from repro.sim.timing import TimingParameters, TimingResult, TimingSimulator
from repro.sim.trace import MemoryTrace
from repro.validate.strict import invariant, resolve_strict


def _line_runs_for_batch(trace: MemoryTrace):
    """The trace's run columns as int64 lines, plus a shared-memo flag."""
    shared = bool(getattr(trace, "_line_runs_cache", None))
    run_lines, run_counts, run_writes = trace.line_runs()
    if run_lines.size and int(run_lines.max()) > np.iinfo(np.int64).max:
        raise ValueError(
            "replay_batch requires line addresses < 2**63; "
            "use the serial replay for exotic address spaces"
        )
    return run_lines.astype(np.int64), run_counts, run_writes, shared


def _publish_batch(recorder, n, num_runs, shared) -> None:
    if not recorder.enabled:
        return
    counters = recorder.counters
    counters.add("sim.replay_batch.batches", 1)
    counters.add("sim.replay_batch.configs", n)
    counters.add("sim.replay_batch.runs", num_runs)
    if shared:
        counters.add("sim.replay_batch.shared_trace_hits", n)


class _L1Pass:
    """One distinct L1 geometry's replay of the shared run stream.

    ``stream_key`` fingerprints the induced LLC event stream (event
    lines, kinds, and fetch positions): two L1 geometries whose streams
    collide — common in sweeps, e.g. every geometry too small for the
    working set misses identically — share LLC passes and timing event
    loops downstream.
    """

    __slots__ = (
        "acc", "hits", "miss", "wb", "sets", "ev_lines", "ev_is_wb",
        "fetch_runs", "stream_key",
    )


class _LlcPass:
    """One (L1 geometry, LLC geometry) pair's replay of the event stream."""

    __slots__ = (
        "acc", "hits", "miss", "wb", "dram_reads", "dram_writes", "sets",
        "fetch_hits",
    )


class _SharedOutcomes:
    """Memoized per-geometry passes over one trace's run stream.

    Every batched entry point builds one of these; configs sharing an L1
    geometry share its :class:`_L1Pass`, and each (L1, LLC) geometry
    pair shares its :class:`_LlcPass` — including between the hierarchy
    and timing engines inside :func:`sweep_batch`, whose cache state
    evolves identically.
    """

    def __init__(self, trace: MemoryTrace):
        self.run_lines, self.run_counts, self.run_writes, self.shared = (
            _line_runs_for_batch(trace)
        )
        self.num_accesses = len(trace)
        self.num_runs = int(self.run_lines.shape[0])
        self.lines = self.run_lines.tolist()
        self.counts = self.run_counts.tolist()
        self.writes = self.run_writes.tolist()
        self._l1 = {}
        self._llc = {}
        self._pendings = {}
        self._prefix = None

    @staticmethod
    def _key(cfg):
        return (cfg.num_sets, cfg.associativity)

    def l1(self, cfg) -> _L1Pass:
        key = self._key(cfg)
        pass_ = self._l1.get(key)
        if pass_ is None:
            pass_ = self._l1[key] = self._run_l1(cfg.num_sets, cfg.associativity)
        return pass_

    def llc(self, l1_cfg, llc_cfg) -> _LlcPass:
        l1_pass = self.l1(l1_cfg)
        key = (l1_pass.stream_key, self._key(llc_cfg))
        pass_ = self._llc.get(key)
        if pass_ is None:
            pass_ = self._llc[key] = self._run_llc(
                l1_pass, llc_cfg.num_sets, llc_cfg.associativity
            )
        return pass_

    def _run_l1(self, num_sets: int, assoc: int) -> _L1Pass:
        """The inlined serial L1 loop, recording induced LLC events.

        Mirrors ``CacheHierarchy._replay_line_runs`` exactly: per run one
        lookup; on a miss the dirty victim's writeback-install event is
        emitted *before* the install, then the fetch event.
        """
        setv = (self.run_lines % num_sets).tolist()
        tagv = (self.run_lines // num_sets).tolist()
        sets = [OrderedDict() for _ in range(num_sets)]
        acc = hits = miss = wb = 0
        ev_lines: list[int] = []
        ev_is_wb: list[bool] = []
        fetch_runs: list[int] = []
        append_line = ev_lines.append
        append_kind = ev_is_wb.append
        append_fetch = fetch_runs.append
        r = 0
        for set_idx, tag, line, count, is_write in zip(
            setv, tagv, self.lines, self.counts, self.writes
        ):
            acc += count
            od = sets[set_idx]
            if tag in od:
                hits += count
                od.move_to_end(tag)
                if is_write:
                    od[tag] = True
                r += 1
                continue
            miss += 1
            hits += count - 1
            if len(od) >= assoc:
                victim_tag, victim_dirty = od.popitem(last=False)
                if victim_dirty:
                    wb += 1
                    append_line(victim_tag * num_sets + set_idx)
                    append_kind(True)
            od[tag] = is_write
            append_line(line)
            append_kind(False)
            append_fetch(r)
            r += 1
        pass_ = _L1Pass()
        pass_.acc, pass_.hits, pass_.miss, pass_.wb = acc, hits, miss, wb
        pass_.sets = sets
        pass_.ev_lines = np.array(ev_lines, dtype=np.int64)
        pass_.ev_is_wb = ev_is_wb
        pass_.fetch_runs = np.array(fetch_runs, dtype=np.int64)
        digest = hashlib.blake2b(pass_.ev_lines.tobytes(), digest_size=16)
        digest.update(np.packbits(np.asarray(ev_is_wb, dtype=bool)).tobytes())
        digest.update(pass_.fetch_runs.tobytes())
        pass_.stream_key = digest.digest()
        return pass_

    def _run_llc(self, l1_pass: _L1Pass, num_sets: int, assoc: int) -> _LlcPass:
        """The inlined serial LLC loop over one L1 geometry's events.

        Writeback-installs are write-allocate (the install is dirty and
        the fill a DRAM read); fetches install clean.  Per fetch the LLC
        hit outcome is recorded for the timing engine.
        """
        setv = (l1_pass.ev_lines % num_sets).tolist()
        tagv = (l1_pass.ev_lines // num_sets).tolist()
        sets = [OrderedDict() for _ in range(num_sets)]
        acc = hits = miss = wb = 0
        dram_reads = dram_writes = 0
        fetch_hits: list[bool] = []
        append_hit = fetch_hits.append
        for set_idx, tag, is_wb in zip(setv, tagv, l1_pass.ev_is_wb):
            od = sets[set_idx]
            acc += 1
            if is_wb:
                if tag in od:
                    hits += 1
                    od.move_to_end(tag)
                    od[tag] = True
                else:
                    miss += 1
                    if len(od) >= assoc:
                        _, victim_dirty = od.popitem(last=False)
                        if victim_dirty:
                            wb += 1
                            dram_writes += 1
                    od[tag] = True
                    dram_reads += 1
            elif tag in od:
                hits += 1
                od.move_to_end(tag)
                append_hit(True)
            else:
                miss += 1
                if len(od) >= assoc:
                    _, victim_dirty = od.popitem(last=False)
                    if victim_dirty:
                        wb += 1
                        dram_writes += 1
                od[tag] = False
                dram_reads += 1
                append_hit(False)
        pass_ = _LlcPass()
        pass_.acc, pass_.hits, pass_.miss, pass_.wb = acc, hits, miss, wb
        pass_.dram_reads, pass_.dram_writes = dram_reads, dram_writes
        pass_.sets = sets
        pass_.fetch_hits = fetch_hits
        return pass_

    def pendings(self, l1_cfg):
        """Issue-gap counts at each fetch event, plus the final pending.

        Between latency events every run is an L1 hit contributing its
        whole ``count``, and an event run contributes ``+1`` before and
        ``count - 1`` after materialization, so pending at event *e* in
        run ``E[e]`` telescopes to ``prefix[E[e]] - prefix[E[e-1]]``
        (``prefix`` the exclusive cumulative sum of run counts, with
        ``prefix[E[0]] + 1`` for the first event) — the exact integer
        sequence the serial loop materializes.
        """
        l1_pass = self.l1(l1_cfg)
        key = l1_pass.stream_key
        cached = self._pendings.get(key)
        if cached is None:
            if self._prefix is None:
                self._prefix = np.concatenate(
                    ([0], np.cumsum(self.run_counts, dtype=np.int64))
                )
            prefix = self._prefix
            fetch_runs = l1_pass.fetch_runs
            total = int(prefix[-1])
            if not fetch_runs.size:
                cached = ([], total)
            else:
                at_event = prefix[fetch_runs]
                pend = np.empty(fetch_runs.size, dtype=np.int64)
                pend[0] = at_event[0] + 1
                pend[1:] = at_event[1:] - at_event[:-1]
                cached = (pend.tolist(), total - int(at_event[-1]) - 1)
            self._pendings[key] = cached
        return cached


def _pour_stats(
    soc, l1_pass, llc_pass, num_accesses, flush, instructions_hint,
    recorder, strict,
) -> HierarchyStats:
    """Pour one config's end state into a real hierarchy and finish it.

    The OrderedDicts' insertion order is the serial recency order (the
    passes replay the serial op sequence), so the flush walk and strict
    accounting in ``_finish`` see exactly the serial end state.  Each
    config gets copies: flush mutates, and configs share pass objects.
    """
    hierarchy = CacheHierarchy(soc)
    for pass_, cache in ((l1_pass, hierarchy.l1), (llc_pass, hierarchy.llc)):
        dst_sets = cache._sets
        for s, od in enumerate(pass_.sets):
            if od:
                dst_sets[s].update(od)
        cache.stats = CacheStats(
            accesses=pass_.acc,
            hits=pass_.hits,
            misses=pass_.miss,
            writebacks=pass_.wb,
        )
    hierarchy.dram_line_reads = llc_pass.dram_reads
    hierarchy.dram_line_writes = llc_pass.dram_writes
    return hierarchy._finish(
        num_accesses,
        flush,
        instructions_hint,
        recorder,
        before=(0,) * len(CacheHierarchy._COUNTER_NAMES),
        strict=strict,
    )


def replay_batch(
    trace: MemoryTrace,
    socs,
    flush: bool = True,
    instructions_hint: float = 0.0,
    strict: bool | None = None,
) -> list[HierarchyStats]:
    """Replay ``trace`` under every SoC in ``socs`` in one shared pass.

    Returns one :class:`HierarchyStats` per config, in input order,
    each bit-identical to ``CacheHierarchy(soc).replay_fast(trace,
    flush=flush, instructions_hint=instructions_hint)`` — including the
    published ``sim.cache.*`` counters.
    """
    socs = list(socs)
    if not socs:
        return []
    strict = resolve_strict(strict)
    recorder = get_recorder()
    outcomes = _SharedOutcomes(trace)
    with recorder.span("sim.cache.replay_batch"):
        results = _hierarchy_results(
            outcomes, socs, flush, instructions_hint, recorder, strict
        )
        _publish_batch(recorder, len(socs), outcomes.num_runs, outcomes.shared)
        return results


def _hierarchy_results(
    outcomes, socs, flush, instructions_hint, recorder, strict
) -> list[HierarchyStats]:
    num_accesses = outcomes.num_accesses
    if strict:
        CacheHierarchy._check_line_runs(
            num_accesses, outcomes.run_lines, outcomes.run_counts
        )
    return [
        _pour_stats(
            soc,
            outcomes.l1(soc.l1),
            outcomes.llc(soc.l1, soc.l2),
            num_accesses,
            flush,
            instructions_hint,
            recorder,
            strict,
        )
        for soc in socs
    ]


def replay_timing_batch(
    trace: MemoryTrace,
    simulators,
    instructions_per_access: float = 2.0,
    strict: bool | None = None,
) -> list[TimingResult]:
    """Event-driven timing for N simulators over one shared trace pass.

    ``simulators`` is a sequence of :class:`TimingSimulator` (each
    carries its SoC geometry and :class:`TimingParameters`).  Returns
    one :class:`TimingResult` per simulator, in input order, each
    bit-identical to ``sim.replay_fast(trace, instructions_per_access)``
    — the per-event float expressions match the serial engine's exactly.
    """
    simulators = list(simulators)
    if not simulators:
        return []
    strict = resolve_strict(strict)
    recorder = get_recorder()
    outcomes = _SharedOutcomes(trace)
    with recorder.span("sim.timing.replay_batch"):
        results = _timing_results(
            outcomes, simulators, instructions_per_access, recorder, strict
        )
        _publish_batch(
            recorder, len(simulators), outcomes.num_runs, outcomes.shared
        )
        return results


def _timing_clock(
    pendings, final_pending, fetch_hits, params, issue_gap, strict
):
    """The serial timing recurrence over one config's latency events.

    Returns ``(clock, dram_misses, mshr_overflows, completion_disorder)``
    with the same float expressions in the same order as the serial
    engine — ``pendings`` supplies the integer issue-gap counts the
    serial loop would have accumulated between events.
    """
    llc_penalty = params.llc_hit_cycles * 0.25  # partially overlapped
    mshrs = params.mshrs
    dram_cycles = params.dram_cycles
    issue_interval = params.dram_issue_interval_cycles
    anchor = 0.0
    in_flight: deque[float] = deque()
    next_dram_slot = 0.0
    dram_misses = 0
    mshr_overflows = 0
    completion_disorder = 0
    for pending, llc_hit in zip(pendings, fetch_hits):
        if llc_hit:
            anchor = anchor + pending * issue_gap + llc_penalty
            continue
        dram_misses += 1
        clock = anchor + pending * issue_gap
        while in_flight and in_flight[0] <= clock:
            in_flight.popleft()
        if len(in_flight) >= mshrs:
            clock = max(clock, in_flight[0])
            while in_flight and in_flight[0] <= clock:
                in_flight.popleft()
        start = max(clock, next_dram_slot)
        if strict:
            if in_flight and start + dram_cycles < in_flight[-1]:
                completion_disorder += 1
            if len(in_flight) >= mshrs:
                mshr_overflows += 1
        in_flight.append(start + dram_cycles)
        next_dram_slot = start + issue_interval
        anchor = clock
    clock = anchor + final_pending * issue_gap
    if in_flight:
        clock = max(clock, in_flight[-1])
    return clock, dram_misses, mshr_overflows, completion_disorder


def _timing_results(
    outcomes, simulators, instructions_per_access, recorder, strict
) -> list[TimingResult]:
    num_accesses = outcomes.num_accesses
    clocks = {}
    results = []
    for sim in simulators:
        issue_gap = instructions_per_access / sim.soc.sustained_ipc
        l1_pass = outcomes.l1(sim.soc.l1)
        llc_pass = outcomes.llc(sim.soc.l1, sim.soc.l2)
        # Simulators whose cache outcomes and timing constants coincide
        # share one event loop; `_finish` still runs once per simulator.
        key = (
            l1_pass.stream_key,
            outcomes._key(sim.soc.l2),
            sim.params,
            issue_gap,
        )
        cached = clocks.get(key)
        if cached is None:
            pendings, final_pending = outcomes.pendings(sim.soc.l1)
            cached = clocks[key] = _timing_clock(
                pendings, final_pending, llc_pass.fetch_hits,
                sim.params, issue_gap, strict,
            )
        clock, dram_misses, mshr_overflows, completion_disorder = cached
        if strict:
            invariant(
                completion_disorder == 0,
                "timing.mshr_ordering",
                "%d DRAM completions issued out of order" % completion_disorder,
            )
        results.append(
            sim._finish(
                _TraceLength(num_accesses),
                clock,
                dram_misses,
                issue_gap,
                recorder,
                fast=True,
                strict=strict,
                mshr_overflows=mshr_overflows,
            )
        )
    return results


class _TraceLength:
    """Stand-in passing only ``len(trace)`` to ``TimingSimulator._finish``."""

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = n

    def __len__(self) -> int:
        return self.n


# ----------------------------------------------------------------------
# Sharded execution: the multicore decomposition of one sweep plan
# ----------------------------------------------------------------------

def plan_shards(items, jobs: int):
    """Partition sweep items into independent shard work lists.

    ``items`` is a sequence whose elements carry their SoC as the last
    tuple field (e.g. ``(index, soc)`` or ``(index, label, soc)``).
    Configs sharing an L1 geometry land in the same shard, so each
    shard's worker runs that L1 pass exactly once — the same sharing the
    single-process engine gets from :class:`_SharedOutcomes`.  When
    there are fewer distinct L1 geometries than worker slots, the
    largest groups split in half (each half redundantly recomputes one
    L1 pass, but the LLC and timing work — the bulk of a sweep —
    parallelizes).

    Deterministic: the same items and ``jobs`` always produce the same
    plan, in the same order, so fault plans can key on stable shard
    names and reruns schedule identically.
    """
    items = list(items)
    if not items:
        return []
    groups: dict = {}
    for item in items:
        groups.setdefault(_SharedOutcomes._key(item[-1].l1), []).append(item)
    shards = list(groups.values())
    want = min(max(int(jobs), 1), len(items))
    while len(shards) < want:
        shards.sort(key=len, reverse=True)  # stable: ties keep plan order
        biggest = shards[0]
        if len(biggest) < 2:
            break
        half = (len(biggest) + 1) // 2
        shards[0:1] = [biggest[:half], biggest[half:]]
    shards.sort(key=lambda shard: shard[0][0])
    return shards


class ShardEvaluator:
    """Per-process executor for shards of one sweep plan.

    A pool worker builds one of these over the memory-mapped artifact's
    trace and reuses it across every shard dispatched to the worker, so
    shards sharing an L1 geometry (a split group) share passes exactly
    like the single-process engine.  Results flow through the same
    ``_hierarchy_results`` / ``_timing_results`` pour-and-``_finish``
    path as :func:`sweep_batch`, so per-config stats, timings, and
    published ``sim.cache.*`` / ``sim.timing.*`` counters are
    bit-identical to it (and therefore to serial replay).

    What is deliberately *not* published here: the plan-level
    ``sim.replay_batch.*`` records.  Those belong to the dispatching
    parent (:func:`publish_sweep_plan`) exactly once per sweep, so a
    parallel run's merged registry equals the single-process batched
    registry instead of counting one batch per shard.
    """

    def __init__(
        self,
        trace: MemoryTrace,
        params: TimingParameters | None = None,
        instructions_per_access: float = 2.0,
    ):
        self.outcomes = _SharedOutcomes(trace)
        self.params = params or TimingParameters()
        self.instructions_per_access = instructions_per_access

    def evaluate(
        self,
        socs,
        flush: bool = True,
        instructions_hint: float = 0.0,
        strict: bool | None = None,
    ):
        """``(stats, timings)`` for this shard's configs, in input order."""
        socs = list(socs)
        if not socs:
            return [], []
        strict = resolve_strict(strict)
        recorder = get_recorder()
        simulators = [TimingSimulator(soc, self.params) for soc in socs]
        with recorder.span("sim.cache.replay_shard"):
            stats = _hierarchy_results(
                self.outcomes, socs, flush, instructions_hint, recorder, strict
            )
        with recorder.span("sim.timing.replay_shard"):
            timings = _timing_results(
                self.outcomes, simulators, self.instructions_per_access,
                recorder, strict,
            )
        return stats, timings


def publish_sweep_plan(recorder, n_configs: int, num_runs: int, shared: bool = True) -> None:
    """The two plan-level batch records a sharded sweep's parent owns.

    :func:`sweep_batch` publishes one ``sim.replay_batch.*`` record per
    engine (cache, then timing — the latter always a shared-trace hit).
    When the shards run in pool workers, the parent publishes these
    records exactly once over the whole plan, so the merged registry is
    identical to a single-process batched sweep of the same configs.
    """
    _publish_batch(recorder, n_configs, num_runs, shared)
    _publish_batch(recorder, n_configs, num_runs, True)


def sweep_batch(
    trace: MemoryTrace,
    socs,
    params: TimingParameters | None = None,
    instructions_per_access: float = 2.0,
    flush: bool = True,
    instructions_hint: float = 0.0,
    strict: bool | None = None,
):
    """Hierarchy stats *and* timing for every SoC from one set of passes.

    The sweep executor's fast path: because the timing engine's cache
    state evolves through the same access sequence as the hierarchy
    replay, both engines share the per-geometry passes.  Returns
    ``(stats, timings)``, each a list in ``socs`` order and bit-identical
    to the corresponding serial ``replay_fast`` call.  Publishes the
    same two batch counter records as calling :func:`replay_batch` then
    :func:`replay_timing_batch`.
    """
    socs = list(socs)
    if not socs:
        return [], []
    strict = resolve_strict(strict)
    recorder = get_recorder()
    outcomes = _SharedOutcomes(trace)
    shared_params = params or TimingParameters()
    simulators = [TimingSimulator(soc, shared_params) for soc in socs]
    with recorder.span("sim.cache.replay_batch"):
        stats = _hierarchy_results(
            outcomes, socs, flush, instructions_hint, recorder, strict
        )
        _publish_batch(recorder, len(socs), outcomes.num_runs, outcomes.shared)
    with recorder.span("sim.timing.replay_batch"):
        timings = _timing_results(
            outcomes, simulators, instructions_per_access, recorder, strict
        )
        # The timing engine reuses the runs materialized above.
        _publish_batch(recorder, len(socs), outcomes.num_runs, True)
    return stats, timings


def timing_batch_for_socs(
    trace: MemoryTrace,
    socs,
    params: TimingParameters | None = None,
    instructions_per_access: float = 2.0,
    strict: bool | None = None,
) -> list[TimingResult]:
    """:func:`replay_timing_batch` over SoCs sharing one parameter set."""
    shared = params or TimingParameters()
    return replay_timing_batch(
        trace,
        [TimingSimulator(soc, shared) for soc in socs],
        instructions_per_access=instructions_per_access,
        strict=strict,
    )


__all__ = [
    "ShardEvaluator",
    "plan_shards",
    "publish_sweep_plan",
    "replay_batch",
    "replay_timing_batch",
    "sweep_batch",
    "timing_batch_for_socs",
]
