"""DRAM bandwidth/latency models.

Two memory paths exist in the evaluated system (Table 1):

* the **off-chip channel** between the SoC and memory (32 GB/s) -- used by
  the CPU in both the LPDDR3 baseline and the 3D-stacked configuration
  (the stacked part's external channel has the same bandwidth); and
* the **internal path** between the logic layer and the DRAM layers of the
  3D-stacked part (256 GB/s across 16 vaults) -- used by PIM logic.

The models are deliberately analytic: a request stream is characterized by
its total bytes and its line-granularity request count, and the model
returns the service time under a bandwidth/latency roofline.  FR-FCFS
scheduling and row-buffer effects are folded into the sustained-bandwidth
efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import StackedMemoryConfig, CACHE_LINE_BYTES
from repro.obs.recorder import get_recorder


@dataclass(frozen=True)
class DramTimings:
    """Latency/efficiency parameters for one memory path."""

    peak_bandwidth: float  # bytes/s
    access_latency_s: float  # average random-access latency
    bandwidth_efficiency: float = 0.8  # sustained / peak (FR-FCFS, refresh)

    @property
    def sustained_bandwidth(self) -> float:
        return self.peak_bandwidth * self.bandwidth_efficiency

    def service_time(self, total_bytes: float, requests: float, mlp: float) -> float:
        """Time to service a request stream.

        Roofline of the bandwidth-bound time and the latency-bound time;
        ``mlp`` is the number of overlapping in-flight requests the
        requester sustains (memory-level parallelism).
        """
        if total_bytes <= 0 and requests <= 0:
            return 0.0
        bw_time = total_bytes / self.sustained_bandwidth
        lat_time = requests * self.access_latency_s / max(mlp, 1.0)
        return max(bw_time, lat_time)


class OffChipDram:
    """The CPU-visible memory path (LPDDR3-class channel, 32 GB/s)."""

    def __init__(self, memory: StackedMemoryConfig | None = None):
        mem = memory or StackedMemoryConfig()
        self.timings = DramTimings(
            peak_bandwidth=mem.offchip_bandwidth,
            access_latency_s=100e-9,  # row miss + channel + controller
            bandwidth_efficiency=0.8,
        )

    def service_time(self, total_bytes: float, mlp: float = 8.0) -> float:
        requests = total_bytes / CACHE_LINE_BYTES
        time_s = self.timings.service_time(total_bytes, requests, mlp)
        recorder = get_recorder()
        if recorder.enabled:
            counters = recorder.counters
            counters.add("sim.dram.offchip.streams", 1)
            counters.add("sim.dram.offchip.bytes", total_bytes)
            counters.add("sim.dram.offchip.service_time_s", time_s)
        return time_s


class StackedDramInternal:
    """The logic-layer path inside 3D-stacked memory (256 GB/s)."""

    def __init__(self, memory: StackedMemoryConfig | None = None):
        mem = memory or StackedMemoryConfig()
        self.memory = mem
        self.timings = DramTimings(
            peak_bandwidth=mem.internal_bandwidth,
            access_latency_s=40e-9,  # no off-chip hop, shorter queues
            bandwidth_efficiency=0.8,
        )

    @property
    def per_vault_bandwidth(self) -> float:
        return self.timings.sustained_bandwidth / self.memory.num_vaults

    def service_time(
        self, total_bytes: float, mlp: float = 4.0, vaults_used: int = 1
    ) -> float:
        """Service time when PIM logic in ``vaults_used`` vaults streams data.

        Each vault's logic sees its slice of the internal bandwidth; the
        paper places one PIM core or accelerator per vault and partitions
        work across them only when the data is itself vault-partitioned.
        """
        vaults = min(max(vaults_used, 1), self.memory.num_vaults)
        bandwidth = self.per_vault_bandwidth * vaults
        requests = total_bytes / CACHE_LINE_BYTES
        if total_bytes <= 0:
            return 0.0
        bw_time = total_bytes / bandwidth
        lat_time = requests * self.timings.access_latency_s / max(mlp * vaults, 1.0)
        time_s = max(bw_time, lat_time)
        recorder = get_recorder()
        if recorder.enabled:
            counters = recorder.counters
            counters.add("sim.dram.internal.streams", 1)
            counters.add("sim.dram.internal.bytes", total_bytes)
            counters.add("sim.dram.internal.service_time_s", time_s)
        return time_s
