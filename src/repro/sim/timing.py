"""Cycle-approximate trace timing (validation for the roofline models).

The analytic CPU model (:mod:`repro.sim.cpu`) is a roofline: runtime =
max(compute time, memory time).  This module provides an independent,
event-driven check: a recorded memory trace is replayed against the
cache hierarchy with a limited window of in-flight misses (MSHRs), each
access charged its level's latency, and non-memory instructions issuing
between accesses at the core's sustained IPC.  The integration tests
replay real kernel traces through both models and require agreement
within a small factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SocConfig, CACHE_LINE_BYTES
from repro.sim.cache import CacheHierarchy
from repro.sim.trace import MemoryTrace


@dataclass(frozen=True)
class TimingParameters:
    """Latency/parallelism constants for the event-driven replay."""

    l1_hit_cycles: int = 2
    llc_hit_cycles: int = 20
    dram_cycles: int = 200  # 100 ns at 2 GHz
    mshrs: int = 6  # in-flight DRAM misses the core sustains
    #: Minimum issue interval between DRAM misses, enforcing the off-chip
    #: channel bandwidth (64 B line at 25.6 GB/s sustained, 2 GHz clock).
    dram_issue_interval_cycles: float = 5.0


@dataclass
class TimingResult:
    """Outcome of an event-driven replay."""

    cycles: float
    accesses: int
    dram_misses: int
    compute_cycles: float

    @property
    def stall_fraction(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return max(0.0, 1.0 - self.compute_cycles / self.cycles)

    def time_s(self, frequency_hz: float = 2.0e9) -> float:
        return self.cycles / frequency_hz


class TimingSimulator:
    """Replays a trace with bounded memory-level parallelism."""

    def __init__(
        self,
        soc: SocConfig | None = None,
        params: TimingParameters | None = None,
    ):
        self.soc = soc or SocConfig()
        self.params = params or TimingParameters()

    def replay(
        self, trace: MemoryTrace, instructions_per_access: float = 2.0
    ) -> TimingResult:
        """Replay ``trace``; ``instructions_per_access`` non-memory
        instructions are issued (at the sustained IPC) between accesses.
        """
        p = self.params
        hierarchy = CacheHierarchy(self.soc)
        issue_gap = instructions_per_access / self.soc.sustained_ipc
        clock = 0.0
        in_flight: list[float] = []  # completion times of DRAM misses
        next_dram_slot = 0.0
        dram_misses = 0
        addresses = trace.addresses
        writes = trace.is_write
        l1 = hierarchy.l1
        llc = hierarchy.llc
        for i in range(len(trace)):
            clock += issue_gap
            line = int(addresses[i]) // CACHE_LINE_BYTES
            hit, victim = l1.access(line, bool(writes[i]))
            if victim is not None and victim[1]:
                hierarchy._llc_install_writeback(victim[0])
            if hit:
                clock += 0.0  # L1 hits pipeline under the issue gap
                continue
            llc_hit, llc_victim = llc.access(line, False)
            if llc_victim is not None and llc_victim[1]:
                hierarchy.dram_line_writes += 1
            if llc_hit:
                clock += p.llc_hit_cycles * 0.25  # partially overlapped
                continue
            # DRAM miss: wait for an MSHR, respect channel bandwidth.
            dram_misses += 1
            in_flight = [t for t in in_flight if t > clock]
            if len(in_flight) >= p.mshrs:
                clock = max(clock, min(in_flight))
                in_flight = [t for t in in_flight if t > clock]
            start = max(clock, next_dram_slot)
            completion = start + p.dram_cycles
            next_dram_slot = start + p.dram_issue_interval_cycles
            in_flight.append(completion)
        if in_flight:
            clock = max(clock, max(in_flight))
        compute_cycles = len(trace) * issue_gap
        return TimingResult(
            cycles=clock,
            accesses=len(trace),
            dram_misses=dram_misses,
            compute_cycles=compute_cycles,
        )
