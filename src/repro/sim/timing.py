"""Cycle-approximate trace timing (validation for the roofline models).

The analytic CPU model (:mod:`repro.sim.cpu`) is a roofline: runtime =
max(compute time, memory time).  This module provides an independent,
event-driven check: a recorded memory trace is replayed against the
cache hierarchy with a limited window of in-flight misses (MSHRs), each
access charged its level's latency, and non-memory instructions issuing
between accesses at the core's sustained IPC.  The integration tests
replay real kernel traces through both models and require agreement
within a small factor.

Two replay engines are provided.  :meth:`TimingSimulator.replay` walks
the trace one access at a time (the scalar oracle);
:meth:`TimingSimulator.replay_fast` consumes :meth:`MemoryTrace.
line_runs` so a run of consecutive same-line accesses costs one Python
iteration.  Both engines represent the clock as ``anchor + pending *
issue_gap`` — ``pending`` counts issue gaps since the last latency
event — and materialize it with the *same float expressions at the same
events*, so the two produce bit-identical :class:`TimingResult` values
(enforced by ``tests/perf/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.config import SocConfig, CACHE_LINE_BYTES
from repro.obs.recorder import get_recorder
from repro.sim.cache import CacheHierarchy
from repro.sim.trace import MemoryTrace
from repro.validate.fields import require_non_negative, require_positive_int
from repro.validate.strict import invariant, resolve_strict


@dataclass(frozen=True)
class TimingParameters:
    """Latency/parallelism constants for the event-driven replay."""

    l1_hit_cycles: int = 2
    llc_hit_cycles: int = 20
    dram_cycles: int = 200  # 100 ns at 2 GHz
    mshrs: int = 6  # in-flight DRAM misses the core sustains
    #: Minimum issue interval between DRAM misses, enforcing the off-chip
    #: channel bandwidth (64 B line at 25.6 GB/s sustained, 2 GHz clock).
    dram_issue_interval_cycles: float = 5.0

    def __post_init__(self) -> None:
        require_positive_int(self, "l1_hit_cycles", self.l1_hit_cycles)
        require_positive_int(self, "llc_hit_cycles", self.llc_hit_cycles)
        require_positive_int(self, "dram_cycles", self.dram_cycles)
        require_positive_int(self, "mshrs", self.mshrs)
        # 0 is legal (an unthrottled channel, used by bandwidth ablations).
        require_non_negative(
            self, "dram_issue_interval_cycles", self.dram_issue_interval_cycles
        )


@dataclass
class TimingResult:
    """Outcome of an event-driven replay."""

    cycles: float
    accesses: int
    dram_misses: int
    compute_cycles: float

    @property
    def stall_fraction(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return max(0.0, 1.0 - self.compute_cycles / self.cycles)

    def time_s(self, frequency_hz: float = 2.0e9) -> float:
        return self.cycles / frequency_hz


class TimingSimulator:
    """Replays a trace with bounded memory-level parallelism."""

    def __init__(
        self,
        soc: SocConfig | None = None,
        params: TimingParameters | None = None,
    ):
        self.soc = soc or SocConfig()
        self.params = params or TimingParameters()

    def replay(
        self,
        trace: MemoryTrace,
        instructions_per_access: float = 2.0,
        strict: bool | None = None,
    ) -> TimingResult:
        """Replay ``trace``; ``instructions_per_access`` non-memory
        instructions are issued (at the sustained IPC) between accesses.

        This is the per-access scalar oracle; :meth:`replay_fast` returns
        a bit-identical result and should be preferred for large traces.
        ``strict`` arms the MSHR-occupancy and clock invariants (``None``
        defers to the global strict mode).
        """
        p = self.params
        strict = resolve_strict(strict)
        mshr_overflows = 0
        recorder = get_recorder()
        with recorder.span("sim.timing.replay"):
            hierarchy = CacheHierarchy(self.soc)
            issue_gap = instructions_per_access / self.soc.sustained_ipc
            llc_penalty = p.llc_hit_cycles * 0.25  # partially overlapped
            anchor = 0.0  # clock at the last latency event
            pending = 0  # issue gaps accumulated since then
            in_flight: list[float] = []  # completion times of DRAM misses
            next_dram_slot = 0.0
            dram_misses = 0
            addresses = trace.addresses
            writes = trace.is_write
            l1 = hierarchy.l1
            llc = hierarchy.llc
            for i in range(len(trace)):
                pending += 1
                line = int(addresses[i]) // CACHE_LINE_BYTES
                hit, victim = l1.access(line, bool(writes[i]))
                if victim is not None and victim[1]:
                    hierarchy._llc_install_writeback(victim[0])
                if hit:
                    continue  # L1 hits pipeline under the issue gap
                llc_hit, llc_victim = llc.access(line, False)
                if llc_victim is not None and llc_victim[1]:
                    hierarchy.dram_line_writes += 1
                if llc_hit:
                    anchor = anchor + pending * issue_gap + llc_penalty
                    pending = 0
                    continue
                # DRAM miss: wait for an MSHR, respect channel bandwidth.
                dram_misses += 1
                clock = anchor + pending * issue_gap
                pending = 0
                in_flight = [t for t in in_flight if t > clock]
                if len(in_flight) >= p.mshrs:
                    clock = max(clock, min(in_flight))
                    in_flight = [t for t in in_flight if t > clock]
                start = max(clock, next_dram_slot)
                in_flight.append(start + p.dram_cycles)
                next_dram_slot = start + p.dram_issue_interval_cycles
                anchor = clock
                if strict and len(in_flight) > p.mshrs:
                    mshr_overflows += 1
            clock = anchor + pending * issue_gap
            if in_flight:
                clock = max(clock, max(in_flight))
            return self._finish(
                trace, clock, dram_misses, issue_gap, recorder,
                fast=False, strict=strict, mshr_overflows=mshr_overflows,
            )

    def replay_fast(
        self,
        trace: MemoryTrace,
        instructions_per_access: float = 2.0,
        strict: bool | None = None,
    ) -> TimingResult:
        """Line-run replay; bit-identical to :meth:`replay`.

        Equivalence argument, piece by piece:

        * **Cache state.**  :meth:`MemoryTrace.line_runs` folds each run of
          consecutive same-line accesses into one (line, count, any_write)
          record.  Accesses after a run's first are guaranteed L1 hits on
          an already-MRU line (the cache replay_fast argument), so the
          run's single ``l1.access`` with the OR-folded write flag leaves
          identical hierarchy state.
        * **Clock.**  An L1 hit's only timing effect is one issue gap, so
          a run contributes ``pending += 1`` before its first access and
          ``pending += count - 1`` after — the same integer ``pending`` at
          every materialization point, and materialization uses the same
          float expressions (``anchor + pending * issue_gap`` etc.) as the
          oracle, hence bit-identical cycles.
        * **MSHRs.**  DRAM completion times are strictly increasing (each
          start is at least the previous start plus the issue interval),
          so the in-flight list is always sorted; the oracle's O(mshrs)
          list filtering equals popping stale heads off a deque, which is
          what makes this path fast at large MSHR counts.
        """
        p = self.params
        strict = resolve_strict(strict)
        mshr_overflows = 0
        completion_disorder = 0
        recorder = get_recorder()
        with recorder.span("sim.timing.replay_fast"):
            hierarchy = CacheHierarchy(self.soc)
            issue_gap = instructions_per_access / self.soc.sustained_ipc
            llc_penalty = p.llc_hit_cycles * 0.25  # partially overlapped
            anchor = 0.0
            pending = 0
            in_flight: deque[float] = deque()
            next_dram_slot = 0.0
            dram_misses = 0
            l1 = hierarchy.l1
            llc = hierarchy.llc
            run_lines, run_counts, run_writes = trace.line_runs()
            for line, count, is_write in zip(
                run_lines.tolist(), run_counts.tolist(), run_writes.tolist()
            ):
                pending += 1
                hit, victim = l1.access(line, is_write)
                if victim is not None and victim[1]:
                    hierarchy._llc_install_writeback(victim[0])
                if hit:
                    pending += count - 1
                    continue
                llc_hit, llc_victim = llc.access(line, False)
                if llc_victim is not None and llc_victim[1]:
                    hierarchy.dram_line_writes += 1
                if llc_hit:
                    anchor = anchor + pending * issue_gap + llc_penalty
                    pending = count - 1
                    continue
                dram_misses += 1
                clock = anchor + pending * issue_gap
                while in_flight and in_flight[0] <= clock:
                    in_flight.popleft()
                if len(in_flight) >= p.mshrs:
                    clock = max(clock, in_flight[0])
                    while in_flight and in_flight[0] <= clock:
                        in_flight.popleft()
                start = max(clock, next_dram_slot)
                if strict:
                    # The deque shortcut (popping stale heads, reading
                    # in_flight[-1] as the max) relies on completion
                    # times being non-decreasing.
                    if in_flight and start + p.dram_cycles < in_flight[-1]:
                        completion_disorder += 1
                    if len(in_flight) >= p.mshrs:
                        mshr_overflows += 1
                in_flight.append(start + p.dram_cycles)
                next_dram_slot = start + p.dram_issue_interval_cycles
                anchor = clock
                pending = count - 1
            clock = anchor + pending * issue_gap
            if in_flight:
                clock = max(clock, in_flight[-1])
            if strict:
                invariant(
                    completion_disorder == 0,
                    "timing.mshr_ordering",
                    "%d DRAM completions issued out of order" % completion_disorder,
                )
            return self._finish(
                trace, clock, dram_misses, issue_gap, recorder,
                fast=True, strict=strict, mshr_overflows=mshr_overflows,
            )

    @classmethod
    def replay_batch(
        cls,
        trace: MemoryTrace,
        simulators,
        instructions_per_access: float = 2.0,
        strict: bool | None = None,
    ) -> list[TimingResult]:
        """Replay one trace through N simulators in a single shared pass.

        Returns one :class:`TimingResult` per simulator in input order,
        each bit-identical to ``sim.replay_fast(trace)``; see
        :func:`repro.sim.batch.replay_timing_batch`.
        """
        from repro.sim.batch import replay_timing_batch

        return replay_timing_batch(
            trace,
            simulators,
            instructions_per_access=instructions_per_access,
            strict=strict,
        )

    def _finish(
        self,
        trace: MemoryTrace,
        clock: float,
        dram_misses: int,
        issue_gap: float,
        recorder,
        fast: bool,
        strict: bool = False,
        mshr_overflows: int = 0,
    ) -> TimingResult:
        counters = recorder.counters
        counters.add(
            "sim.timing.fast_path" if fast else "sim.timing.scalar_path"
        )
        counters.add("sim.timing.trace_accesses", len(trace))
        counters.add("sim.timing.dram_misses", dram_misses)
        compute_cycles = len(trace) * issue_gap
        if strict:
            invariant(
                mshr_overflows == 0,
                "timing.mshr_occupancy",
                "%d DRAM misses exceeded the %d-MSHR window"
                % (mshr_overflows, self.params.mshrs),
            )
            invariant(
                0 <= dram_misses <= len(trace),
                "timing.dram_misses",
                "%d DRAM misses for a %d-access trace"
                % (dram_misses, len(trace)),
            )
            # The clock can never run ahead of pure compute issue: every
            # access contributes at least one issue gap (tolerance covers
            # float-summation order differences between the two engines).
            invariant(
                clock >= compute_cycles * (1.0 - 1e-9) - 1e-9,
                "timing.clock",
                "final clock %.17g below compute floor %.17g"
                % (clock, compute_cycles),
            )
        return TimingResult(
            cycles=clock,
            accesses=len(trace),
            dram_misses=dram_misses,
            compute_cycles=compute_cycles,
        )
