"""Kernel execution profiles.

A ``KernelProfile`` captures everything the timing and energy models need
to know about one kernel execution: dynamic instruction counts, data-
processing operation counts, and memory-hierarchy traffic.  The workload
packages construct profiles from *exact* analytic counts (every kernel
knows precisely how many bytes it touches and how many operations it
performs); the trace-driven cache simulator in :mod:`repro.sim.cache` is
used by the test suite to validate the locality classes assumed here.

This plays the role of the paper's hardware performance counters
(Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import CACHE_LINE_BYTES
from repro.validate.errors import ConfigError
from repro.validate.fields import require_fraction, require_non_negative


@dataclass(frozen=True)
class KernelProfile:
    """Dynamic execution statistics for one kernel invocation.

    Attributes:
        name: Kernel identifier (e.g. ``"texture_tiling"``).
        instructions: Dynamic instruction count on the CPU (including
            loads/stores and address arithmetic).
        mem_instructions: Dynamic load/store count (each is one L1 access).
        alu_ops: Data-processing operations (the work a fixed-function
            accelerator must perform).
        simd_fraction: Fraction of ``alu_ops`` that vectorizes onto a
            SIMD unit (0..1).
        l1_misses: L1 data-cache misses (each is one LLC access).
        llc_misses: Last-level-cache misses (each is one DRAM line fetch).
        dram_bytes: Total off-chip traffic in bytes, reads plus writebacks.
        working_set_bytes: Size of the kernel's live data.
        pim_bytes: Bytes the kernel moves when executed *in memory*.
            Defaults to ``dram_bytes`` (PIM still reads/writes the data,
            just without crossing the off-chip channel); kernels where PIM
            additionally avoids redundant transfers (e.g. decompression
            output that the CPU never reads) override this.
    """

    name: str
    instructions: float
    mem_instructions: float
    alu_ops: float
    simd_fraction: float = 0.0
    l1_misses: float = 0.0
    llc_misses: float = 0.0
    dram_bytes: float = 0.0
    working_set_bytes: float = 0.0
    pim_bytes: float = -1.0
    notes: str = ""

    #: Numeric fields that must be finite and >= 0 (``pim_bytes`` is
    #: excluded: any negative value is the "default to dram_bytes" flag).
    _NON_NEGATIVE_FIELDS = (
        "instructions",
        "mem_instructions",
        "alu_ops",
        "l1_misses",
        "llc_misses",
        "dram_bytes",
        "working_set_bytes",
    )

    def __post_init__(self):
        for name in self._NON_NEGATIVE_FIELDS:
            require_non_negative(self, name, getattr(self, name))
        require_fraction(self, "simd_fraction", self.simd_fraction)
        if self.mem_instructions > self.instructions:
            raise ConfigError(
                type(self).__name__,
                "mem_instructions",
                self.mem_instructions,
                "cannot exceed instructions (%r)" % self.instructions,
            )
        pim_bytes = self.pim_bytes
        if (
            isinstance(pim_bytes, bool)
            or not isinstance(pim_bytes, (int, float))
            or pim_bytes != pim_bytes  # NaN is not a valid sentinel
        ):
            require_non_negative(self, "pim_bytes", pim_bytes)
        if pim_bytes < 0:
            object.__setattr__(self, "pim_bytes", float(self.dram_bytes))
        else:
            require_non_negative(self, "pim_bytes", pim_bytes)  # rejects +inf

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction (the paper's memory-intensity
        criterion: a PIM candidate needs MPKI > 10, Section 3.2)."""
        if self.instructions <= 0:
            return 0.0
        return self.llc_misses / (self.instructions / 1000.0)

    @property
    def bytes_per_instruction(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return self.dram_bytes / self.instructions

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def scaled(self, factor: float, name: str | None = None) -> "KernelProfile":
        """Profile for ``factor`` back-to-back invocations of this kernel."""
        return replace(
            self,
            name=name or self.name,
            instructions=self.instructions * factor,
            mem_instructions=self.mem_instructions * factor,
            alu_ops=self.alu_ops * factor,
            l1_misses=self.l1_misses * factor,
            llc_misses=self.llc_misses * factor,
            dram_bytes=self.dram_bytes * factor,
            pim_bytes=self.pim_bytes * factor,
        )

    def merged(self, other: "KernelProfile", name: str | None = None) -> "KernelProfile":
        """Profile for this kernel followed by ``other``."""
        return KernelProfile(
            name=name or "%s+%s" % (self.name, other.name),
            instructions=self.instructions + other.instructions,
            mem_instructions=self.mem_instructions + other.mem_instructions,
            alu_ops=self.alu_ops + other.alu_ops,
            simd_fraction=_weighted(
                self.simd_fraction, self.alu_ops, other.simd_fraction, other.alu_ops
            ),
            l1_misses=self.l1_misses + other.l1_misses,
            llc_misses=self.llc_misses + other.llc_misses,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            working_set_bytes=max(self.working_set_bytes, other.working_set_bytes),
            pim_bytes=self.pim_bytes + other.pim_bytes,
        )

    # ------------------------------------------------------------------
    # Analytic constructors for the common locality classes
    # ------------------------------------------------------------------
    @staticmethod
    def streaming(
        name: str,
        bytes_read: float,
        bytes_written: float,
        ops_per_byte: float,
        simd_fraction: float = 0.75,
        instruction_overhead: float = 0.5,
        access_bytes: float = 8.0,
        notes: str = "",
    ) -> "KernelProfile":
        """A kernel that streams over its input/output exactly once.

        Streaming kernels (memcopy-like: texture tiling, blitting, packing)
        touch every cache line once, so every line is a compulsory miss at
        every level: ``llc_misses = lines touched`` and ``dram_bytes =
        bytes_read + bytes_written`` (written lines are fetched for
        ownership and written back; we charge each written byte once, as a
        writeback, matching the paper's traffic accounting).

        Args:
            ops_per_byte: ALU operations per byte processed.
            instruction_overhead: extra non-memory, non-ALU instructions
                (address generation, branches) per byte.
            access_bytes: average load/store width (8 = 64-bit accesses).
        """
        total_bytes = bytes_read + bytes_written
        mem_instructions = total_bytes / access_bytes
        alu_ops = total_bytes * ops_per_byte
        instructions = mem_instructions + alu_ops + total_bytes * instruction_overhead
        lines = total_bytes / CACHE_LINE_BYTES
        return KernelProfile(
            name=name,
            instructions=instructions,
            mem_instructions=mem_instructions,
            alu_ops=alu_ops,
            simd_fraction=simd_fraction,
            l1_misses=lines,
            llc_misses=lines,
            dram_bytes=total_bytes,
            working_set_bytes=total_bytes,
            notes=notes or "streaming",
        )

    @staticmethod
    def cache_resident(
        name: str,
        bytes_touched: float,
        reuse_factor: float,
        ops_per_byte: float,
        simd_fraction: float = 0.5,
        instruction_overhead: float = 0.5,
        access_bytes: float = 8.0,
        notes: str = "",
    ) -> "KernelProfile":
        """A kernel whose working set fits in the LLC.

        Data is fetched from DRAM once (compulsory misses only) and then
        reused ``reuse_factor`` times from the caches (e.g. the entropy
        decoder or inverse transform in VP9, Section 6.2.1).
        """
        lines = bytes_touched / CACHE_LINE_BYTES
        accessed_bytes = bytes_touched * max(reuse_factor, 1.0)
        mem_instructions = accessed_bytes / access_bytes
        alu_ops = accessed_bytes * ops_per_byte
        instructions = (
            mem_instructions + alu_ops + accessed_bytes * instruction_overhead
        )
        return KernelProfile(
            name=name,
            instructions=instructions,
            mem_instructions=mem_instructions,
            alu_ops=alu_ops,
            simd_fraction=simd_fraction,
            l1_misses=lines * max(reuse_factor / 4.0, 1.0),
            llc_misses=lines,
            dram_bytes=bytes_touched,
            working_set_bytes=bytes_touched,
            notes=notes or "cache-resident",
        )

    @staticmethod
    def scattered(
        name: str,
        touches: float,
        bytes_per_touch: float,
        ops_per_byte: float,
        simd_fraction: float = 0.5,
        locality_fraction: float = 0.0,
        instruction_overhead: float = 0.5,
        access_bytes: float = 8.0,
        notes: str = "",
    ) -> "KernelProfile":
        """A kernel making scattered accesses with poor cache locality.

        Each of the ``touches`` accesses lands on a region of
        ``bytes_per_touch`` bytes at an effectively random location in a
        working set larger than the LLC (e.g. VP9 sub-pixel interpolation
        fetching reference-frame blocks, Section 6.2.2).
        ``locality_fraction`` is the fraction of touches that hit in the
        cache anyway (spatial overlap between neighbouring blocks).
        """
        total_bytes = touches * bytes_per_touch
        mem_instructions = total_bytes / access_bytes
        alu_ops = total_bytes * ops_per_byte
        instructions = mem_instructions + alu_ops + total_bytes * instruction_overhead
        miss_bytes = total_bytes * (1.0 - locality_fraction)
        # Scattered lines are partially used: a touch of N bytes spanning
        # lines still fetches whole lines.
        lines = miss_bytes / CACHE_LINE_BYTES
        line_fetch_overhead = touches * (1.0 - locality_fraction)
        llc_misses = lines + line_fetch_overhead
        return KernelProfile(
            name=name,
            instructions=instructions,
            mem_instructions=mem_instructions,
            alu_ops=alu_ops,
            simd_fraction=simd_fraction,
            l1_misses=llc_misses * 1.1,
            llc_misses=llc_misses,
            dram_bytes=llc_misses * CACHE_LINE_BYTES,
            working_set_bytes=total_bytes,
            notes=notes or "scattered",
        )


def _weighted(a: float, wa: float, b: float, wb: float) -> float:
    if wa + wb <= 0:
        return 0.0
    return (a * wa + b * wb) / (wa + wb)
