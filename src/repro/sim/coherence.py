"""CPU <-> PIM coherence cost model (paper Section 8.2).

The paper's PIM targets are fine-grained functions interleaved with CPU
work, so offloading them requires coherence between the processor caches
and the PIM logic.  The paper employs a PIM-side directory in the logic
layer, with the CPU-side directory as the system's main coherence point.

We model the costs of one offload round trip:

* **launch latency** -- the CPU writes the kernel descriptor and raises the
  PIM-start signal (a store + one off-chip round trip);
* **shared-line flush** -- dirty CPU-cache lines covering the kernel's
  input must be written back before PIM may read them (bounded by the LLC
  capacity and by the input size);
* **directory traffic** -- one directory lookup per line the PIM logic
  touches, at SRAM-lookup cost in the logic layer.

These overheads are charged by the offload engine on top of the PIM
execution itself; with the paper's kernel granularities they are small
(single-digit percent), which is the paper's argument that simple
fine-grained coherence suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, default_system, CACHE_LINE_BYTES
from repro.energy.components import EnergyParameters, default_energy_parameters
from repro.obs.recorder import get_recorder


@dataclass(frozen=True)
class OffloadOverhead:
    """Additional time and energy charged per offloaded kernel execution."""

    time_s: float
    energy_j: float
    flushed_lines: float
    directory_lookups: float


class CoherenceModel:
    """Fine-grained PIM coherence cost model."""

    #: One off-chip round trip to launch the PIM kernel and one to signal
    #: completion (descriptor write + doorbell + completion interrupt).
    LAUNCH_LATENCY_S = 2 * 100e-9
    #: Directory SRAM lookup energy per line (logic-layer SRAM).
    DIRECTORY_LOOKUP_ENERGY_J = 2e-12
    #: Time per dirty-line writeback during the pre-offload flush; the
    #: flush streams at channel bandwidth, so this is per-line channel time.
    FLUSH_LINE_TIME_S = CACHE_LINE_BYTES / (32 * 1024**3)

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
        dirty_fraction: float = 0.05,
    ):
        """Args:
        dirty_fraction: fraction of the kernel's cached input lines that
            are dirty in CPU caches at offload time and must be flushed
            *because of the offload* (dirty lines that would be written
            back anyway in the CPU-only execution are not charged here).
        """
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in [0, 1]")
        self.system = system or default_system()
        self.params = energy_params or default_energy_parameters()
        self.dirty_fraction = dirty_fraction

    def offload_overhead(
        self, input_bytes: float, pim_lines_touched: float, invocations: int = 1
    ) -> OffloadOverhead:
        """Cost of ``invocations`` offloads of a kernel over ``input_bytes``.

        ``input_bytes`` is the *total* input across all invocations; each
        invocation only needs its own slice of the input flushed, bounded
        by the LLC capacity (at most the cached portion can be dirty).
        """
        if invocations < 1:
            raise ValueError("invocations must be >= 1")
        llc_bytes = self.system.soc.l2.size_bytes
        per_invocation_bytes = min(input_bytes / invocations, llc_bytes)
        flushed_per_invocation = (
            per_invocation_bytes / CACHE_LINE_BYTES
        ) * self.dirty_fraction
        flush_time = flushed_per_invocation * self.FLUSH_LINE_TIME_S
        flush_energy = (
            flushed_per_invocation
            * CACHE_LINE_BYTES
            * self.params.offchip_energy_per_byte
        )
        directory_lookups = max(pim_lines_touched, 0.0)
        directory_energy = directory_lookups * self.DIRECTORY_LOOKUP_ENERGY_J
        time_s = invocations * (self.LAUNCH_LATENCY_S + flush_time)
        energy_j = invocations * flush_energy + directory_energy
        overhead = OffloadOverhead(
            time_s=time_s,
            energy_j=energy_j,
            flushed_lines=flushed_per_invocation * invocations,
            directory_lookups=directory_lookups,
        )
        recorder = get_recorder()
        if recorder.enabled:
            counters = recorder.counters
            counters.add("sim.coherence.offloads", invocations)
            counters.add("sim.coherence.flushed_lines", overhead.flushed_lines)
            counters.add("sim.coherence.directory_lookups", directory_lookups)
            counters.add("sim.coherence.overhead_time_s", time_s)
            counters.add("sim.coherence.overhead_energy_j", energy_j)
        return overhead
