"""Memory-mapped columnar trace artifacts: trace once, sweep many.

The paper's figures are design-space sweeps — one workload trace
evaluated under many cache configurations — yet re-running the
instrumented kernel per sweep point makes sweep cost scale as
``configs x (kernel + trace + replay)``.  A :class:`TraceArtifact`
materializes a workload's trace *once* as an on-disk columnar file
holding both the per-access columns (``addresses``, ``is_write``) and
the precomputed :meth:`repro.sim.trace.MemoryTrace.line_runs` columns
(``run_lines``, ``run_counts``, ``run_writes``), so every later sweep
point pays only the replay.

File layout (single file, everything 64-byte aligned so columns can be
``np.memmap``-ed directly)::

    magic (8 B) | header length (8 B LE) | JSON header | pad | columns

The header pins a schema tag, the workload name, the recording
``line_bytes``, a per-column SHA-256, the package code-version hash,
and a ``content_hash`` over the access stream itself.  Integrity
follows the :class:`repro.core.resilience.SweepCheckpoint` /
:class:`repro.core.memo.MemoCache` contracts:

* writes are atomic (tmp file + fsync + ``os.replace``), so a crashed
  writer can never publish a partial artifact under the final name;
* loads verify structure and checksums; a torn, truncated, or
  bit-flipped file raises :class:`ArtifactError` rather than returning
  corrupt data;
* :class:`TraceStore` quarantines bad artifacts to ``*.corrupt``
  (counted as ``sim.artifact.corrupt``) and rebuilds, so a damaged
  cache entry costs one rebuild — never a wrong result.

The ``content_hash`` is the sweep-facing identity of the trace: memo
keys and checkpoint namespaces embed it (see
:mod:`repro.analysis.cachesweep`), so a cached sweep row can never be
reused against a different trace.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import CACHE_LINE_BYTES
from repro.obs.recorder import get_recorder
from repro.sim.trace import MemoryTrace

#: File magic: 8 bytes, versioned with the schema below.
_MAGIC = b"RPROTRC1"
SCHEMA = "repro-trace-artifact/v1"
#: Column alignment; also the pad unit between header and data.
_ALIGN = 64

#: Column order and dtypes are fixed by the schema.
_COLUMNS = (
    ("addresses", np.uint64),
    ("is_write", np.bool_),
    ("run_lines", np.uint64),
    ("run_counts", np.int64),
    ("run_writes", np.bool_),
)


class ArtifactError(ValueError):
    """A trace artifact failed structural or checksum validation."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _content_hash(
    addresses: np.ndarray, is_write: np.ndarray, line_bytes: int
) -> str:
    """Identity of the access stream (independent of workload/code)."""
    digest = hashlib.sha256()
    digest.update(SCHEMA.encode())
    digest.update(b"\0%d\0" % line_bytes)
    digest.update(np.ascontiguousarray(addresses).tobytes())
    digest.update(b"\0")
    digest.update(np.ascontiguousarray(is_write).tobytes())
    return digest.hexdigest()


@dataclass
class TraceArtifact:
    """One workload trace, materialized with its line-run columns.

    Build with :meth:`from_trace`, persist with :meth:`save`, reload
    with :meth:`load` (memory-mapped by default).  :meth:`trace`
    returns a :class:`MemoryTrace` whose ``line_runs`` memo is
    pre-seeded from the stored columns, so replays skip the RLE pass
    entirely.
    """

    workload: str
    line_bytes: int
    content_hash: str
    code_version: str
    addresses: np.ndarray
    is_write: np.ndarray
    run_lines: np.ndarray
    run_counts: np.ndarray
    run_writes: np.ndarray
    path: Path | None = field(default=None, compare=False)

    @property
    def num_accesses(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def num_runs(self) -> int:
        return int(self.run_lines.shape[0])

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace: MemoryTrace,
        workload: str = "",
        line_bytes: int = CACHE_LINE_BYTES,
    ) -> "TraceArtifact":
        """Materialize a trace (and its line runs) as an artifact."""
        from repro.core.memo import code_version_hash

        run_lines, run_counts, run_writes = trace.line_runs(line_bytes)
        return cls(
            workload=workload,
            line_bytes=line_bytes,
            content_hash=_content_hash(trace.addresses, trace.is_write, line_bytes),
            code_version=code_version_hash(),
            addresses=trace.addresses,
            is_write=trace.is_write,
            run_lines=run_lines,
            run_counts=run_counts,
            run_writes=run_writes,
        )

    def trace(self) -> MemoryTrace:
        """The artifact's trace, with ``line_runs`` pre-seeded."""
        trace = MemoryTrace(addresses=self.addresses, is_write=self.is_write)
        trace._line_runs_cache[self.line_bytes] = (
            self.run_lines,
            self.run_counts,
            self.run_writes,
        )
        return trace

    # ------------------------------------------------------------------
    def _column_arrays(self) -> list[tuple[str, np.ndarray]]:
        return [
            (name, np.ascontiguousarray(getattr(self, name), dtype=dtype))
            for name, dtype in _COLUMNS
        ]

    def save(self, path: str | Path) -> Path:
        """Write the artifact atomically; returns the final path.

        The file appears under ``path`` only after a full fsync'd write
        (tmp + ``os.replace``), matching the checkpoint/memo contracts:
        a crash mid-save can never leave a torn file under the real
        name, and :meth:`load`'s checksums catch anything else.
        """
        path = Path(path)
        columns = self._column_arrays()
        specs = []
        offset = 0
        for name, array in columns:
            nbytes = int(array.nbytes)
            specs.append(
                {
                    "name": name,
                    "dtype": str(array.dtype),
                    "count": int(array.shape[0]),
                    "offset": offset,  # relative to the data section
                    "nbytes": nbytes,
                    "sha256": _sha256(array.tobytes()),
                }
            )
            offset += -(-nbytes // _ALIGN) * _ALIGN
        header = {
            "schema": SCHEMA,
            "workload": self.workload,
            "line_bytes": self.line_bytes,
            "content_hash": self.content_hash,
            "code_version": self.code_version,
            "num_accesses": self.num_accesses,
            "num_runs": self.num_runs,
            "columns": specs,
            "data_bytes": offset,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode()
        data_start = _data_start(len(header_bytes))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp.%d" % os.getpid())
        try:
            with open(tmp, "wb") as f:
                f.write(_MAGIC)
                f.write(len(header_bytes).to_bytes(8, "little"))
                f.write(header_bytes)
                f.write(b"\0" * (data_start - len(_MAGIC) - 8 - len(header_bytes)))
                for spec, (_, array) in zip(specs, columns):
                    f.seek(data_start + spec["offset"])
                    f.write(array.tobytes())
                f.truncate(data_start + offset)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        get_recorder().counters.add("sim.artifact.saves", 1)
        self.path = path
        return path

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        path: str | Path,
        mmap: bool = True,
        verify: bool = True,
        expected_hash: str | None = None,
    ) -> "TraceArtifact":
        """Load an artifact, memory-mapping its columns by default.

        Raises :class:`ArtifactError` on any structural damage: bad
        magic, unparseable or schema-mismatched header, a file shorter
        than the header promises (torn write), or — with ``verify`` —
        a per-column or content checksum mismatch.  ``expected_hash``
        additionally pins the trace identity: a sharded sweep's pool
        workers open the artifact by path *and* content hash, so a file
        swapped under the path between dispatch and open is rejected
        before any column is read.
        """
        path = Path(path)
        header, data_start = _read_header(path)
        if (
            expected_hash is not None
            and header.get("content_hash") != expected_hash
        ):
            raise ArtifactError(
                "%s: artifact content hash %s does not match the "
                "dispatched trace %s"
                % (path, header.get("content_hash"), expected_hash)
            )
        specs = header["columns"]
        if [s["name"] for s in specs] != [name for name, _ in _COLUMNS]:
            raise ArtifactError("%s: unexpected column set" % path)
        arrays = {}
        for spec in specs:
            dtype = np.dtype(spec["dtype"])
            count = int(spec["count"])
            if dtype.itemsize * count != int(spec["nbytes"]):
                raise ArtifactError(
                    "%s: column %r size mismatch" % (path, spec["name"])
                )
            offset = data_start + int(spec["offset"])
            if mmap and count:
                array = np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=(count,))
            else:
                with open(path, "rb") as f:
                    f.seek(offset)
                    array = np.frombuffer(
                        f.read(int(spec["nbytes"])), dtype=dtype
                    ).copy()
            arrays[spec["name"]] = array
        if verify:
            for spec in specs:
                digest = _sha256(arrays[spec["name"]].tobytes())
                if digest != spec["sha256"]:
                    raise ArtifactError(
                        "%s: column %r checksum mismatch (%s != %s)"
                        % (path, spec["name"], digest, spec["sha256"])
                    )
            recomputed = _content_hash(
                arrays["addresses"], arrays["is_write"], int(header["line_bytes"])
            )
            if recomputed != header["content_hash"]:
                raise ArtifactError(
                    "%s: content hash mismatch (%s != %s)"
                    % (path, recomputed, header["content_hash"])
                )
        get_recorder().counters.add("sim.artifact.loads", 1)
        return cls(
            workload=header["workload"],
            line_bytes=int(header["line_bytes"]),
            content_hash=header["content_hash"],
            code_version=header["code_version"],
            path=path,
            **arrays,
        )


def _data_start(header_len: int) -> int:
    """Aligned offset of the data section, deterministic in header size."""
    raw = len(_MAGIC) + 8 + header_len
    return -(-raw // _ALIGN) * _ALIGN


def _read_header(path: Path) -> tuple[dict, int]:
    """Parse and structurally validate an artifact's header.

    Returns ``(header, data_start)``.  Raises :class:`ArtifactError`
    on bad magic, a truncated or unparseable header, a schema
    mismatch, or a file size that disagrees with the header's
    ``data_bytes`` promise (torn write).
    """
    try:
        file_size = path.stat().st_size
        with open(path, "rb") as f:
            magic = f.read(len(_MAGIC))
            if magic != _MAGIC:
                raise ArtifactError("%s: bad magic %r" % (path, magic))
            raw_len = f.read(8)
            if len(raw_len) != 8:
                raise ArtifactError("%s: truncated header length" % path)
            header_len = int.from_bytes(raw_len, "little")
            header_bytes = f.read(header_len)
    except OSError as exc:
        raise ArtifactError("%s: unreadable artifact: %s" % (path, exc)) from exc
    if len(header_bytes) != header_len:
        raise ArtifactError("%s: truncated header" % path)
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ArtifactError("%s: corrupt header: %s" % (path, exc)) from exc
    if header.get("schema") != SCHEMA:
        raise ArtifactError(
            "%s: schema %r, expected %r" % (path, header.get("schema"), SCHEMA)
        )
    data_start = _data_start(header_len)
    expected = data_start + int(header.get("data_bytes", -1))
    if file_size != expected:
        raise ArtifactError(
            "%s: torn artifact: %d bytes on disk, header promises %d"
            % (path, file_size, expected)
        )
    return header, data_start


def read_artifact_header(path: str | Path) -> dict:
    """The validated JSON header of an artifact, without its columns.

    Cheap (no column read, no checksum verification) — used by
    ``TraceStore.artifacts()`` and the ``trace list`` CLI to describe a
    store without paging in trace data.
    """
    header, _ = _read_header(Path(path))
    return header


class TraceStore:
    """An on-disk cache of trace artifacts, keyed by workload + code version.

    ``get_or_build(name, builder)`` returns the stored artifact when a
    valid one exists for this code version (counted as
    ``sim.artifact.hits``) and otherwise runs ``builder`` — the
    instrumented kernel — once, saving the result for every later sweep
    point and process (``sim.artifact.misses`` + ``sim.artifact.saves``).
    Artifacts that fail validation are quarantined to ``*.corrupt``
    (``sim.artifact.corrupt``) and rebuilt; artifacts from an older code
    version are rebuilt in place.  A failed *config* during a sweep
    never touches the store — quarantine of sweep points is the
    resilience layer's job, and the shared trace must survive it.
    """

    def __init__(self, directory: str | Path | None = None, version: str | None = None):
        from repro.core.memo import code_version_hash, default_cache_dir

        self.directory = (
            Path(directory) if directory is not None else default_cache_dir() / "traces"
        )
        self.version = version if version is not None else code_version_hash()

    def path_for(self, name: str, line_bytes: int = CACHE_LINE_BYTES) -> Path:
        digest = hashlib.sha256(
            ("%s:%d:%s" % (name, line_bytes, self.version)).encode()
        ).hexdigest()[:16]
        safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name)
        return self.directory / ("%s-%s.trace" % (safe, digest))

    def get_or_build(
        self,
        name: str,
        builder,
        line_bytes: int = CACHE_LINE_BYTES,
        mmap: bool = True,
    ) -> TraceArtifact:
        """The artifact for ``name``, building (and saving) on miss.

        Args:
            name: workload identity; part of the on-disk key.
            builder: zero-argument callable returning the workload's
                :class:`MemoryTrace`; invoked only on a miss.
            line_bytes: cache-line size the run columns are folded at.
            mmap: memory-map columns on a hit (loads stay O(1) in trace
                size until replay touches the pages).
        """
        counters = get_recorder().counters
        path = self.path_for(name, line_bytes)
        if path.exists():
            try:
                artifact = TraceArtifact.load(path, mmap=mmap)
            except ArtifactError:
                self._quarantine(path)
                counters.add("sim.artifact.corrupt", 1)
            else:
                if artifact.code_version == self.version:
                    counters.add("sim.artifact.hits", 1)
                    return artifact
                # Stale code version (custom `version=` namespaces can
                # collide across code edits): rebuild in place.
        counters.add("sim.artifact.misses", 1)
        artifact = TraceArtifact.from_trace(
            builder(), workload=name, line_bytes=line_bytes
        )
        artifact.save(path)
        return artifact

    def find_by_hash(
        self, content_hash: str, mmap: bool = True
    ) -> TraceArtifact | None:
        """The stored artifact whose ``content_hash`` matches, or None.

        This is the content-reference path for distributed sweeps: a
        remote worker given only a shard's artifact hash resolves it
        against its *local* store (headers only are scanned, so the
        lookup stays cheap even over multi-GB artifacts).  A header
        match is then verified by the normal ``expected_hash`` load, so
        a lying header can never substitute a different trace.
        """
        if not self.directory.is_dir():
            return None
        for path in sorted(self.directory.glob("*.trace")):
            try:
                header = read_artifact_header(path)
            except ArtifactError:
                continue
            if header.get("content_hash") != content_hash:
                continue
            try:
                artifact = TraceArtifact.load(
                    path, mmap=mmap, expected_hash=content_hash
                )
            except ArtifactError:
                continue
            get_recorder().counters.add("sim.artifact.hash_lookups", 1)
            return artifact
        return None

    # -- maintenance ---------------------------------------------------
    def artifacts(self) -> list[dict]:
        """Describe every entry in the store directory, newest first.

        Each row carries ``name`` (file stem), ``path``, ``bytes``,
        ``age_days``, and a ``status``: ``current`` (valid, this code
        version), ``stale`` (valid, older code version), or
        ``corrupt`` (fails header validation, or already quarantined).
        Valid artifacts also report ``workload``, ``accesses`` and
        ``runs`` from the header.  Headers only — no trace columns are
        read, so listing a store of multi-GB artifacts stays cheap.
        """
        if not self.directory.is_dir():
            return []
        rows = []
        now = time.time()
        paths = sorted(self.directory.glob("*.trace")) + sorted(
            self.directory.glob("*.corrupt")
        )
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            row = {
                "name": path.name,
                "path": str(path),
                "bytes": int(stat.st_size),
                "age_days": max(0.0, (now - stat.st_mtime) / 86400.0),
            }
            if path.suffix == ".corrupt":
                row["status"] = "corrupt"
            else:
                try:
                    header = read_artifact_header(path)
                except ArtifactError:
                    row["status"] = "corrupt"
                else:
                    row["status"] = (
                        "current"
                        if header.get("code_version") == self.version
                        else "stale"
                    )
                    row["workload"] = header.get("workload", "")
                    row["accesses"] = int(header.get("num_accesses", 0))
                    row["runs"] = int(header.get("num_runs", 0))
            rows.append(row)
        rows.sort(key=lambda r: r["age_days"])
        return rows

    def prune(self, max_age_days: float = 30.0) -> int:
        """Remove aged debris: stale/corrupt artifacts and tmp leftovers.

        Current-code-version artifacts are never pruned regardless of
        age — they are still this build's cache.  Returns the number of
        files removed.
        """
        removed = 0
        for row in self.artifacts():
            if row["status"] == "current" or row["age_days"] < max_age_days:
                continue
            try:
                os.unlink(row["path"])
                removed += 1
            except OSError:
                pass
        if self.directory.is_dir():
            now = time.time()
            for path in self.directory.glob("*.tmp.*"):
                try:
                    if (now - path.stat().st_mtime) / 86400.0 >= max_age_days:
                        path.unlink()
                        removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> int:
        """Remove every artifact, quarantine file, and tmp leftover."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for pattern in ("*.trace", "*.corrupt", "*.tmp.*"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a bad artifact aside so it is inspectable, never reread."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass
