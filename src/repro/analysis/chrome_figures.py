"""Chrome figure harnesses (paper Figures 1, 2, 4, 18)."""

from __future__ import annotations

from repro.analysis.base import FigureResult
from repro.core.runner import ExperimentRunner
from repro.core.workload import characterize
from repro.energy.breakdown import Component
from repro.workloads.chrome.pages import PAGES, PAGE_ORDER
from repro.workloads.chrome.targets import browser_pim_targets
from repro.workloads.chrome.zram import TabSwitchingSession

GB = 1024.0**3
MB = 1024.0**2


def fig01_scrolling_energy() -> FigureResult:
    """Figure 1: energy breakdown for page scrolling, six pages."""
    rows = []
    combined = []
    for name in PAGE_ORDER:
        ch = characterize(name, PAGES[name].scrolling_functions())
        shares = ch.energy_shares()
        rows.append(
            {
                "page": name,
                "texture_tiling": shares["texture_tiling"],
                "color_blitting": shares["color_blitting"],
                "other": shares["other"],
            }
        )
        combined.append(shares["texture_tiling"] + shares["color_blitting"])
    avg = sum(combined) / len(combined)
    return FigureResult(
        figure_id="Figure 1",
        title="Energy breakdown for page scrolling",
        rows=rows,
        anchors={
            "avg tiling+blitting share of scrolling energy": (0.419, avg),
        },
    )


def fig02_docs_breakdown() -> FigureResult:
    """Figure 2: Google Docs scroll, per-component + per-function energy."""
    ch = characterize("Google Docs", PAGES["Google Docs"].scrolling_functions())
    total = ch.total_energy_j
    rows = [
        {
            "component": component.value,
            "energy_fraction": ch.component_energy(component) / total,
        }
        for component in (
            Component.CPU,
            Component.L1,
            Component.LLC,
            Component.INTERCONNECT,
            Component.MEMCTRL,
            Component.DRAM,
        )
    ]
    return FigureResult(
        figure_id="Figure 2",
        title="Energy breakdown when scrolling through Google Docs",
        rows=rows,
        anchors={
            "data movement fraction of total energy": (
                0.77,
                ch.data_movement_fraction,
            ),
            "texture tiling movement share of total": (
                0.257,
                ch.movement_share_of_workload("texture_tiling"),
            ),
            "tiling+blitting movement share of total": (
                0.377,
                ch.movement_share_of_workload("texture_tiling")
                + ch.movement_share_of_workload("color_blitting"),
            ),
            "movement fraction within texture tiling": (
                0.815,
                ch.movement_fraction_of_function("texture_tiling"),
            ),
            "movement fraction within color blitting": (
                0.639,
                ch.movement_fraction_of_function("color_blitting"),
            ),
            "color blitting share of total energy": (
                0.191,
                ch.energy_share("color_blitting"),
            ),
        },
    )


def fig04_zram_traffic() -> FigureResult:
    """Figure 4: ZRAM swap traffic while switching between 50 tabs."""
    session = TabSwitchingSession()
    timeline = session.run()
    # Down-sample the per-second series to 20-second buckets for display.
    rows = []
    for start in range(0, len(timeline.seconds), 20):
        sl = slice(start, start + 20)
        rows.append(
            {
                "t_start_s": int(start),
                "avg_out_MBps": float(timeline.bytes_out[sl].mean()) / MB,
                "avg_in_MBps": float(timeline.bytes_in[sl].mean()) / MB,
            }
        )
    ch = characterize("tab_switching", session.workload_functions())
    comp_energy = ch.energy_share("compression") + ch.energy_share("decompression")
    comp_time = ch.time_share("compression") + ch.time_share("decompression")
    return FigureResult(
        figure_id="Figure 4",
        title="ZRAM swap-out/in traffic, 50-tab switching",
        rows=rows,
        anchors={
            "total swapped out (GB)": (11.7, timeline.total_out / GB),
            "total swapped in (GB)": (7.8, timeline.total_in / GB),
            "peak swap-out rate (MB/s)": (201.0, timeline.peak_out_rate / MB),
            "peak swap-in rate (MB/s)": (227.0, timeline.peak_in_rate / MB),
            "compression+decompression energy share": (0.181, comp_energy),
            "compression+decompression time share": (0.142, comp_time),
        },
        notes=(
            "Swap-out volume runs ~15% above the paper: with every tab "
            "visited exactly once, re-activated tabs are evicted a second "
            "time; the paper's browsing mix re-uses some hot tabs."
        ),
    )


def fig18_browser_pim() -> FigureResult:
    """Figure 18: browser kernels on CPU-Only / PIM-Core / PIM-Acc."""
    result = ExperimentRunner().evaluate(browser_pim_targets())
    return FigureResult(
        figure_id="Figure 18",
        title="Browser kernels: normalized energy and runtime",
        rows=result.rows(),
        anchors={
            "mean PIM-Core energy reduction": (
                0.513,
                result.mean_pim_core_energy_reduction,
            ),
            "mean PIM-Acc energy reduction": (
                0.610,
                result.mean_pim_acc_energy_reduction,
            ),
            "mean PIM-Core speedup": (1.6, result.mean_pim_core_speedup),
            "mean PIM-Acc speedup": (2.0, result.mean_pim_acc_speedup),
        },
    )
