"""Common result container for the figure harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FigureResult:
    """One regenerated paper figure/table.

    Attributes:
        figure_id: e.g. ``"Figure 1"``.
        title: what the figure shows.
        rows: the regenerated data, one dict per printed row/series point.
        anchors: paper-reported values vs our measured values, keyed by a
            short description; each value is a (paper, measured) pair.
        notes: caveats/deviations worth recording in EXPERIMENTS.md.
    """

    figure_id: str
    title: str
    rows: list = field(default_factory=list)
    anchors: dict = field(default_factory=dict)
    notes: str = ""

    def render_text(self) -> str:
        """Human-readable rendering (used by benches and the report)."""
        lines = ["%s: %s" % (self.figure_id, self.title)]
        for row in self.rows:
            lines.append(
                "  "
                + "  ".join(
                    "%s=%s" % (k, _fmt(v)) for k, v in row.items()
                )
            )
        if self.anchors:
            lines.append("  anchors (paper vs measured):")
            for name, (paper, measured) in self.anchors.items():
                lines.append(
                    "    %-50s %s vs %s" % (name, _fmt(paper), _fmt(measured))
                )
        if self.notes:
            lines.append("  note: %s" % self.notes)
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        """A plain-JSON form for the on-disk memo cache."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "rows": self.rows,
            "anchors": {k: list(v) for k, v in self.anchors.items()},
            "notes": self.notes,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FigureResult":
        return cls(
            figure_id=data["figure_id"],
            title=data["title"],
            rows=data.get("rows", []),
            anchors={k: tuple(v) for k, v in data.get("anchors", {}).items()},
            notes=data.get("notes", ""),
        )

    def anchor_within(self, name: str, tolerance: float) -> bool:
        """Whether a measured anchor is within +-tolerance (absolute for
        fractions, relative for other magnitudes) of the paper value."""
        paper, measured = self.anchors[name]
        paper, measured = float(paper), float(measured)
        if abs(paper) <= 1.0:
            return abs(measured - paper) <= tolerance
        if paper == 0.0:
            return measured == 0.0
        return abs(measured / paper - 1.0) <= tolerance


def _fmt(value) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)
