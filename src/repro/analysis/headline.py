"""Headline numbers and Table 1.

The paper's abstract/intro report three cross-workload averages:

* data movement causes 62.7% of total system energy;
* PIM cores reduce kernel energy by 49.1% (up to 59.4%) and improve
  performance by 44.6% (up to 2.2x);
* PIM accelerators reduce energy by 55.4% (up to 73.5%) and improve
  performance by 54.2% (up to 2.5x).
"""

from __future__ import annotations

from repro.analysis.base import FigureResult
from repro.config import table1_rows
from repro.core.runner import ExperimentRunner
from repro.core.workload import characterize
from repro.workloads.chrome.pages import PAGES, PAGE_ORDER
from repro.workloads.chrome.targets import browser_pim_targets
from repro.workloads.chrome.zram import TabSwitchingSession
from repro.workloads.tensorflow.models import all_models
from repro.workloads.tensorflow.network import network_functions
from repro.workloads.tensorflow.targets import tensorflow_pim_targets
from repro.workloads.vp9.frame import RESOLUTIONS
from repro.workloads.vp9.profiles import decoder_functions, encoder_functions
from repro.workloads.vp9.targets import video_pim_targets


def all_pim_targets():
    """Every PIM target evaluated by the paper, across all workloads."""
    return browser_pim_targets() + tensorflow_pim_targets() + video_pim_targets()


def workload_characterizations():
    """CPU-Only characterizations of every full workload."""
    out = []
    for name in PAGE_ORDER:
        out.append(characterize(name, PAGES[name].scrolling_functions()))
    out.append(
        characterize("tab_switching", TabSwitchingSession().workload_functions())
    )
    for net in all_models():
        out.append(characterize(net.name, network_functions(net)))
    w4, h4 = RESOLUTIONS["4K"]
    out.append(characterize("vp9_decode_4k", decoder_functions(w4, h4, 100)))
    wh, hh = RESOLUTIONS["HD"]
    out.append(characterize("vp9_encode_hd", encoder_functions(wh, hh, 10)))
    return out


def headline_summary(retry_policy=None) -> FigureResult:
    """The paper's headline averages, recomputed from our models.

    With a :class:`~repro.core.resilience.RetryPolicy`, the underlying
    sweep survives per-target faults; a degraded sweep (quarantined
    targets) is annotated in the figure's ``notes`` and its averages
    are computed over the survivors — it never crashes the report.
    """
    characterizations = workload_characterizations()
    movement = [c.data_movement_fraction for c in characterizations]
    avg_movement = sum(movement) / len(movement)
    result = ExperimentRunner().evaluate(
        all_pim_targets(), retry_policy=retry_policy
    )
    rows = [
        {"workload": c.workload, "data_movement_fraction": c.data_movement_fraction}
        for c in characterizations
    ]
    rows += result.rows()
    notes = ""
    if result.degraded:
        notes = (
            "DEGRADED: %d target(s) quarantined after exhausting retries (%s); "
            "averages cover the %d survivors only."
            % (
                len(result.failures),
                ", ".join(f.target for f in result.failures),
                len(result.comparisons),
            )
        )
    if not result.comparisons:
        return FigureResult(
            figure_id="Headline",
            title="Cross-workload averages",
            rows=rows,
            notes=notes or "DEGRADED: no surviving targets",
        )
    return FigureResult(
        figure_id="Headline",
        title="Cross-workload averages",
        rows=rows,
        notes=notes,
        anchors={
            "avg data-movement fraction of system energy": (0.627, avg_movement),
            "mean PIM-Core energy reduction": (
                0.491,
                result.mean_pim_core_energy_reduction,
            ),
            "max PIM-Core energy reduction": (
                0.594,
                result.max_pim_core_energy_reduction,
            ),
            "mean PIM-Acc energy reduction": (
                0.554,
                result.mean_pim_acc_energy_reduction,
            ),
            "max PIM-Acc energy reduction": (
                0.735,
                result.max_pim_acc_energy_reduction,
            ),
            "mean PIM-Core speedup": (1.446, result.mean_pim_core_speedup),
            "max PIM-Core speedup": (2.2, result.max_pim_core_speedup),
            "mean PIM-Acc speedup": (1.542, result.mean_pim_acc_speedup),
            "max PIM-Acc speedup": (2.5, result.max_pim_acc_speedup),
        },
    )


def table1_configuration() -> FigureResult:
    """Table 1: evaluated system configuration."""
    rows = [
        {"component": component, "configuration": description}
        for component, description in table1_rows()
    ]
    return FigureResult(
        figure_id="Table 1",
        title="Evaluated system configuration",
        rows=rows,
    )
