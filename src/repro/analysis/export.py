"""Machine-readable export of every regenerated experiment.

``python -m repro.analysis.export [DIR]`` writes one JSON file per
figure/table (rows + anchors + notes) plus an ``index.json`` manifest,
so downstream plotting (matplotlib, vega, spreadsheets) never needs to
re-run the models.
"""

from __future__ import annotations

import json
import os
import sys

from repro.analysis.base import FigureResult
from repro.analysis.report import EXPERIMENTS


def figure_to_dict(result: FigureResult) -> dict:
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "rows": result.rows,
        "anchors": {
            name: {"paper": paper, "measured": measured}
            for name, (paper, measured) in result.anchors.items()
        },
        "notes": result.notes,
    }


def _slug(figure_id: str) -> str:
    return figure_id.lower().replace(" ", "_")


def export_all(directory: str = "figures_data") -> list[str]:
    """Regenerate every experiment and write JSON files.

    Returns the written paths (index last).
    """
    os.makedirs(directory, exist_ok=True)
    written = []
    index = []
    for fn in EXPERIMENTS:
        result = fn()
        payload = figure_to_dict(result)
        path = os.path.join(directory, _slug(result.figure_id) + ".json")
        with open(path, "w") as f:
            json.dump(payload, f, indent=2, default=float)
        written.append(path)
        index.append(
            {
                "figure_id": result.figure_id,
                "title": result.title,
                "file": os.path.basename(path),
                "num_rows": len(result.rows),
                "num_anchors": len(result.anchors),
            }
        )
    index_path = os.path.join(directory, "index.json")
    with open(index_path, "w") as f:
        json.dump(index, f, indent=2)
    written.append(index_path)
    return written


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    directory = argv[0] if argv else "figures_data"
    written = export_all(directory)
    print("wrote %d files to %s" % (len(written), directory))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
