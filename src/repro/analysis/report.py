"""EXPERIMENTS.md generator.

Run ``python -m repro.analysis.report`` to regenerate every experiment
and rewrite EXPERIMENTS.md with paper-vs-measured values.

Figure regeneration is deterministic, so :func:`all_results` optionally
(a) farms the experiments out to a ``ProcessPoolExecutor`` and (b)
memoizes each figure's rows in a content-keyed on-disk cache
(:mod:`repro.core.memo`), keyed by the figure name and a hash of the
package source.  ``python -m repro figures`` enables the cache by
default, so repeated report runs with an unchanged tree skip all model
work.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analysis.base import FigureResult
from repro.core.memo import MemoCache
from repro.analysis.chrome_figures import (
    fig01_scrolling_energy,
    fig02_docs_breakdown,
    fig04_zram_traffic,
    fig18_browser_pim,
)
from repro.analysis.headline import headline_summary, table1_configuration
from repro.analysis.tensorflow_figures import (
    fig06_tf_energy,
    fig07_tf_time,
    fig19_tf_pim,
)
from repro.analysis.video_figures import (
    fig10_sw_decoder_energy,
    fig11_sw_decoder_components,
    fig12_hw_decoder_traffic,
    fig15_sw_encoder_energy,
    fig16_hw_encoder_traffic,
    fig20_video_pim,
    fig21_hw_codec_pim,
)

#: Every experiment, in paper order.
EXPERIMENTS = (
    table1_configuration,
    fig01_scrolling_energy,
    fig02_docs_breakdown,
    fig04_zram_traffic,
    fig06_tf_energy,
    fig07_tf_time,
    fig10_sw_decoder_energy,
    fig11_sw_decoder_components,
    fig12_hw_decoder_traffic,
    fig15_sw_encoder_energy,
    fig16_hw_encoder_traffic,
    fig18_browser_pim,
    fig19_tf_pim,
    fig20_video_pim,
    fig21_hw_codec_pim,
    headline_summary,
)


def _run_experiment(index: int) -> FigureResult:
    """Run one experiment by index (module-level, so it pickles)."""
    return EXPERIMENTS[index]()


def _run_experiment_observed(index: int):
    """Worker task when observability is on: (result, obs snapshot)."""
    from repro.obs.recorder import Recorder, set_recorder

    recorder = Recorder()
    set_recorder(recorder)
    with recorder.span("analysis.figure.%s" % EXPERIMENTS[index].__name__):
        result = EXPERIMENTS[index]()
    return result, recorder.snapshot()


def all_results(
    jobs: int = 1,
    cache: MemoCache | None = None,
    retry_policy=None,
    checkpoint=None,
    resume: bool = False,
    pool_factory=None,
) -> list[FigureResult]:
    """Regenerate every experiment.

    Args:
        jobs: worker processes; ``1`` runs everything in-process.
        cache: optional :class:`MemoCache`; hits skip regeneration, and
            fresh results are stored for the next run.
        retry_policy: optional
            :class:`~repro.core.resilience.RetryPolicy`; with one, a
            crashed/hung/failing experiment is retried, and one that
            exhausts its retries yields a degraded placeholder result
            (annotated in its ``notes``) instead of aborting the report.
        checkpoint: optional journal path; completed figures are
            appended as they finish.
        resume: reload journal entries (same code version) instead of
            regenerating them.
        pool_factory: optional executor seam forwarded to
            :class:`~repro.core.resilience.ResilientMap` (e.g.
            :func:`repro.fleet.fleet_pool_factory` to regenerate on a
            worker fleet).
    """
    from repro.core.resilience import SweepCheckpoint, sweep_key
    from repro.obs.recorder import get_recorder

    recorder = get_recorder()
    journal = None
    if checkpoint is not None:
        journal = (
            checkpoint
            if isinstance(checkpoint, SweepCheckpoint)
            else SweepCheckpoint(checkpoint, key=sweep_key("figures"))
        )
    try:
        return _all_results(
            recorder, journal, cache, jobs, retry_policy, resume, pool_factory
        )
    finally:
        if journal is not None and journal is not checkpoint:
            journal.close()
        if cache is not None:
            cache.flush()


def _all_results(
    recorder, journal, cache, jobs, retry_policy, resume, pool_factory=None
):
    from repro.core.resilience import ResilientMap

    results: dict[int, FigureResult] = {}
    pending: list[int] = []
    with recorder.span("analysis.all_results"):
        resumed = journal.entries() if journal is not None and resume else {}
        for index, fn in enumerate(EXPERIMENTS):
            if fn.__name__ in resumed:
                results[index] = FigureResult.from_jsonable(resumed[fn.__name__])
                recorder.counters.add("core.resilience.resumed", 1)
                continue
            hit = cache.get(fn.__name__) if cache is not None else None
            if hit is not None:
                results[index] = FigureResult.from_jsonable(hit)
            else:
                pending.append(index)
        if pending:
            observed = recorder.enabled

            def on_success(position, name, value):
                if journal is None:
                    return
                # The serial path yields a bare FigureResult even when
                # the recorder is on; only observed *parallel* workers
                # return (result, snapshot) tuples.
                result = value[0] if isinstance(value, tuple) else value
                journal.append(name, result.to_jsonable())

            def run_serial(index):
                with recorder.span(
                    "analysis.figure.%s" % EXPERIMENTS[index].__name__
                ):
                    return _run_experiment(index)

            parallel = jobs > 1 and len(pending) > 1
            mapper = ResilientMap(
                (_run_experiment_observed if observed else _run_experiment)
                if parallel
                else run_serial,
                pending,
                names=[EXPERIMENTS[i].__name__ for i in pending],
                policy=retry_policy,
                jobs=min(jobs, len(pending)) if parallel else 1,
                on_success=on_success,
                raise_failures=retry_policy is None,
                pool_factory=pool_factory if parallel else None,
            )
            values, failures = mapper.run()
            if parallel and observed:
                unwrapped = []
                for value in values:
                    if value is None:
                        unwrapped.append(None)
                        continue
                    result, snapshot = value
                    recorder.merge_snapshot(snapshot)
                    unwrapped.append(result)
                values = unwrapped
            failed = {f.target: f for f in failures}
            for index, result in zip(pending, values):
                name = EXPERIMENTS[index].__name__
                if result is None:
                    failure = failed.get(name)
                    results[index] = FigureResult(
                        figure_id=name,
                        title="(not regenerated)",
                        notes="DEGRADED: experiment failed after %d attempt(s): %s"
                        % (
                            failure.attempts if failure else 0,
                            failure.error if failure else "unknown",
                        ),
                    )
                    continue
                results[index] = result
                if cache is not None:
                    cache.put(name, result.to_jsonable())
    return [results[i] for i in range(len(EXPERIMENTS))]


_PREAMBLE = """# EXPERIMENTS — paper vs. measured

Generated by `python -m repro.analysis.report`.  Every table and figure
of the paper's evaluation is regenerated by the models in this
repository; for each, the paper's reported anchor values are compared
against our measured values.  Absolute joules/seconds are model outputs
(see DESIGN.md, "Fidelity notes"); the reproduction targets *shapes*:
who wins, approximate factors, and crossovers.

Schematic-only figures (3, 5, 8, 9, 13, 14, 17) have no data series;
their data-flow structure is implemented by the corresponding modules
(`repro.core.offload`, `repro.workloads.vp9.hardware`) and exercised by
the test suite.

Runs that enable fault tolerance (`--max-retries`/`--target-timeout`/
`--checkpoint`) record their fault history in the run manifest: the
`core.resilience.retries/timeouts/quarantined/checkpoint.writes/resumed`
counters appear under `counters` alongside the model statistics, and a
degraded sweep lists its quarantined targets in `results`.  Fault-free
runs without a policy publish none of these counters, so a manifest
with no `core.resilience.*` entries is positive evidence the numbers
came from a fault-free, non-degraded sweep.
"""


def render_markdown(
    results: list[FigureResult],
    perf: dict | None = None,
    kernels: dict | None = None,
    batched: dict | None = None,
    store: dict | None = None,
    parallel: dict | None = None,
) -> str:
    from repro.analysis.scorecard import score_figures

    card = score_figures(results)
    lines = [_PREAMBLE]
    lines.append(
        "**Scorecard: %d of %d paper anchors reproduce within tolerance "
        "(%.0f%%).**  The known misses are structural and documented in "
        "the per-figure notes below (chiefly: our conservative internal-"
        "DRAM energy caps the Figure 21 PIM-Acc magnitude, and our PIM "
        "models are somewhat more favourable to PIM than the paper's "
        "gem5 results on the video kernels).\n"
        % (card.passed, card.total, 100 * card.pass_rate)
    )
    for result in results:
        lines.append("## %s — %s\n" % (result.figure_id, result.title))
        if result.anchors:
            lines.append("| anchor | paper | measured |")
            lines.append("|---|---|---|")
            for name, (paper, measured) in result.anchors.items():
                lines.append(
                    "| %s | %s | %s |"
                    % (name, _fmt(paper), _fmt(measured))
                )
            lines.append("")
        if result.rows:
            keys = list(result.rows[0].keys())
            lines.append("| " + " | ".join(keys) + " |")
            lines.append("|" + "---|" * len(keys))
            for row in result.rows:
                lines.append(
                    "| " + " | ".join(_fmt(row.get(k, "")) for k in keys) + " |"
                )
            lines.append("")
        if result.notes:
            lines.append("*Note: %s*\n" % result.notes)
    perf = perf if perf is not None else load_perf_baseline()
    if perf:
        lines.append(_render_perf_section(perf))
    kernels = kernels if kernels is not None else load_kernel_baseline()
    if kernels:
        lines.append(_render_kernel_perf_section(kernels))
    batched = batched if batched is not None else load_batched_baseline()
    if batched:
        lines.append(_render_batched_perf_section(batched))
    parallel = parallel if parallel is not None else load_parallel_baseline()
    if parallel:
        lines.append(_render_parallel_perf_section(parallel))
    store = store if store is not None else load_store_baseline()
    if store:
        lines.append(_render_store_perf_section(store))
    fleet = load_fleet_baseline()
    if fleet:
        lines.append(_render_fleet_section(fleet))
    return "\n".join(lines) + "\n"


#: Where the trace-engine benchmark records its headline numbers.
PERF_BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_trace_engine.json"
)

#: Where the vectorized-kernel benchmark records scalar-vs-fast timings.
KERNEL_BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_kernels.json"
)

#: Where the config-batched sweep benchmark records its headline numbers.
BATCHED_BASELINE_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_batched_replay.json"
)


def load_batched_baseline(path: str | Path | None = None) -> dict | None:
    """The committed batched-sweep benchmark record, if present."""
    target = Path(path) if path is not None else BATCHED_BASELINE_PATH
    try:
        with open(target) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _render_batched_perf_section(record: dict) -> str:
    lines = ["## Performance — config-batched sweeps\n"]
    lines.append(
        "Recorded by `benchmarks/bench_batched_replay.py` (re-run it to "
        "refresh `benchmarks/BENCH_batched_replay.json`).  Baseline is "
        "the trace-per-config path (every geometry re-traces the kernel "
        "and replays serially); the batched path traces once into a "
        "columnar `TraceArtifact` and evaluates the whole geometry grid "
        "in one `sweep_batch` pass.  Both paths are verified "
        "bit-identical on every benchmark run before timing.\n"
    )
    lines.append(
        "| sweep | configs | accesses | trace-per-config (s) | "
        "trace-once batched (s) | speedup |"
    )
    lines.append("|---|---|---|---|---|---|")
    for row in record.get("sweeps", []):
        lines.append(
            "| %s | %d | %d | %.3f | %.3f | %.1fx |"
            % (
                row["name"],
                row["configs"],
                row["accesses"],
                row["baseline_s"],
                row["batched_s"],
                row["speedup"],
            )
        )
    lines.append("")
    lines.append(
        "Geomean end-to-end sweep speedup: **%.1fx**.\n"
        % record.get("headline_speedup", 0.0)
    )
    return "\n".join(lines)


#: Where the parallel shard benchmark records its multicore numbers.
PARALLEL_BASELINE_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_parallel_batch.json"
)


def load_parallel_baseline(path: str | Path | None = None) -> dict | None:
    """The committed parallel-shard benchmark record, if present."""
    target = Path(path) if path is not None else PARALLEL_BASELINE_PATH
    try:
        with open(target) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _render_parallel_perf_section(record: dict) -> str:
    lines = ["## Performance — multicore sharded sweeps\n"]
    lines.append(
        "Recorded by `benchmarks/bench_parallel_batch.py` (re-run it to "
        "refresh `benchmarks/BENCH_parallel_batch.json`).  Baseline is "
        "the single-process config-batched sweep above; the parallel "
        "path shards the geometry grid across `jobs=%d` worker "
        "processes that each memory-map the same on-disk trace artifact "
        "(nothing is pickled).  Both paths are verified bit-identical "
        "on every benchmark run before timing.  Speedup scales with "
        "cores: this record was measured on a %d-core host, so treat "
        "it as the floor, not the ceiling — the pytest gate asserts "
        ">=3x geomean on 4+-core machines.\n"
        % (record.get("jobs", 0), record.get("cpu_count", 0))
    )
    lines.append(
        "| sweep | configs | accesses | 1-process (s) | "
        "jobs=%d (s) | speedup |" % record.get("jobs", 0)
    )
    lines.append("|---|---|---|---|---|---|")
    for row in record.get("sweeps", []):
        lines.append(
            "| %s | %d | %d | %.3f | %.3f | %.1fx |"
            % (
                row["name"],
                row["configs"],
                row["accesses"],
                row["baseline_s"],
                row["parallel_s"],
                row["speedup"],
            )
        )
    lines.append("")
    lines.append(
        "Geomean multicore sweep speedup on this host: **%.1fx**.\n"
        % record.get("headline_speedup", 0.0)
    )
    return "\n".join(lines)


#: Where the segment-store benchmark records write/hit/resume numbers.
STORE_BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_store.json"
)


def load_store_baseline(path: str | Path | None = None) -> dict | None:
    """The committed segment-store benchmark record, if present."""
    target = Path(path) if path is not None else STORE_BASELINE_PATH
    try:
        with open(target) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _render_store_perf_section(record: dict) -> str:
    lines = ["## Performance — segment-merged result store\n"]
    lines.append(
        "Recorded by `benchmarks/bench_store.py` (re-run it to refresh "
        "`benchmarks/BENCH_store.json`).  Baseline is the pre-segment "
        "persistence layer — the memo cache's one-JSON-document-per-"
        "entry two-phase commit and the checkpoint's fsync-per-line "
        "JSONL journal — whose cost is dominated by per-entry file "
        "opens, renames, and fsyncs.  The segment store batches entries "
        "into single append-only blob writes with per-entry BLAKE2 "
        "checksums and an in-blob offset index (DESIGN.md section 11); "
        "every benchmark run verifies both layouts read back identical "
        "values before timing.\n"
    )
    lines.append(
        "| payload shape | entries | write speedup | cold-read speedup "
        "| resume speedup |"
    )
    lines.append("|---|---|---|---|---|")
    for row in record.get("sweeps", []):
        lines.append(
            "| %s | %d | %.1fx | %.1fx | %.2fx |"
            % (
                row["name"],
                row["entries"],
                row["write"]["speedup"],
                row["hit"]["speedup"],
                row["resume"]["speedup"],
            )
        )
    lines.append("")
    lines.append(
        "Geomean write-path speedup: **%.1fx** entries/sec over "
        "file-per-entry, with cold cache re-reads and checkpoint resume "
        "no worse than the legacy layouts (floors enforced by CI's "
        "perf-smoke `bench_store.py --quick` gate).\n"
        % record.get("headline_write_speedup", 0.0)
    )
    return "\n".join(lines)


#: Where the fleet smoke records its loopback-fleet verification.
FLEET_BASELINE_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_fleet_smoke.json"
)


def load_fleet_baseline(path: str | Path | None = None) -> dict | None:
    """The committed fleet-smoke verification record, if present."""
    target = Path(path) if path is not None else FLEET_BASELINE_PATH
    try:
        with open(target) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _render_fleet_section(record: dict) -> str:
    lines = ["## Distributed sweeps — loopback fleet verification\n"]
    lines.append(
        "Recorded by `benchmarks/fleet_smoke.py` (re-run it to refresh "
        "`benchmarks/BENCH_fleet_smoke.json`; CI's `fleet-smoke` job "
        "runs it on every push).  The smoke boots the whole distributed "
        "stack through the CLI — %d single-slot HTTP workers plus a "
        "gateway (`python -m repro fleet {worker,serve,status}`) — then "
        "requires a `--fleet` sweep of `%s` (%d geometries) to be "
        "**byte-identical on stdout** to a serial `--jobs 1` run, and a "
        "rerun to answer from the gateway's shared result cache "
        "(`fleet.cache.hits` in its manifest) without changing a byte.  "
        "The fleet here is loopback on one host, so the wall-clock "
        "column measures dispatch overhead, not distributed speedup — "
        "the contract under test is identity, and `tests/fleet/` pins "
        "the same contract over Hypothesis-drawn sweeps plus a fault "
        "suite (workers SIGKILLed mid-shard, whole fleet dead, gateway "
        "restart + `--resume`, hung workers past `timeout_s`).\n"
        % (
            record.get("workers", 0),
            record.get("workload", "?"),
            record.get("configs", 0),
        )
    )
    lines.append("| run | wall clock (s) | identical to serial |")
    lines.append("|---|---|---|")
    lines.append("| serial `--jobs 1` | %.2f | — |" % record.get("serial_s", 0.0))
    lines.append(
        "| fleet (2 workers + gateway) | %.2f | %s |"
        % (
            record.get("fleet_s", 0.0),
            "yes" if record.get("identical") else "NO",
        )
    )
    lines.append(
        "| rerun (gateway cache hit) | %.2f | %s |"
        % (
            record.get("cache_hit_s", 0.0),
            "yes" if record.get("identical") else "NO",
        )
    )
    lines.append("")
    return "\n".join(lines)


def load_kernel_baseline(path: str | Path | None = None) -> dict | None:
    """The committed vectorized-kernel benchmark record, if present."""
    target = Path(path) if path is not None else KERNEL_BASELINE_PATH
    try:
        with open(target) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _render_kernel_perf_section(record: dict) -> str:
    lines = ["## Performance — vectorized kernel engine\n"]
    lines.append(
        "Recorded by `benchmarks/bench_perf_kernels.py` (scalar oracle vs "
        "NumPy fast path, full sizes; re-run it to refresh "
        "`benchmarks/BENCH_kernels.json`).  Both engines are bit-identical "
        "on output — `tests/perf/test_vectorized_equivalence.py` is the "
        "correctness gate; these numbers are the speed side.  Diamond "
        "search and LZO compression are control-flow-bound (mid-ring "
        "re-centering, greedy parse), so their smaller gains are recorded "
        "rather than held to the 5x bar.\n"
    )
    lines.append("| kernel | scalar oracle (s) | fast path (s) | speedup |")
    lines.append("|---|---|---|---|")
    for row in record.get("kernels", []):
        lines.append(
            "| %s | %.4f | %.4f | %.1fx |"
            % (row["name"], row["scalar_s"], row["fast_s"], row["speedup"])
        )
    lines.append("")
    lines.append(
        "Geomean speedup: **%.1fx**.\n" % record.get("headline_speedup", 0.0)
    )
    return "\n".join(lines)


def load_perf_baseline(path: str | Path | None = None) -> dict | None:
    """The committed trace-engine benchmark record, if present."""
    target = Path(path) if path is not None else PERF_BASELINE_PATH
    try:
        with open(target) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _render_perf_section(perf: dict) -> str:
    lines = ["## Performance — trace-engine replay throughput\n"]
    lines.append(
        "Recorded by `benchmarks/bench_perf_trace_engine.py` "
        "(re-run it to refresh these numbers).\n"
    )
    lines.append("| trace | accesses | per-access (lines/s) | line-run fast path (lines/s) | speedup |")
    lines.append("|---|---|---|---|---|")
    for row in perf.get("traces", []):
        lines.append(
            "| %s | %d | %s | %s | %.1fx |"
            % (
                row["name"],
                row["accesses"],
                _si(row["baseline_lines_per_s"]),
                _si(row["fast_lines_per_s"]),
                row["speedup"],
            )
        )
    lines.append("")
    return "\n".join(lines)


def _si(value: float) -> str:
    if value >= 1e6:
        return "%.2fM" % (value / 1e6)
    if value >= 1e3:
        return "%.1fk" % (value / 1e3)
    return "%.0f" % value


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def write_experiments_md(
    path: str = "EXPERIMENTS.md",
    jobs: int = 1,
    cache: MemoCache | None = None,
) -> str:
    content = render_markdown(all_results(jobs=jobs, cache=cache))
    with open(path, "w") as f:
        f.write(content)
    return path


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    path = argv[0] if argv else "EXPERIMENTS.md"
    written = write_experiments_md(path)
    print("wrote %s" % written)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
