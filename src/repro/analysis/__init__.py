"""Figure/table harnesses: regenerate every experiment in the paper.

Each ``fig*``/``table*`` function recomputes one paper figure or table
from the models in this repository and returns a :class:`FigureResult`
holding the printed rows, the paper's reported anchor values, and our
measured values.  ``python -m repro.analysis.report`` renders all of
them into EXPERIMENTS.md.
"""

from repro.analysis.base import FigureResult
from repro.analysis.chrome_figures import (
    fig01_scrolling_energy,
    fig02_docs_breakdown,
    fig04_zram_traffic,
    fig18_browser_pim,
)
from repro.analysis.tensorflow_figures import (
    fig06_tf_energy,
    fig07_tf_time,
    fig19_tf_pim,
)
from repro.analysis.video_figures import (
    fig10_sw_decoder_energy,
    fig11_sw_decoder_components,
    fig12_hw_decoder_traffic,
    fig15_sw_encoder_energy,
    fig16_hw_encoder_traffic,
    fig20_video_pim,
    fig21_hw_codec_pim,
)
from repro.analysis.headline import headline_summary, table1_configuration
from repro.analysis.report import all_results, write_experiments_md
from repro.analysis.export import export_all, figure_to_dict
from repro.analysis.sensitivity import (
    breakeven_internal_ratio,
    cache_geometry_sweep,
    evaluate_point,
    locality_robust_across_geometries,
    sweep,
)
from repro.analysis.cachesweep import (
    default_geometry_grid,
    run_sweep,
    sweep_all,
    workload_names,
)
from repro.analysis.scorecard import Scorecard, full_scorecard, score_figures
from repro.analysis.scenarios import Scenario, ScenarioResult, evaluate_all, standard_scenarios
from repro.analysis.ascii import render_chart, render_all_charts

__all__ = [
    "FigureResult",
    "fig01_scrolling_energy",
    "fig02_docs_breakdown",
    "fig04_zram_traffic",
    "fig06_tf_energy",
    "fig07_tf_time",
    "fig10_sw_decoder_energy",
    "fig11_sw_decoder_components",
    "fig12_hw_decoder_traffic",
    "fig15_sw_encoder_energy",
    "fig16_hw_encoder_traffic",
    "fig18_browser_pim",
    "fig19_tf_pim",
    "fig20_video_pim",
    "fig21_hw_codec_pim",
    "headline_summary",
    "table1_configuration",
    "all_results",
    "write_experiments_md",
    "export_all",
    "figure_to_dict",
    "evaluate_point",
    "sweep",
    "breakeven_internal_ratio",
    "cache_geometry_sweep",
    "locality_robust_across_geometries",
    "default_geometry_grid",
    "run_sweep",
    "sweep_all",
    "workload_names",
    "Scorecard",
    "full_scorecard",
    "score_figures",
    "Scenario",
    "ScenarioResult",
    "evaluate_all",
    "standard_scenarios",
    "render_chart",
    "render_all_charts",
]
