"""ASCII bar-chart rendering for figure results.

Terminal-friendly rendering of the regenerated figures -- stacked bars
for the breakdown figures, grouped bars for the PIM comparisons --
so ``python -m repro figures --chart`` gives a visual read without any
plotting dependency.
"""

from __future__ import annotations

from repro.analysis.base import FigureResult

#: Characters per full-scale bar.
BAR_WIDTH = 48
#: Fill characters cycled per stacked segment.
FILLS = "#=+*%@ox"


def _bar(value: float, scale: float, fill: str = "#") -> str:
    if scale <= 0:
        return ""
    return fill * max(int(round(BAR_WIDTH * value / scale)), 0)


def _stacked_bar(parts: list[float], scale: float) -> str:
    out = []
    for i, value in enumerate(parts):
        out.append(_bar(value, scale, FILLS[i % len(FILLS)]))
    return "".join(out)


def render_chart(result: FigureResult) -> str:
    """Render a figure's rows as ASCII bars.

    Rows whose values are all numeric fractions render as stacked bars
    normalized to the largest row total; other rows fall back to the
    textual rendering.
    """
    rows = result.rows
    if not rows:
        return result.render_text()
    numeric_keys = [
        k for k, v in rows[0].items() if isinstance(v, (int, float))
        and not isinstance(v, bool)
    ]
    label_keys = [k for k in rows[0] if k not in numeric_keys]
    if not numeric_keys:
        return result.render_text()
    totals = [
        sum(float(row.get(k, 0.0)) for k in numeric_keys) for row in rows
    ]
    scale = max(totals) if totals else 1.0
    lines = ["%s: %s" % (result.figure_id, result.title)]
    legend = "  legend: " + "  ".join(
        "%s=%s" % (FILLS[i % len(FILLS)], key)
        for i, key in enumerate(numeric_keys)
    )
    lines.append(legend)
    for row in rows:
        # Rows may be heterogeneous (e.g. Figure 19 mixes kernel rows
        # with sweep points); label with whatever keys the row has.
        label = " ".join(
            str(row[k]) for k in label_keys if k in row
        ) or " ".join(
            "%s=%s" % (k, v) for k, v in row.items() if k not in numeric_keys
        )
        parts = [float(row.get(k, 0.0)) for k in numeric_keys]
        lines.append("  %-24s |%s" % (label[:24], _stacked_bar(parts, scale)))
    return "\n".join(lines)


def render_all_charts(results: list[FigureResult]) -> str:
    return "\n\n".join(render_chart(r) for r in results)
