"""Sensitivity analysis: do the conclusions survive the model constants?

The reproduction's energy parameters (:mod:`repro.energy.components`)
are calibrated estimates, not measurements.  A reproduction is only
credible if the paper's *conclusions* -- PIM saves energy, PIM-Acc beats
PIM-Core, no accepted target slows down -- hold across the plausible
range of those constants, not just at the calibrated point.  This module
sweeps the three most influential parameters and reports where, if
anywhere, each conclusion breaks:

* the off-chip DRAM energy per bit (the cost PIM avoids);
* the internal-to-off-chip energy ratio (how cheap in-memory access is);
* the CPU energy per instruction (how expensive compute is).

A fourth axis is *cache geometry*: the locality conclusions (packed
GEMM beats unpacked, tiled textures beat linear) should not hinge on
the Table 1 cache sizes.  :func:`cache_geometry_sweep` and
:func:`locality_robust_across_geometries` check them across a grid of
L1/LLC geometries, replaying each workload's trace from one shared
columnar artifact (:mod:`repro.analysis.cachesweep`) instead of
re-tracing the kernel per sweep point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.runner import ExperimentRunner
from repro.energy.components import EnergyParameters, default_energy_parameters


def _targets():
    from repro.workloads.chrome.targets import browser_pim_targets
    from repro.workloads.tensorflow.targets import tensorflow_pim_targets
    from repro.workloads.vp9.targets import video_pim_targets

    return browser_pim_targets() + tensorflow_pim_targets() + video_pim_targets()


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline metrics at one parameter setting."""

    parameter: str
    scale: float
    mean_pim_core_energy_reduction: float
    mean_pim_acc_energy_reduction: float
    min_pim_acc_energy_reduction: float
    acc_beats_core: bool

    @property
    def pim_always_saves_energy(self) -> bool:
        return self.min_pim_acc_energy_reduction > 0.0


def _scaled_params(parameter: str, scale: float) -> EnergyParameters:
    base = default_energy_parameters()
    if parameter == "dram_energy":
        return dataclasses.replace(
            base, dram_energy_per_bit=base.dram_energy_per_bit * scale
        )
    if parameter == "internal_ratio":
        # Scale the internal path relative to its calibrated value; the
        # off-chip path stays fixed.
        return dataclasses.replace(
            base,
            stacked_internal_energy_per_bit=base.stacked_internal_energy_per_bit
            * scale,
            vault_ctrl_energy_per_bit=base.vault_ctrl_energy_per_bit * scale,
        )
    if parameter == "cpu_epi":
        return dataclasses.replace(
            base, cpu_energy_per_instruction=base.cpu_energy_per_instruction * scale
        )
    raise KeyError("unknown sensitivity parameter %r" % parameter)


def evaluate_point(parameter: str, scale: float) -> SensitivityPoint:
    """Headline metrics with one parameter scaled by ``scale``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    params = _scaled_params(parameter, scale)
    result = ExperimentRunner(energy_params=params).evaluate(_targets())
    reductions = [c.pim_acc_energy_reduction for c in result.comparisons]
    acc_beats_core = all(
        c.pim_acc_energy_reduction >= c.pim_core_energy_reduction - 1e-9
        for c in result.comparisons
    )
    return SensitivityPoint(
        parameter=parameter,
        scale=scale,
        mean_pim_core_energy_reduction=result.mean_pim_core_energy_reduction,
        mean_pim_acc_energy_reduction=result.mean_pim_acc_energy_reduction,
        min_pim_acc_energy_reduction=min(reductions),
        acc_beats_core=acc_beats_core,
    )


def sweep(parameter: str, scales=(0.5, 0.75, 1.0, 1.5, 2.0)) -> list[SensitivityPoint]:
    """Sweep one parameter across plausible scales."""
    return [evaluate_point(parameter, s) for s in scales]


def cache_geometry_sweep(
    workload: str, socs=None, batch: bool = True, store=None, cache=None
) -> list[dict]:
    """One workload's sweep rows across cache geometries.

    Thin delegation to :func:`repro.analysis.cachesweep.run_sweep`; the
    workload is traced once (shared artifact) and every geometry —
    batched by default — contributes one row of measured miss/traffic/
    timing statistics.
    """
    from repro.analysis.cachesweep import run_sweep

    return run_sweep(
        workload, socs=socs, batch=batch, store=store, cache=cache
    )["rows"]


def locality_robust_across_geometries(
    pairs=(
        ("tensorflow.gemm_packed", "tensorflow.gemm_unpacked"),
        ("chrome.compositing_tiled", "chrome.compositing_linear"),
    ),
    socs=None,
    batch: bool = True,
    store=None,
) -> list[dict]:
    """Does each locality optimization win at *every* geometry?

    For each (optimized, baseline) workload pair, compares off-chip
    traffic and replay cycles per geometry.  Returns one verdict row
    per pair: ``robust`` is True when the optimized variant never moves
    more DRAM bytes than the baseline at any swept geometry — the
    geometry-insensitive version of the paper's Sections 5/7 claims.
    """
    from repro.analysis.cachesweep import run_sweep
    from repro.sim.artifact import TraceStore

    store = store or TraceStore()
    verdicts = []
    for optimized, baseline in pairs:
        opt = run_sweep(optimized, socs=socs, batch=batch, store=store)
        base = run_sweep(baseline, socs=socs, batch=batch, store=store)
        points = []
        for opt_row, base_row in zip(opt["rows"], base["rows"]):
            points.append(
                {
                    "config": opt_row["config"],
                    "optimized_dram_bytes": opt_row["dram_bytes"],
                    "baseline_dram_bytes": base_row["dram_bytes"],
                    "traffic_reduction": (
                        1.0 - opt_row["dram_bytes"] / base_row["dram_bytes"]
                        if base_row["dram_bytes"]
                        else 0.0
                    ),
                    "speedup": (
                        base_row["cycles"] / opt_row["cycles"]
                        if opt_row["cycles"]
                        else 0.0
                    ),
                }
            )
        verdicts.append(
            {
                "optimized": optimized,
                "baseline": baseline,
                "robust": all(
                    p["optimized_dram_bytes"] <= p["baseline_dram_bytes"]
                    for p in points
                ),
                "points": points,
            }
        )
    return verdicts


def breakeven_internal_ratio(resolution: float = 0.1) -> float:
    """The internal-path energy scale at which PIM stops saving energy.

    Walks the internal-energy scale upward until the *minimum* per-kernel
    PIM-Acc reduction goes non-positive; returns the last scale at which
    every kernel still saved energy.  At the calibrated point internal
    access costs 0.5x off-chip, so a break-even well above 1.0 means the
    conclusion is robust.
    """
    scale = 1.0
    last_good = 0.0
    while scale <= 4.0:
        point = evaluate_point("internal_ratio", scale)
        if not point.pim_always_saves_energy:
            return last_good
        last_good = scale
        scale += resolution
    return last_good
