"""VP9 figure harnesses (paper Figures 10, 11, 12, 15, 16, 20, 21)."""

from __future__ import annotations

from repro.analysis.base import FigureResult
from repro.core.runner import ExperimentRunner
from repro.core.workload import characterize
from repro.workloads.vp9.frame import RESOLUTIONS
from repro.workloads.vp9.hardware import (
    HardwareDecoderModel,
    HardwareEncoderModel,
    PimPlacement,
)
from repro.workloads.vp9.profiles import decoder_functions, encoder_functions
from repro.workloads.vp9.targets import video_pim_targets

MB = 1024.0**2

#: Frame counts used by the paper's software-codec evaluation (Section 9).
DECODE_FRAMES_4K = 100
ENCODE_FRAMES_HD = 10


def _decode_characterization():
    w, h = RESOLUTIONS["4K"]
    return characterize("vp9_decode_4k", decoder_functions(w, h, DECODE_FRAMES_4K))


def _encode_characterization():
    w, h = RESOLUTIONS["HD"]
    return characterize("vp9_encode_hd", encoder_functions(w, h, ENCODE_FRAMES_HD))


def fig10_sw_decoder_energy() -> FigureResult:
    """Figure 10: software decoder energy by function (4K)."""
    ch = _decode_characterization()
    shares = ch.energy_shares()
    rows = [{"function": name, "energy_share": share} for name, share in shares.items()]
    mc_total = shares["sub_pixel_interpolation"] + shares["other_mc"]
    return FigureResult(
        figure_id="Figure 10",
        title="VP9 software decoder energy by function (4K)",
        rows=rows,
        anchors={
            "motion compensation total share": (0.534, mc_total),
            "sub-pixel interpolation share": (
                0.375,
                shares["sub_pixel_interpolation"],
            ),
            "deblocking filter share": (0.297, shares["deblocking_filter"]),
        },
    )


def fig11_sw_decoder_components() -> FigureResult:
    """Figure 11: software decoder energy by hardware component."""
    ch = _decode_characterization()
    total = ch.total_energy_j
    matrix = ch.component_energy_by_function()
    rows = []
    for component in ("cpu", "l1", "llc", "interconnect", "memctrl", "dram"):
        row = {"component": component}
        row.update(
            {fn: energy / total for fn, energy in matrix[component].items()}
        )
        rows.append(row)
    movement = ch.data_movement_fraction
    subpel_move = ch.movement_share_of_workload("sub_pixel_interpolation")
    mc_deblock_move = (
        subpel_move
        + ch.movement_share_of_workload("other_mc")
        + ch.movement_share_of_workload("deblocking_filter")
    )
    return FigureResult(
        figure_id="Figure 11",
        title="VP9 software decoder energy by component x function",
        rows=rows,
        anchors={
            "data-movement fraction of decoder energy": (0.635, movement),
            "sub-pel interpolation share of total movement": (
                0.426,
                subpel_move / movement if movement else 0.0,
            ),
            "MC+deblocking share of total movement": (
                0.804,
                mc_deblock_move / movement if movement else 0.0,
            ),
            "movement fraction within sub-pel interpolation": (
                0.653,
                ch.movement_fraction_of_function("sub_pixel_interpolation"),
            ),
        },
    )


def fig12_hw_decoder_traffic() -> FigureResult:
    """Figure 12: hardware decoder off-chip traffic, HD + 4K."""
    rows = []
    anchors = {}
    for res in ("HD", "4K"):
        w, h = RESOLUTIONS[res]
        model = HardwareDecoderModel(w, h)
        for compression in (False, True):
            t = model.traffic(compression)
            row = {"resolution": res, "compression": compression}
            row.update({k: v / MB for k, v in t.components.items()})
            row["total_MB"] = t.total / MB
            rows.append(row)
            key = "%s %s ref-frame traffic share" % (
                res,
                "comp" if compression else "nocomp",
            )
            anchors[key] = (
                {"HD": (0.755, 0.622), "4K": (0.596, 0.488)}[res][int(compression)],
                t.share("Reference Frame"),
            )
    ratio = (
        HardwareDecoderModel(*RESOLUTIONS["4K"]).traffic(False).total
        / HardwareDecoderModel(*RESOLUTIONS["HD"]).traffic(False).total
    )
    anchors["4K/HD traffic ratio"] = (4.6, ratio)
    return FigureResult(
        figure_id="Figure 12",
        title="VP9 hardware decoder off-chip traffic breakdown",
        rows=rows,
        anchors=anchors,
        notes=(
            "The 4K/HD ratio runs above the paper's 4.6x because our "
            "control-stream overheads scale with resolution; the paper's "
            "decoder has fixed-size overheads that favour HD."
        ),
    )


def fig15_sw_encoder_energy() -> FigureResult:
    """Figure 15: software encoder energy by function (HD)."""
    ch = _encode_characterization()
    shares = ch.energy_shares()
    rows = [{"function": name, "energy_share": share} for name, share in shares.items()]
    return FigureResult(
        figure_id="Figure 15",
        title="VP9 software encoder energy by function (HD)",
        rows=rows,
        anchors={
            "motion estimation share": (0.396, shares["motion_estimation"]),
            "data-movement fraction of encoder energy": (
                0.591,
                ch.data_movement_fraction,
            ),
            "ME movement share of total": (
                0.213,
                ch.movement_share_of_workload("motion_estimation"),
            ),
            "movement fraction within ME": (
                0.547,
                ch.movement_fraction_of_function("motion_estimation"),
            ),
        },
    )


def fig16_hw_encoder_traffic() -> FigureResult:
    """Figure 16: hardware encoder off-chip traffic, HD + 4K."""
    rows = []
    anchors = {}
    for res in ("HD", "4K"):
        w, h = RESOLUTIONS[res]
        model = HardwareEncoderModel(w, h)
        for compression in (False, True):
            t = model.traffic(compression)
            row = {"resolution": res, "compression": compression}
            row.update({k: v / MB for k, v in t.components.items()})
            row["total_MB"] = t.total / MB
            rows.append(row)
    hd = HardwareEncoderModel(*RESOLUTIONS["HD"])
    anchors["HD nocomp reference-frame share"] = (
        0.651,
        hd.traffic(False).share("Reference Frame"),
    )
    anchors["HD current-frame share, nocomp"] = (
        0.142,
        hd.traffic(False).share("Current Frame"),
    )
    anchors["HD current-frame share, comp"] = (
        0.319,
        hd.traffic(True).share("Current Frame"),
    )
    return FigureResult(
        figure_id="Figure 16",
        title="VP9 hardware encoder off-chip traffic breakdown",
        rows=rows,
        anchors=anchors,
    )


def fig20_video_pim() -> FigureResult:
    """Figure 20: video kernels on CPU-Only / PIM-Core / PIM-Acc."""
    result = ExperimentRunner().evaluate(video_pim_targets())
    me = result.by_name("motion_estimation")
    return FigureResult(
        figure_id="Figure 20",
        title="Video kernels: normalized energy and runtime",
        rows=result.rows(),
        anchors={
            "mean PIM-Core energy reduction": (
                0.468,
                result.mean_pim_core_energy_reduction,
            ),
            "mean PIM-Acc energy reduction": (
                0.666,
                result.mean_pim_acc_energy_reduction,
            ),
            "mean PIM-Core speedup": (1.236, result.mean_pim_core_speedup),
            "mean PIM-Acc speedup": (1.702, result.mean_pim_acc_speedup),
            "motion estimation PIM-Acc speedup": (2.1, me.pim_acc_speedup),
            "motion estimation PIM-Core speedup": (1.126, me.pim_core_speedup),
        },
    )


def fig21_hw_codec_pim() -> FigureResult:
    """Figure 21: hardware codec energy, VP9 vs PIM-Core vs PIM-Acc."""
    rows = []
    anchors = {}
    for label, model in (
        ("decoder", HardwareDecoderModel(*RESOLUTIONS["4K"])),
        ("encoder", HardwareEncoderModel(*RESOLUTIONS["HD"])),
    ):
        for name, compression, placement in model.configurations():
            e = model.energy(compression, placement)
            rows.append(
                {
                    "codec": label,
                    "config": name,
                    "dram_mJ": e.dram * 1e3,
                    "memctrl_mJ": e.memctrl * 1e3,
                    "interconnect_mJ": e.interconnect * 1e3,
                    "computation_mJ": e.computation * 1e3,
                    "total_mJ": e.total * 1e3,
                }
            )
        base = model.energy(False, PimPlacement.NONE)
        base_comp = model.energy(True, PimPlacement.NONE)
        acc = model.energy(False, PimPlacement.PIM_ACC)
        acc_comp = model.energy(True, PimPlacement.PIM_ACC)
        core_comp = model.energy(True, PimPlacement.PIM_CORE)
        movement = (base.dram + base.memctrl + base.interconnect) / base.total
        paper_move = 0.692 if label == "decoder" else 0.715
        anchors["%s baseline movement share" % label] = (paper_move, movement)
        paper_red = 0.751 if label == "decoder" else 0.698
        anchors["%s PIM-Acc energy reduction (w/ comp)" % label] = (
            paper_red,
            1.0 - acc_comp.total / base_comp.total,
        )
        anchors["%s PIM-Core overhead vs baseline (w/ comp)" % label] = (
            0.634 if label == "decoder" else 0.634,
            core_comp.total / base_comp.total - 1.0,
        )
        anchors["%s PIM-Acc nocomp beats baseline comp" % label] = (
            1.0,
            1.0 if acc.total < base_comp.total else 0.0,
        )
    return FigureResult(
        figure_id="Figure 21",
        title="Hardware codec energy: VP9 / +PIM-Core / +PIM-Acc",
        rows=rows,
        anchors=anchors,
        notes=(
            "PIM-Acc reductions are smaller than the paper's (-35% vs "
            "-75%): we charge internal 3D-stacked accesses half the "
            "off-chip per-bit energy (conservative), while the paper's "
            "HMC-derived estimates make in-memory traffic nearly free. "
            "All qualitative orderings match, including PIM-Core losing "
            "to the compression-enabled baseline and PIM-Acc without "
            "compression beating the baseline with compression."
        ),
    )
