"""Reproduction scorecard: how many paper anchors does the repo hit?

Aggregates every figure's (paper, measured) anchor pairs into a single
pass/fail table under the repository's standard tolerances (absolute
+-0.10 for fractions, relative +-40% for magnitudes), giving a one-look
answer to "how faithful is this reproduction?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.base import FigureResult

#: Default tolerances (see tests/analysis/test_figures.py for the
#: per-anchor values used in the regression suite).
FRACTION_TOLERANCE = 0.10
MAGNITUDE_TOLERANCE = 0.40


@dataclass(frozen=True)
class AnchorScore:
    """One anchor's verdict."""

    figure_id: str
    anchor: str
    paper: float
    measured: float
    within: bool

    @property
    def deviation(self) -> float:
        """Absolute deviation for fractions, relative for magnitudes."""
        if abs(self.paper) <= 1.0:
            return abs(self.measured - self.paper)
        if self.paper == 0.0:
            return abs(self.measured)
        return abs(self.measured / self.paper - 1.0)


@dataclass
class Scorecard:
    """All anchors, scored."""

    scores: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.scores)

    @property
    def passed(self) -> int:
        return sum(1 for s in self.scores if s.within)

    @property
    def pass_rate(self) -> float:
        return self.passed / self.total if self.total else 0.0

    def failures(self) -> list:
        return [s for s in self.scores if not s.within]

    def worst(self, count: int = 5) -> list:
        return sorted(self.scores, key=lambda s: s.deviation, reverse=True)[:count]

    def render_text(self) -> str:
        lines = [
            "reproduction scorecard: %d/%d anchors within tolerance (%.0f%%)"
            % (self.passed, self.total, 100 * self.pass_rate)
        ]
        for s in self.failures():
            lines.append(
                "  MISS  %-10s %-55s paper %.3f vs %.3f"
                % (s.figure_id, s.anchor[:55], s.paper, s.measured)
            )
        return "\n".join(lines)


def score_figures(results: list[FigureResult]) -> Scorecard:
    """Score every anchor of the given figure results."""
    card = Scorecard()
    for result in results:
        for name in result.anchors:
            paper, measured = result.anchors[name]
            tolerance = (
                FRACTION_TOLERANCE if abs(float(paper)) <= 1.0 else MAGNITUDE_TOLERANCE
            )
            card.scores.append(
                AnchorScore(
                    figure_id=result.figure_id,
                    anchor=name,
                    paper=float(paper),
                    measured=float(measured),
                    within=result.anchor_within(name, tolerance),
                )
            )
    return card


def full_scorecard() -> Scorecard:
    """Regenerate every experiment and score all anchors."""
    from repro.analysis.report import all_results

    return score_figures(all_results())
