"""Cache design-space sweeps: trace once, evaluate many geometries.

The paper's locality arguments (packed GEMM operands, tiled textures)
are claims about how an access stream interacts with a cache hierarchy.
This module turns them into design-space sweeps: each workload's memory
trace is materialized **once** as an on-disk columnar artifact
(:class:`repro.sim.artifact.TraceStore`) and then replayed under a grid
of cache geometries — by default through the config-batched engine
(:func:`repro.sim.batch.replay_batch`), which evaluates every geometry
in a single pass over the shared run stream and is bit-identical per
config to the serial path.

Layer composition (deliberately the same stack as the figure sweeps):

* the **artifact** layer deduplicates kernel tracing across sweep
  points, processes, and sessions, keyed by workload + code version;
* the **memo** layer (:class:`repro.core.memo.MemoCache`) caches whole
  sweep results, keyed by the artifact's ``content_hash`` + the
  geometry grid, so a repeated sweep is a single JSON read;
* the **resilience** layer (checkpoint / retry policy, forwarded to
  :class:`repro.core.runner.ConfigSweep`) quarantines a faulty
  geometry without discarding the shared trace.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.config import KB, MB, CacheConfig, SocConfig, soc_cache_label
from repro.obs.recorder import get_recorder


def _gemm_trace(packed: bool):
    from repro.workloads.tensorflow.access_patterns import gemm_lhs_trace

    # One 128x512 LHS operand re-traversed by 4 RHS blocks: small enough
    # to sweep quickly, large enough (64 kB operand) that geometry
    # choices move the miss counts.
    return gemm_lhs_trace(m=128, k=512, n_blocks=4, packed=packed)


def _compositing_trace(tiled: bool):
    from repro.workloads.chrome.texture import compositing_trace

    return compositing_trace(width=512, height=256, tiled=tiled)


#: Sweepable workloads: name -> zero-argument trace builder.  Names are
#: part of the artifact-store key; keep them stable.
WORKLOADS = {
    "tensorflow.gemm_unpacked": lambda: _gemm_trace(packed=False),
    "tensorflow.gemm_packed": lambda: _gemm_trace(packed=True),
    "chrome.compositing_linear": lambda: _compositing_trace(tiled=False),
    "chrome.compositing_tiled": lambda: _compositing_trace(tiled=True),
}


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


def default_geometry_grid() -> list[SocConfig]:
    """The default sweep grid: 3 L1 sizes x 3 LLC sizes around Table 1.

    The paper's SoC (64 kB L1 / 2 MB LLC) sits at the center; the grid
    halves and doubles each level so every workload's sweep shows where
    its working set falls out of (or into) each cache.
    """
    l1s = [
        CacheConfig(size_bytes=32 * KB, associativity=4),
        CacheConfig(size_bytes=64 * KB, associativity=4),
        CacheConfig(size_bytes=128 * KB, associativity=8),
    ]
    llcs = [
        CacheConfig(size_bytes=1 * MB, associativity=8, hit_latency_cycles=20),
        CacheConfig(size_bytes=2 * MB, associativity=8, hit_latency_cycles=20),
        CacheConfig(size_bytes=4 * MB, associativity=16, hit_latency_cycles=20),
    ]
    return [SocConfig(l1=l1, l2=llc) for l1 in l1s for llc in llcs]


def run_sweep(
    workload: str,
    socs=None,
    batch: bool = True,
    store=None,
    cache=None,
    jobs: int = 1,
    retry_policy=None,
    checkpoint=None,
    resume: bool = False,
    timing_params=None,
    instructions_per_access: float = 2.0,
    pool_factory=None,
) -> dict:
    """Sweep one workload's trace across cache geometries.

    Returns a JSON-able document::

        {"workload", "artifact",   # trace content hash
         "batched",                # engine actually used for fresh rows
         "rows": [...],            # one dict per surviving geometry
         "failures": [...]}        # quarantined geometries, if any

    Args:
        workload: a :data:`WORKLOADS` name.
        socs: geometry grid (default :func:`default_geometry_grid`).
        batch: evaluate fresh geometries in one batched pass (serial
            fallback still applies under a retry policy).
        store: :class:`~repro.sim.artifact.TraceStore` holding the
            shared artifacts (default: the package cache directory).
        cache: optional :class:`~repro.core.memo.MemoCache`; hits skip
            the replay entirely.  Degraded (quarantine) results are
            never memoized.
        jobs / retry_policy / checkpoint / resume / pool_factory:
            forwarded to :class:`~repro.core.runner.ConfigSweep.evaluate`
            (``pool_factory`` is the executor seam — e.g. a fleet of
            remote workers via :func:`repro.fleet.fleet_pool_factory`).
    """
    from repro.core.runner import ConfigSweep
    from repro.sim.artifact import TraceStore
    from repro.sim.timing import TimingParameters

    try:
        builder = WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            "unknown sweep workload %r; available: %s"
            % (workload, ", ".join(workload_names()))
        ) from None
    socs = list(socs) if socs is not None else default_geometry_grid()
    timing_params = timing_params or TimingParameters()
    store = store or TraceStore()
    recorder = get_recorder()
    with recorder.span("analysis.cachesweep.%s" % workload):
        artifact = store.get_or_build(workload, builder)
        memo_config = None
        if cache is not None:
            memo_config = {
                "artifact": artifact.content_hash,
                "configs": [soc_cache_label(s) for s in socs],
                "timing": asdict(timing_params),
                "instructions_per_access": instructions_per_access,
            }
            hit = cache.get("cachesweep.%s" % workload, memo_config)
            if hit is not None:
                return hit
        sweep = ConfigSweep(
            artifact,
            timing_params=timing_params,
            instructions_per_access=instructions_per_access,
        )
        result = sweep.evaluate(
            socs,
            batch=batch,
            jobs=jobs,
            retry_policy=retry_policy,
            checkpoint=checkpoint,
            resume=resume,
            pool_factory=pool_factory,
        )
        document = {
            "workload": workload,
            "artifact": artifact.content_hash,
            "batched": result.batched,
            "rows": result.rows,
            "failures": [
                {"config": f.target, "attempts": f.attempts, "error": f.error}
                for f in result.failures
            ],
        }
        if cache is not None and not result.degraded:
            cache.put("cachesweep.%s" % workload, document, memo_config)
    return document


#: Per-process settings for cross-workload fan-out (set by the pool
#: initializer); workers rebuild their own store/cache handles from it.
_WORKLOAD_STATE = None


def _init_workload_worker(settings, observe: bool = False):
    global _WORKLOAD_STATE
    from repro.core.runner import _install_worker_fault_handlers

    _WORKLOAD_STATE = settings
    _install_worker_fault_handlers()
    if observe:
        from repro.obs.recorder import Recorder, set_recorder

        set_recorder(Recorder())


def _sweep_workload_in_worker(job):
    """One workload's sweep document, built from per-process handles.

    The worker opens its own :class:`TraceStore` (artifact saves are
    atomic, so concurrent builders converge on identical files) and its
    own :class:`MemoCache` (per-process segment blobs make concurrent
    writers safe by construction).
    """
    from repro.core.memo import MemoCache
    from repro.core.resilience import maybe_inject_fault
    from repro.sim.artifact import TraceStore

    name, checkpoint, inner_jobs = job
    maybe_inject_fault(name)
    s = _WORKLOAD_STATE
    store = TraceStore(s["store_dir"], version=s["store_version"])
    cache = None
    if s.get("cache_url") is not None:
        from repro.fleet.cache import RemoteMemoCache

        cache = RemoteMemoCache(s["cache_url"], version=s["cache_version"])
    elif s["cache_dir"] is not None:
        cache = MemoCache(
            s["cache_dir"],
            version=s["cache_version"],
            flush_every=s["cache_flush_every"],
        )
    try:
        return run_sweep(
            name,
            socs=s["socs"],
            batch=s["batch"],
            store=store,
            cache=cache,
            jobs=inner_jobs,
            retry_policy=s["retry_policy"],
            checkpoint=checkpoint,
            resume=s["resume"],
            timing_params=s["timing_params"],
            instructions_per_access=s["instructions_per_access"],
        )
    finally:
        if cache is not None:
            cache.close()


def _sweep_workload_in_worker_observed(job):
    """Workload task when observability is on: (document, obs snapshot)."""
    recorder = get_recorder()
    recorder.reset()
    with recorder.span("analysis.cachesweep.worker.%s" % job[0]):
        document = _sweep_workload_in_worker(job)
    return document, recorder.snapshot()


def plan_inner_jobs(jobs: int, n_workloads: int) -> list[int]:
    """Distribute a ``--jobs`` budget across workload fan-out workers.

    Each of the ``n_workloads`` outer workers gets at least one inner
    job; surplus cores (``jobs > n_workloads``) are spread
    deterministically, the first ``jobs % n_workloads`` workloads (in
    list order) receiving one extra.  ``sum(plan) == max(jobs,
    n_workloads)``, so the sweep never idles cores it was granted nor
    oversubscribes beyond the rounding a floor split requires.
    """
    n_workloads = max(int(n_workloads), 1)
    jobs = max(int(jobs), 1)
    if jobs <= n_workloads:
        return [1] * n_workloads
    base, extra = divmod(jobs, n_workloads)
    return [base + 1 if i < extra else base for i in range(n_workloads)]


def sweep_all(
    workloads=None,
    socs=None,
    batch: bool = True,
    store=None,
    cache=None,
    jobs: int = 1,
    retry_policy=None,
    checkpoint=None,
    resume: bool = False,
    timing_params=None,
    instructions_per_access: float = 2.0,
    pool_factory=None,
) -> dict[str, dict]:
    """:func:`run_sweep` for several workloads sharing one store.

    With ``jobs > 1`` and more than one workload, sweeps fan out across
    pool workers — one workload per worker, dispatched through
    :class:`~repro.core.resilience.ResilientMap` so crash/hang/retry
    semantics match every other sweep; a workload that exhausts its
    retries contributes a failure document instead of aborting the
    rest.  Surplus jobs beyond the workload count flow into each
    workload's sharded batch engine (:func:`plan_inner_jobs`), so
    ``--workload all --jobs 8`` with 3 workloads still uses 8 cores.
    With a single workload, ``jobs`` flows into the sharded batch
    engine (:meth:`~repro.core.runner.ConfigSweep.evaluate`) directly.
    ``checkpoint`` is a journal *path prefix*: with several workloads
    each gets its own ``<prefix>.<workload>`` journal (each sweep has
    its own artifact hash, and a shared file would rotate itself stale
    on every workload switch).  ``pool_factory`` is the executor seam
    (forwarded to the fan-out map, or to the shard map for a single
    workload) — a fleet factory here runs the sweep across remote
    workers with identical retry/quarantine/checkpoint semantics.
    """
    from repro.sim.artifact import TraceStore

    store = store or TraceStore()
    names = list(workloads) if workloads is not None else workload_names()

    def checkpoint_for(name):
        if checkpoint is None:
            return None
        if len(names) > 1:
            return "%s.%s" % (checkpoint, name)
        return checkpoint

    if jobs > 1 and len(names) > 1:
        return _sweep_all_parallel(
            names, socs, batch, store, cache, jobs, retry_policy,
            checkpoint_for, resume, timing_params, instructions_per_access,
            pool_factory,
        )
    return {
        name: run_sweep(
            name,
            socs=socs,
            batch=batch,
            store=store,
            cache=cache,
            jobs=jobs,
            retry_policy=retry_policy,
            checkpoint=checkpoint_for(name),
            resume=resume,
            timing_params=timing_params,
            instructions_per_access=instructions_per_access,
            pool_factory=pool_factory,
        )
        for name in names
    }


def _sweep_all_parallel(
    names, socs, batch, store, cache, jobs, retry_policy,
    checkpoint_for, resume, timing_params, instructions_per_access,
    pool_factory=None,
):
    from repro.core.resilience import ResilientMap

    recorder = get_recorder()
    observe = recorder.enabled
    cache_url = getattr(cache, "base_url", None)
    settings = {
        "socs": list(socs) if socs is not None else None,
        "batch": batch,
        "store_dir": str(store.directory),
        "store_version": store.version,
        "cache_url": cache_url,
        "cache_dir": (
            str(cache.directory)
            if cache is not None and cache_url is None else None
        ),
        "cache_version": cache.version if cache is not None else None,
        "cache_flush_every": (
            cache._store.flush_every
            if cache is not None and cache_url is None else 1
        ),
        "retry_policy": retry_policy,
        "resume": resume,
        "timing_params": timing_params,
        "instructions_per_access": instructions_per_access,
    }
    jobs_used = min(jobs, len(names))
    inner_jobs = plan_inner_jobs(jobs, len(names))
    values, failures = ResilientMap(
        _sweep_workload_in_worker_observed if observe else _sweep_workload_in_worker,
        [
            (name, checkpoint_for(name), inner)
            for name, inner in zip(names, inner_jobs)
        ],
        names=list(names),
        policy=retry_policy,
        jobs=jobs_used,
        initializer=_init_workload_worker,
        initargs=(settings, observe),
        raise_failures=retry_policy is None,
        pool_factory=pool_factory,
    ).run()
    documents = {}
    for name, value in zip(names, values):
        if value is None:
            continue
        if observe:
            document, snapshot = value
            recorder.merge_snapshot(snapshot)
        else:
            document = value
        documents[name] = document
    for failure in failures:
        # A quarantined *workload* (its worker kept dying) still gets a
        # document, shaped like a fully-failed sweep, so reports can
        # annotate it instead of silently dropping the workload.
        documents[failure.target] = {
            "workload": failure.target,
            "artifact": None,
            "batched": False,
            "rows": [],
            "failures": [
                {
                    "config": "*",
                    "attempts": failure.attempts,
                    "error": failure.error,
                }
            ],
        }
    if observe:
        recorder.counters.add(
            "analysis.cachesweep.parallel_workloads", len(names)
        )
        recorder.counters.max("core.runner.pool_workers", jobs_used)
    return {name: documents[name] for name in names if name in documents}
