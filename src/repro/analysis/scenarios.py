"""End-to-end consumer scenarios.

The paper's unit of analysis is the kernel; a user's unit is the session.
This module composes the workload models into named, realistic sessions
-- a casual browse, a movie, a video call, a photo-organizing run --
and reports what PIM buys for each: energy, battery minutes, and the
share of the session the offloaded kernels cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.offload import OffloadEngine
from repro.core.workload import WorkloadFunction, offloaded_totals

WH = 3600.0


@dataclass(frozen=True)
class Scenario:
    """A named session: a list of (weight, workload functions) parts.

    ``weight`` scales each part's profiles (e.g. minutes of activity
    relative to the part's native duration).
    """

    name: str
    parts: tuple  # of (weight, list[WorkloadFunction])
    description: str = ""

    def functions(self) -> list[WorkloadFunction]:
        out = []
        for index, (weight, functions) in enumerate(self.parts):
            for f in functions:
                out.append(
                    WorkloadFunction(
                        name="p%d_%s" % (index, f.name),
                        profile=f.profile.scaled(weight),
                        accelerator_key=f.accelerator_key,
                        invocations=max(int(f.invocations * weight), 1),
                    )
                )
        return out


@dataclass(frozen=True)
class ScenarioResult:
    """PIM's effect on one scenario."""

    scenario: str
    cpu_energy_j: float
    pim_energy_j: float
    cpu_time_s: float
    pim_time_s: float

    @property
    def energy_reduction(self) -> float:
        if self.cpu_energy_j <= 0:
            return 0.0
        return 1.0 - self.pim_energy_j / self.cpu_energy_j

    @property
    def speedup(self) -> float:
        return self.cpu_time_s / self.pim_time_s if self.pim_time_s > 0 else 0.0

    def battery_minutes_saved(
        self, battery_wh: float = 38.0, fixed_power_w: float = 2.2
    ) -> float:
        """Extra screen-on minutes if the whole battery ran this scenario
        in a loop, on top of a fixed display/rail power (the same constant
        as :class:`repro.energy.battery.DeviceConfig`)."""
        if self.cpu_energy_j <= 0 or self.pim_energy_j <= 0:
            return 0.0
        budget = battery_wh * WH
        cpu_power = fixed_power_w + self.cpu_energy_j / self.cpu_time_s
        pim_power = fixed_power_w + self.pim_energy_j / self.cpu_time_s
        return (budget / pim_power - budget / cpu_power) / 60.0


def _browse_part(minutes: float):
    from repro.workloads.chrome.pages import PAGES

    # One scroll session is ~2 s of interaction; scale to minutes.
    return (minutes * 60 / 2.0 / 6, PAGES["Google Docs"].scrolling_functions())


def _tabs_part(sessions: float):
    from repro.workloads.chrome.zram import TabSwitchingSession

    return (sessions, TabSwitchingSession().workload_functions())


def _playback_part(minutes: float, resolution=(1280, 720)):
    from repro.workloads.vp9.profiles import decoder_functions

    w, h = resolution
    return (1.0, decoder_functions(w, h, int(minutes * 60 * 30)))


def _capture_part(minutes: float):
    from repro.workloads.vp9.profiles import encoder_functions

    return (1.0, encoder_functions(1280, 720, int(minutes * 60 * 30)))


def _inference_part(images: int):
    from repro.workloads.tensorflow.models import resnet_v2_152
    from repro.workloads.tensorflow.network import network_functions

    return (float(images), network_functions(resnet_v2_152()))


def standard_scenarios() -> list[Scenario]:
    """The four canonical sessions."""
    return [
        Scenario(
            name="casual browsing (30 min)",
            parts=(_browse_part(30.0), _tabs_part(0.5)),
            description="scrolling Google services + some tab churn",
        ),
        Scenario(
            name="movie night (90 min HD)",
            parts=(_playback_part(90.0),),
            description="continuous HD playback",
        ),
        Scenario(
            name="video call (20 min)",
            parts=(_capture_part(20.0), _playback_part(20.0)),
            description="two-way HD: encode the camera, decode the peer",
        ),
        Scenario(
            name="photo organizing (200 images)",
            parts=(_inference_part(200), _browse_part(5.0)),
            description="on-device classification + light browsing",
        ),
    ]


def evaluate_scenario(
    scenario: Scenario, engine: OffloadEngine | None = None
) -> ScenarioResult:
    engine = engine or OffloadEngine()
    totals = offloaded_totals(scenario.functions(), engine)
    return ScenarioResult(
        scenario=scenario.name,
        cpu_energy_j=totals.cpu_energy_j,
        pim_energy_j=totals.pim_energy_j,
        cpu_time_s=totals.cpu_time_s,
        pim_time_s=totals.pim_time_s,
    )


def evaluate_all(engine: OffloadEngine | None = None) -> list[ScenarioResult]:
    engine = engine or OffloadEngine()
    return [evaluate_scenario(s, engine) for s in standard_scenarios()]
