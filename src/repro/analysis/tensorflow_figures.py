"""TensorFlow Mobile figure harnesses (paper Figures 6, 7, 19)."""

from __future__ import annotations

from repro.analysis.base import FigureResult
from repro.core.runner import ExperimentRunner
from repro.core.workload import characterize
from repro.workloads.tensorflow.models import all_models
from repro.workloads.tensorflow.network import network_functions
from repro.workloads.tensorflow.targets import (
    GemmPipelineModel,
    tensorflow_pim_targets,
)


def fig06_tf_energy() -> FigureResult:
    """Figure 6: inference energy breakdown by function, four networks."""
    rows = []
    pq = []
    for net in all_models():
        ch = characterize(net.name, network_functions(net))
        shares = ch.energy_shares()
        rows.append(
            {
                "network": net.name,
                "packing": shares["packing"],
                "quantization": shares["quantization"],
                "conv2d_matmul": shares["conv2d_matmul"],
                "other": shares["other"],
            }
        )
        pq.append(shares["packing"] + shares["quantization"])
    ch_resnet = characterize("ResNet-V2-152", network_functions(all_models()[0]))
    movement = [
        characterize(n.name, network_functions(n)).data_movement_fraction
        for n in all_models()
    ]
    return FigureResult(
        figure_id="Figure 6",
        title="TensorFlow Mobile energy breakdown by function",
        rows=rows,
        anchors={
            "avg packing+quantization energy share": (0.393, sum(pq) / len(pq)),
            "avg data-movement fraction of inference": (
                0.573,
                sum(movement) / len(movement),
            ),
            "ResNet quantization energy share": (
                0.161,
                ch_resnet.energy_share("quantization"),
            ),
        },
    )


def fig07_tf_time() -> FigureResult:
    """Figure 7: inference execution-time breakdown."""
    rows = []
    pq = []
    for net in all_models():
        ch = characterize(net.name, network_functions(net))
        shares = ch.time_shares()
        rows.append(
            {
                "network": net.name,
                "packing": shares["packing"],
                "quantization": shares["quantization"],
                "conv2d_matmul": shares["conv2d_matmul"],
                "other": shares["other"],
            }
        )
        pq.append(shares["packing"] + shares["quantization"])
    return FigureResult(
        figure_id="Figure 7",
        title="TensorFlow Mobile execution-time breakdown",
        rows=rows,
        anchors={
            "avg packing+quantization time share": (0.274, sum(pq) / len(pq)),
        },
    )


def fig19_tf_pim() -> FigureResult:
    """Figure 19: packing/quantization PIM energy + GEMM-sweep speedups."""
    energy = ExperimentRunner().evaluate(tensorflow_pim_targets())
    sweep = GemmPipelineModel().sweep([1, 2, 4, 8, 16])
    rows = energy.rows()
    for point in sweep:
        rows.append(
            {
                "num_gemms": point.num_gemms,
                "speedup_pim_core": point.pim_core_speedup,
                "speedup_pim_acc": point.pim_acc_speedup,
            }
        )
    return FigureResult(
        figure_id="Figure 19",
        title="TensorFlow kernels: PIM energy and GEMM-count sweep",
        rows=rows,
        anchors={
            "mean PIM-Core energy reduction": (
                0.509,
                energy.mean_pim_core_energy_reduction,
            ),
            "mean PIM-Acc energy reduction": (
                0.549,
                energy.mean_pim_acc_energy_reduction,
            ),
            "PIM-Core speedup at 16 GEMMs": (1.572, sweep[-1].pim_core_speedup),
            "PIM-Acc speedup at 16 GEMMs": (1.981, sweep[-1].pim_acc_speedup),
        },
        notes=(
            "The sweep reproduces the growth of speedup with GEMM count; "
            "our pipeline model gives a smaller PIM-Acc-over-PIM-Core gap "
            "than the paper's gem5 simulation."
        ),
    )
