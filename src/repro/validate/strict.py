"""Strict-mode state and runtime invariant checks.

Strict mode is the opt-in half of the validation layer: construction-
time :class:`~repro.validate.errors.ConfigError` checks always run, but
conservation invariants over *runtime* state (cache accounting, energy
breakdowns, MSHR occupancy, trace line-run structure) cost cycles on
hot paths, so they only run when one of three switches is on:

* a ``strict=True`` argument at a call site that supports it
  (``CacheHierarchy.replay(trace, strict=True)``);
* the :func:`strict_mode` context manager (used by the CLI's
  ``--strict`` flag);
* the ``REPRO_STRICT`` environment variable (used by CI to run the
  whole tier-1 suite with invariants armed).

Every :func:`invariant` evaluation publishes a
``validate.<name>.checks`` counter through the active observability
recorder, and a failed one publishes ``validate.<name>.violations``
*before* raising :class:`~repro.validate.errors.InvariantError` — so a
run manifest records both that the checks ran and whether anything
broke.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.obs.recorder import get_recorder
from repro.validate.errors import InvariantError

_FALSY = ("", "0", "false", "no", "off")

#: Process-wide override; ``None`` defers to the environment.
_STRICT: bool | None = None


def strict_enabled() -> bool:
    """Whether strict mode is globally on (override or ``REPRO_STRICT``)."""
    if _STRICT is not None:
        return _STRICT
    return os.environ.get("REPRO_STRICT", "").strip().lower() not in _FALSY


def resolve_strict(flag: bool | None = None) -> bool:
    """Effective strictness for a call site: explicit flag wins, else global."""
    if flag is None:
        return strict_enabled()
    return bool(flag)


def set_strict(enabled: bool | None):
    """Set (or with ``None`` clear) the global strict override.

    Returns the previous override so callers can restore it.
    """
    global _STRICT
    previous = _STRICT
    _STRICT = enabled if enabled is None else bool(enabled)
    return previous


@contextmanager
def strict_mode(enabled: bool = True):
    """Force strict mode on (or off) for the duration of a ``with`` block."""
    previous = set_strict(enabled)
    try:
        yield
    finally:
        set_strict(previous)


def invariant(condition: bool, name: str, detail: str = "") -> None:
    """Assert one named runtime invariant.

    Publishes ``validate.<name>.checks`` through the active recorder;
    on failure additionally publishes ``validate.<name>.violations``
    and raises :class:`InvariantError`.  Call sites are expected to
    gate the call (and any expensive ``detail`` construction) on
    :func:`resolve_strict`, so a non-strict run pays nothing.
    """
    counters = get_recorder().counters
    counters.add("validate.%s.checks" % name)
    if not condition:
        counters.add("validate.%s.violations" % name)
        raise InvariantError(name, detail)
