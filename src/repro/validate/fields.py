"""Field-level validators for config dataclasses.

Every helper takes the *owner* (dataclass instance or its name), the
field name, and the value, and raises :class:`ConfigError` naming all
three plus the violated constraint.  The helpers treat ``NaN`` as
invalid everywhere (``NaN`` compares false against every bound, so a
naive ``value <= 0`` check silently accepts it) and reject booleans and
non-numeric types up front so a stray ``None`` or string fails at the
boundary instead of exploding in arithmetic later.

This module deliberately imports nothing but :mod:`repro.validate.
errors`, so :mod:`repro.config` can use it without import cycles.
"""

from __future__ import annotations

import math

from repro.validate.errors import ConfigError


def _owner_name(owner) -> str:
    if isinstance(owner, str):
        return owner
    return type(owner).__name__


def _as_number(owner, field: str, value, constraint: str) -> float:
    """Reject non-numeric values (including bool) with a ConfigError."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(_owner_name(owner), field, value, constraint)
    return value


def require_finite(owner, field: str, value) -> None:
    """Reject NaN/inf and non-numeric values."""
    constraint = "must be a finite number"
    number = _as_number(owner, field, value, constraint)
    if not math.isfinite(number):
        raise ConfigError(_owner_name(owner), field, value, constraint)


def require_positive(owner, field: str, value) -> None:
    """Reject values that are not finite and strictly positive."""
    constraint = "must be a positive finite number"
    number = _as_number(owner, field, value, constraint)
    if not math.isfinite(number) or number <= 0:
        raise ConfigError(_owner_name(owner), field, value, constraint)


def require_non_negative(owner, field: str, value) -> None:
    """Reject values that are not finite and >= 0 (NaN included)."""
    constraint = "must be a non-negative finite number"
    number = _as_number(owner, field, value, constraint)
    if not math.isfinite(number) or number < 0:
        raise ConfigError(_owner_name(owner), field, value, constraint)


def require_positive_int(owner, field: str, value) -> None:
    """Reject values that are not integers >= 1."""
    constraint = "must be a positive integer"
    if (
        isinstance(value, bool)
        or not isinstance(value, int)
        or value <= 0
    ):
        raise ConfigError(_owner_name(owner), field, value, constraint)


def require_power_of_two(owner, field: str, value) -> None:
    """Reject values that are not integer powers of two."""
    constraint = "must be a power-of-two integer"
    if (
        isinstance(value, bool)
        or not isinstance(value, int)
        or value <= 0
        or value & (value - 1)
    ):
        raise ConfigError(_owner_name(owner), field, value, constraint)


def require_fraction(owner, field: str, value) -> None:
    """Reject values outside [0, 1] (NaN included)."""
    constraint = "must be a fraction in [0, 1]"
    number = _as_number(owner, field, value, constraint)
    if not math.isfinite(number) or not 0.0 <= number <= 1.0:
        raise ConfigError(_owner_name(owner), field, value, constraint)


def require_at_least(owner, field: str, value, floor, floor_name: str) -> None:
    """Reject ``value < floor`` (cross-field constraints)."""
    constraint = "must be >= %s (%r)" % (floor_name, floor)
    number = _as_number(owner, field, value, constraint)
    if not math.isfinite(number) or number < floor:
        raise ConfigError(_owner_name(owner), field, value, constraint)
