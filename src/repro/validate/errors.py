"""Error types for the validation layer.

Two failure classes exist, with a hard contract the fuzz harness
(``tests/validate``) enforces:

* :class:`ConfigError` — a *boundary* rejection: a config dataclass (or
  another validated input) was constructed with a value that violates a
  physical constraint.  It subclasses :class:`ValueError`, so callers
  that already catch ``ValueError`` keep working; the message always
  names the owning type, the field, the offending value, and the
  constraint, so the error is actionable without a debugger.
* :class:`InvariantError` — a *runtime* conservation law broke while
  strict mode was on (``hits + misses != accesses``, an energy component
  went negative, MSHR occupancy exceeded its bound).  This indicates a
  model bug, not bad user input, so it deliberately does **not**
  subclass ``ValueError``: fuzzed decoders must never raise it.
"""

from __future__ import annotations


class ConfigError(ValueError):
    """A configuration value violates a physical constraint.

    Attributes:
        owner: name of the dataclass (or call site) being validated.
        field: the offending field.
        value: the rejected value.
        constraint: human-readable statement of the violated constraint.
    """

    def __init__(self, owner: str, field: str, value, constraint: str):
        self.owner = owner
        self.field = field
        self.value = value
        self.constraint = constraint
        super().__init__(
            "%s.%s = %r: %s" % (owner, field, value, constraint)
        )


class InvariantError(RuntimeError):
    """A strict-mode runtime invariant was violated.

    Raised only when strict mode is active (``strict=True``,
    :func:`repro.validate.strict_mode`, or ``REPRO_STRICT=1``); the
    matching ``validate.<name>.violations`` counter is published through
    the observability registry before the raise.
    """

    def __init__(self, name: str, detail: str = ""):
        self.invariant = name
        message = "invariant %r violated" % name
        if detail:
            message += ": " + detail
        super().__init__(message)
