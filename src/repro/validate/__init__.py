"""Validation and strict-invariant layer.

Two complementary defenses keep garbage inputs from silently corrupting
reproduction numbers:

* **Boundary validation** — every config dataclass validates its fields
  in ``__post_init__`` using :mod:`repro.validate.fields` and raises
  :class:`ConfigError` (a ``ValueError``) naming the type, field, value,
  and violated constraint.  Degenerate configs like
  ``CacheConfig(size_bytes=0)`` die at construction, not deep inside
  set-index arithmetic.
* **Strict runtime invariants** — opt-in conservation checks
  (``hits + misses == accesses``, energy components finite and
  non-negative, MSHR occupancy bounds, trace line-run structure) armed
  by ``strict=True`` arguments, :func:`strict_mode`, or the
  ``REPRO_STRICT`` environment variable, publishing
  ``validate.<name>.checks`` / ``validate.<name>.violations`` counters
  through the observability registry and raising
  :class:`InvariantError` on violation.

The fuzz harness in ``tests/validate`` pins the exception contract:
nothing fed to the byte-level decoders or the config space may escape
as anything but :class:`ConfigError`/``ValueError``.
"""

from repro.validate.errors import ConfigError, InvariantError
from repro.validate.fields import (
    require_at_least,
    require_finite,
    require_fraction,
    require_non_negative,
    require_positive,
    require_positive_int,
    require_power_of_two,
)
from repro.validate.strict import (
    invariant,
    resolve_strict,
    set_strict,
    strict_enabled,
    strict_mode,
)

__all__ = [
    "ConfigError",
    "InvariantError",
    "require_at_least",
    "require_finite",
    "require_fraction",
    "require_non_negative",
    "require_positive",
    "require_positive_int",
    "require_power_of_two",
    "invariant",
    "resolve_strict",
    "set_strict",
    "strict_enabled",
    "strict_mode",
]
