"""System configurations for the reproduction (paper Table 1).

The paper evaluates a consumer-device SoC (modeled after an Intel Celeron
N3060-class Chromebook part, simulated in gem5 with 4 out-of-order cores)
against the same SoC augmented with processing-in-memory (PIM) logic in the
logic layer of 3D-stacked DRAM.  Every experiment in this repository is
parameterized by the dataclasses below; ``default_system()`` reproduces the
configuration of Table 1.

Units used throughout the code base:
    * sizes      -- bytes
    * bandwidth  -- bytes / second
    * frequency  -- Hz
    * energy     -- joules
    * time       -- seconds
    * area       -- mm^2
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.validate.errors import ConfigError
from repro.validate.fields import (
    require_at_least,
    require_positive,
    require_positive_int,
    require_power_of_two,
)

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class CacheConfig:
    """A single set-associative cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = CACHE_LINE_BYTES
    hit_latency_cycles: int = 2

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def __post_init__(self) -> None:
        require_positive_int(self, "size_bytes", self.size_bytes)
        require_positive_int(self, "associativity", self.associativity)
        require_power_of_two(self, "line_bytes", self.line_bytes)
        require_positive_int(self, "hit_latency_cycles", self.hit_latency_cycles)
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigError(
                type(self).__name__,
                "size_bytes",
                self.size_bytes,
                "must be divisible by line_bytes*associativity (%d*%d)"
                % (self.line_bytes, self.associativity),
            )


@dataclass(frozen=True)
class SocConfig:
    """The consumer-device SoC (paper Table 1, first row).

    4 out-of-order cores, 8-wide issue; 64 kB private L1 I/D caches (4-way);
    2 MB shared L2 (8-way); MESI coherence.  The effective sustained IPC is a
    model parameter (OoO cores do not sustain their issue width on these
    memory-bound kernels).
    """

    num_cores: int = 4
    issue_width: int = 8
    frequency_hz: float = 2.0e9
    sustained_ipc: float = 2.0
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=64 * KB, associativity=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * MB, associativity=8, hit_latency_cycles=20
        )
    )

    def __post_init__(self) -> None:
        require_positive_int(self, "num_cores", self.num_cores)
        require_positive_int(self, "issue_width", self.issue_width)
        require_positive(self, "frequency_hz", self.frequency_hz)
        require_positive(self, "sustained_ipc", self.sustained_ipc)


@dataclass(frozen=True)
class PimCoreConfig:
    """The general-purpose PIM core (paper Table 1, second row).

    One core per vault; 1-wide in-order issue with a 4-wide SIMD unit
    (width chosen empirically in the paper, Section 3.3); 32 kB private L1
    I/D caches.  Modeled on the ARM Cortex-R8.
    """

    cores_per_vault: int = 1
    issue_width: int = 1
    simd_width: int = 4
    frequency_hz: float = 1.5e9
    sustained_ipc: float = 1.0
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * KB, associativity=4)
    )
    area_mm2: float = 0.33  # Cortex-R8 footprint bound (Section 3.3)

    def __post_init__(self) -> None:
        require_positive_int(self, "cores_per_vault", self.cores_per_vault)
        require_positive_int(self, "issue_width", self.issue_width)
        require_positive_int(self, "simd_width", self.simd_width)
        require_positive(self, "frequency_hz", self.frequency_hz)
        require_positive(self, "sustained_ipc", self.sustained_ipc)
        require_positive(self, "area_mm2", self.area_mm2)


@dataclass(frozen=True)
class PimAcceleratorConfig:
    """A fixed-function PIM accelerator (paper Section 3.3).

    Each accelerator consists of several in-memory logic units (four, chosen
    empirically for texture tiling and reused for the other targets), each a
    simple ALU working on an independent chunk of data.  The paper assumes
    accelerator computation is 20x more energy-efficient than the CPU cores.
    """

    logic_units: int = 4
    ops_per_unit_per_cycle: float = 4.0
    frequency_hz: float = 1.0e9
    energy_efficiency_vs_cpu: float = 20.0
    buffer_bytes: int = 32 * KB

    def __post_init__(self) -> None:
        require_positive_int(self, "logic_units", self.logic_units)
        require_positive(self, "ops_per_unit_per_cycle", self.ops_per_unit_per_cycle)
        require_positive(self, "frequency_hz", self.frequency_hz)
        require_positive(self, "energy_efficiency_vs_cpu", self.energy_efficiency_vs_cpu)
        require_positive_int(self, "buffer_bytes", self.buffer_bytes)


@dataclass(frozen=True)
class StackedMemoryConfig:
    """3D-stacked DRAM (paper Table 1, third row).

    A 2 GB HBM/HMC-like cube with 16 vaults.  The logic layer sees the full
    internal bandwidth (256 GB/s); the SoC sees the off-chip channel
    bandwidth (32 GB/s), an 8x difference.
    """

    capacity_bytes: int = 2 * GB
    num_vaults: int = 16
    internal_bandwidth: float = 256 * GB
    offchip_bandwidth: float = 32 * GB
    logic_layer_area_mm2: float = 55.0  # 50-60 mm^2 available (Section 3.3)

    def __post_init__(self) -> None:
        require_positive_int(self, "capacity_bytes", self.capacity_bytes)
        require_positive_int(self, "num_vaults", self.num_vaults)
        require_positive(self, "internal_bandwidth", self.internal_bandwidth)
        require_positive(self, "offchip_bandwidth", self.offchip_bandwidth)
        require_positive(self, "logic_layer_area_mm2", self.logic_layer_area_mm2)
        # The logic layer sits *inside* the stack: it cannot see less
        # bandwidth than the off-chip channel it feeds.
        require_at_least(
            self,
            "internal_bandwidth",
            self.internal_bandwidth,
            self.offchip_bandwidth,
            "offchip_bandwidth",
        )

    @property
    def area_per_vault_mm2(self) -> float:
        """Area available for PIM logic in each vault (~3.5-4.4 mm^2)."""
        return self.logic_layer_area_mm2 / self.num_vaults


@dataclass(frozen=True)
class BaselineMemoryConfig:
    """Baseline (non-stacked) memory: LPDDR3, 2 GB, FR-FCFS scheduling."""

    capacity_bytes: int = 2 * GB
    bandwidth: float = 32 * GB
    scheduler: str = "FR-FCFS"

    def __post_init__(self) -> None:
        require_positive_int(self, "capacity_bytes", self.capacity_bytes)
        require_positive(self, "bandwidth", self.bandwidth)
        if not isinstance(self.scheduler, str) or not self.scheduler:
            raise ConfigError(
                type(self).__name__,
                "scheduler",
                self.scheduler,
                "must be a non-empty scheduler name",
            )


@dataclass(frozen=True)
class SystemConfig:
    """The full evaluated system (paper Table 1)."""

    soc: SocConfig = field(default_factory=SocConfig)
    pim_core: PimCoreConfig = field(default_factory=PimCoreConfig)
    pim_accelerator: PimAcceleratorConfig = field(default_factory=PimAcceleratorConfig)
    stacked_memory: StackedMemoryConfig = field(default_factory=StackedMemoryConfig)
    baseline_memory: BaselineMemoryConfig = field(default_factory=BaselineMemoryConfig)

    _FIELD_TYPES = (
        ("soc", SocConfig),
        ("pim_core", PimCoreConfig),
        ("pim_accelerator", PimAcceleratorConfig),
        ("stacked_memory", StackedMemoryConfig),
        ("baseline_memory", BaselineMemoryConfig),
    )

    def __post_init__(self) -> None:
        for name, expected in self._FIELD_TYPES:
            value = getattr(self, name)
            if not isinstance(value, expected):
                raise ConfigError(
                    type(self).__name__,
                    name,
                    value,
                    "must be a %s instance" % expected.__name__,
                )

    @property
    def bandwidth_ratio(self) -> float:
        """Internal-to-off-chip bandwidth ratio (8x in the paper)."""
        return self.stacked_memory.internal_bandwidth / self.stacked_memory.offchip_bandwidth


def default_system() -> SystemConfig:
    """The Table 1 configuration used by every experiment unless overridden."""
    return SystemConfig()


def cache_label(cache: CacheConfig) -> str:
    """Compact human label for one cache level, e.g. ``64kB/4w``."""
    if cache.size_bytes % MB == 0:
        size = "%dMB" % (cache.size_bytes // MB)
    elif cache.size_bytes % KB == 0:
        size = "%dkB" % (cache.size_bytes // KB)
    else:
        size = "%dB" % cache.size_bytes
    return "%s/%dw" % (size, cache.associativity)


def soc_cache_label(soc: SocConfig) -> str:
    """Stable identity of an SoC's cache geometry, e.g.
    ``l1=64kB/4w,llc=2MB/8w`` — used as the sweep-point name in
    checkpoints, counters, and report rows."""
    return "l1=%s,llc=%s" % (cache_label(soc.l1), cache_label(soc.l2))


def table1_rows(config: SystemConfig | None = None) -> list[tuple[str, str]]:
    """Render Table 1 as (component, description) rows for reports."""
    cfg = config or default_system()
    soc, pim, mem, base = cfg.soc, cfg.pim_core, cfg.stacked_memory, cfg.baseline_memory
    return [
        (
            "SoC",
            "%d OoO cores, %d-wide issue; L1 I/D Caches: %d kB private, "
            "%d-way assoc.; L2 Cache: %d MB shared, %d-way assoc.; Coherence: MESI"
            % (
                soc.num_cores,
                soc.issue_width,
                soc.l1.size_bytes // KB,
                soc.l1.associativity,
                soc.l2.size_bytes // MB,
                soc.l2.associativity,
            ),
        ),
        (
            "PIM Core",
            "%d core per vault, %d-wide issue, %d-wide SIMD unit, "
            "L1 I/D Caches: %d kB private, %d-way assoc."
            % (
                pim.cores_per_vault,
                pim.issue_width,
                pim.simd_width,
                pim.l1.size_bytes // KB,
                pim.l1.associativity,
            ),
        ),
        (
            "3D-Stacked Memory",
            "%d GB cube, %d vaults per cube; Internal Bandwidth: %d GB/s; "
            "Off-Chip Channel Bandwidth: %d GB/s"
            % (
                mem.capacity_bytes // GB,
                mem.num_vaults,
                int(mem.internal_bandwidth // GB),
                int(mem.offchip_bandwidth // GB),
            ),
        ),
        (
            "Baseline Memory",
            "LPDDR3, %d GB, %s scheduler" % (base.capacity_bytes // GB, base.scheduler),
        ),
    ]
