"""Recording backends and the process-global recorder slot.

Observability is off by default: the global slot holds a
:class:`NullRecorder` whose every operation is a constant no-op (shared
singleton span handle, empty counter facade), so instrumented model code
costs one attribute lookup per *stage* — never per access — when nothing
is listening.  Installing a :class:`Recorder` (directly, or via the
:func:`recording` context manager, or the CLI's ``--manifest`` /
``--trace-out`` flags) turns the same call sites into real span and
counter publications.

Publishing layers import :func:`get_recorder` from *this module* (not
the package) so that low-level modules like :mod:`repro.core.memo` can
be instrumented without import cycles.

Cross-process: an active recorder cannot be pickled (it holds locks), so
ProcessPool workers build their own ``Recorder`` and ship
:meth:`Recorder.snapshot` dicts back; the parent folds them in with
:meth:`Recorder.merge_snapshot`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

from repro.obs.counters import CounterRegistry
from repro.obs.spans import SpanRecord


class _NullSpan:
    """A reusable, do-nothing context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _NullCounters:
    """Counter facade whose publications vanish."""

    __slots__ = ()

    def add(self, name, value=1):
        pass

    def set(self, name, value):
        pass

    def get(self, name, default=0):
        return default

    def as_dict(self):
        return {}

    def snapshot(self):
        return {"sums": {}, "gauges": {}}

    def merge(self, snapshot):
        pass

    def clear(self):
        pass

    def __contains__(self, name):
        return False

    def __len__(self):
        return 0


class NullRecorder:
    """The disabled recorder: zero state, every operation a no-op."""

    enabled = False
    counters = _NullCounters()

    def span(self, name: str):
        return _NULL_SPAN

    @property
    def spans(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"counters": {"sums": {}, "gauges": {}}, "spans": []}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass

    def reset(self) -> None:
        pass


class _SpanHandle:
    """A live (open) span; closing it appends a :class:`SpanRecord`."""

    __slots__ = ("_recorder", "name", "span_id", "parent", "depth", "start_s")

    def __init__(self, recorder: "Recorder", name: str):
        self._recorder = recorder
        self.name = name
        self.span_id = -1
        self.parent = -1
        self.depth = 0
        self.start_s = 0.0

    def __enter__(self):
        self._recorder._open(self)
        return self

    def __exit__(self, *exc):
        self._recorder._close(self)
        return False


class Recorder:
    """The active recorder: spans + a counter registry.

    Span bookkeeping uses a per-thread open-span stack (so threads nest
    independently) and a lock around the shared record list and id
    allocator; counters are thread-safe internally.
    """

    enabled = True

    def __init__(self):
        self.counters = CounterRegistry()
        self.epoch_s = time.perf_counter()
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> _SpanHandle:
        """An unopened span handle; use as ``with recorder.span("x"):``."""
        return _SpanHandle(self, name)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, handle: _SpanHandle) -> None:
        stack = self._stack()
        with self._lock:
            handle.span_id = self._next_id
            self._next_id += 1
        handle.parent = stack[-1].span_id if stack else -1
        handle.depth = len(stack)
        stack.append(handle)
        handle.start_s = time.perf_counter() - self.epoch_s

    def _close(self, handle: _SpanHandle) -> None:
        end_s = time.perf_counter() - self.epoch_s
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # tolerate out-of-order exits
            stack.remove(handle)
        record = SpanRecord(
            name=handle.name,
            span_id=handle.span_id,
            parent=handle.parent,
            depth=handle.depth,
            start_s=handle.start_s,
            duration_s=max(end_s - handle.start_s, 0.0),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        with self._lock:
            self._records.append(record)

    @property
    def spans(self) -> list[SpanRecord]:
        """All closed spans, in (process, open-time) order."""
        with self._lock:
            records = list(self._records)
        return sorted(records, key=lambda s: (s.pid, s.start_s, s.span_id))

    # ------------------------------------------------------------------
    # Cross-process aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable state: counters + spans (e.g. to return from a worker)."""
        with self._lock:
            spans = [record.to_dict() for record in self._records]
        return {"counters": self.counters.snapshot(), "spans": spans}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a child :meth:`snapshot` into this recorder.

        Child span ids are re-based past this recorder's id space so
        merged records never collide with local ones; parent links within
        the child are re-based consistently.
        """
        self.counters.merge(snapshot.get("counters", {}))
        spans = snapshot.get("spans", [])
        if not spans:
            return
        with self._lock:
            base = self._next_id
            self._next_id += max(s["span_id"] for s in spans) + 1
            for s in spans:
                self._records.append(
                    SpanRecord(
                        name=s["name"],
                        span_id=s["span_id"] + base,
                        parent=s["parent"] + base if s["parent"] >= 0 else -1,
                        depth=s["depth"],
                        start_s=s["start_s"],
                        duration_s=s["duration_s"],
                        pid=s["pid"],
                        tid=s["tid"],
                    )
                )

    def reset(self) -> None:
        """Drop all spans and counters (open spans stay open)."""
        self.counters.clear()
        with self._lock:
            self._records.clear()


#: The process-global recorder; NullRecorder unless observation is on.
_RECORDER: NullRecorder | Recorder = NullRecorder()


def get_recorder() -> NullRecorder | Recorder:
    """The currently installed recorder (never None)."""
    return _RECORDER


def set_recorder(recorder: NullRecorder | Recorder | None):
    """Install ``recorder`` globally (None restores the NullRecorder).

    Returns the previously installed recorder so callers can restore it.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder if recorder is not None else NullRecorder()
    return previous


@contextmanager
def recording(recorder: Recorder | None = None):
    """Install an active recorder for the duration of a ``with`` block::

        with recording() as rec:
            ExperimentRunner().evaluate(targets)
        print(rec.counters.as_dict())
    """
    rec = recorder if recorder is not None else Recorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
