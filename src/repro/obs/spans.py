"""Hierarchical wall-time spans and their export formats.

A span measures one stage of a run (``with recorder.span("sim.cache.replay")``).
Spans nest: the span open at the time a new span starts becomes its
parent, giving each record a parent id and a depth.  The recorder stores
closed spans as immutable :class:`SpanRecord` rows; this module turns
those rows into the two export formats:

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Chrome
  ``chrome://tracing`` / Perfetto JSON format ("X" complete events with
  microsecond timestamps, one row per process/thread);
* :func:`spans_table` — a flat, indented text table for terminals and
  manifests.

Timestamps are seconds relative to the owning recorder's epoch, so spans
merged from worker processes (whose epochs differ) stay internally
consistent per process and render as separate process rows in the trace
viewer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable


@dataclass(frozen=True)
class SpanRecord:
    """One closed span.

    Attributes:
        name: dotted stage name, e.g. ``"core.runner.evaluate"``.
        span_id: allocation-ordered id, unique within one recorder.
        parent: ``span_id`` of the enclosing span, or ``-1`` for roots.
        depth: nesting depth at open time (0 = top level).
        start_s: open time, seconds since the recorder's epoch.
        duration_s: wall time between open and close (never negative).
        pid: OS process that recorded the span.
        tid: thread identifier within that process.
    """

    name: str
    span_id: int
    parent: int
    depth: int
    start_s: float
    duration_s: float
    pid: int
    tid: int

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(**data)


def chrome_trace_events(spans: Iterable[SpanRecord]) -> list[dict]:
    """Spans as Chrome-tracing "X" (complete) events, microsecond units."""
    return [
        {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": span.pid,
            "tid": span.tid,
            "args": {"depth": span.depth, "id": span.span_id},
        }
        for span in sorted(spans, key=lambda s: (s.pid, s.start_s, s.span_id))
    ]


def write_chrome_trace(path: str | Path, spans: Iterable[SpanRecord]) -> Path:
    """Write a ``chrome://tracing``-loadable JSON document to ``path``."""
    path = Path(path)
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as f:
        json.dump(document, f, indent=2)
        f.write("\n")
    return path


def spans_table(spans: Iterable[SpanRecord]) -> str:
    """A flat text table: one indented row per span, durations in ms."""
    rows = sorted(spans, key=lambda s: (s.pid, s.start_s, s.span_id))
    if not rows:
        return "(no spans recorded)"
    width = max(len("  " * s.depth + s.name) for s in rows)
    lines = ["%-*s  %12s  %10s" % (width, "span", "start (ms)", "dur (ms)")]
    for s in rows:
        lines.append(
            "%-*s  %12.3f  %10.3f"
            % (width, "  " * s.depth + s.name, s.start_s * 1e3, s.duration_s * 1e3)
        )
    return "\n".join(lines)
