"""Observability: spans, counter registry, and run manifests.

The measurement substrate for the reproduction.  Three pieces:

* **spans** — hierarchical wall-time measurements of run stages,
  exportable as Chrome ``chrome://tracing`` JSON or a flat text table
  (:mod:`repro.obs.spans`);
* **counter registry** — the export path for every statistic the sim
  (:mod:`repro.sim.cache`, :mod:`repro.sim.dram`,
  :mod:`repro.sim.coherence`), energy (:mod:`repro.energy.model`), and
  core (:mod:`repro.core.runner`, :mod:`repro.core.memo`) layers produce
  (:mod:`repro.obs.counters`);
* **run manifests** — a JSON reproducibility record (source/config
  hashes, versions, counters, spans, headline results) written next to
  every ``figures``/``evaluate`` output (:mod:`repro.obs.manifest`).

Observation is off by default and costs nothing when off: the global
recorder slot holds a :class:`NullRecorder` whose operations are no-ops.
Turn it on around any block of work::

    from repro.obs import recording

    with recording() as rec:
        ExperimentRunner().evaluate(targets)
    print(rec.counters.as_dict()["core.runner.targets"])

or from the CLI with ``--manifest out/ --trace-out trace.json``.
"""

from repro.obs.counters import CounterRegistry
from repro.obs.manifest import (
    build_manifest,
    config_hash,
    headline_from_counters,
    load_manifest,
    manifest_json,
    masked,
    write_manifest,
)
from repro.obs.recorder import (
    NullRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.spans import (
    SpanRecord,
    chrome_trace_events,
    spans_table,
    write_chrome_trace,
)

__all__ = [
    "CounterRegistry",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "build_manifest",
    "chrome_trace_events",
    "config_hash",
    "get_recorder",
    "headline_from_counters",
    "load_manifest",
    "manifest_json",
    "masked",
    "recording",
    "set_recorder",
    "spans_table",
    "write_chrome_trace",
    "write_manifest",
]
