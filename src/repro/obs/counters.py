"""Thread-safe counter/gauge registry.

The registry is the single export path for every quantitative statistic
the model layers produce: the cache simulator's hit/miss/writeback
totals, the DRAM models' request streams, the coherence model's flush
accounting, the energy model's per-component joules, and the runner's
per-target results.  Layers publish into the registry instead of leaving
numbers buried in ad-hoc instance attributes, so a run manifest (and any
regression test) can read them all from one place.

Two kinds of entries exist:

* **counters** (:meth:`CounterRegistry.add`) accumulate — publishing the
  same name twice sums the values (cache replays, kernel energies);
* **gauges** (:meth:`CounterRegistry.set`) record point-in-time values —
  publishing twice keeps the last value (a target's final energy).

Names are dotted paths (``"sim.cache.l1.hits"``) so exports sort into a
readable hierarchy.  All operations take an internal lock, making the
registry safe to publish into from multiple threads; cross-process
aggregation goes through :meth:`snapshot`/:meth:`merge` (the experiment
runner ships worker snapshots back to the parent and merges them).
"""

from __future__ import annotations

import threading


class CounterRegistry:
    """A named collection of additive counters and last-write gauges."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sums: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` into the counter ``name``."""
        with self._lock:
            self._sums[name] = self._sums.get(name, 0) + value

    def set(self, name: str, value: float) -> None:
        """Record ``value`` as the gauge ``name`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def max(self, name: str, value: float) -> None:
        """Record ``value`` as a high-water gauge (largest write wins).

        Used for utilization peaks — e.g. ``core.runner.pool_workers``
        tracks the widest pool a sweep actually spun up, even when
        several sweeps of different widths publish into one registry.
        """
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name: str, default: float = 0):
        with self._lock:
            if name in self._sums:
                return self._sums[name]
            return self._gauges.get(name, default)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sums or name in self._gauges

    def __len__(self) -> int:
        with self._lock:
            return len(self._sums) + len(self._gauges)

    def as_dict(self) -> dict:
        """All entries (counters and gauges) in name-sorted order."""
        with self._lock:
            merged = dict(self._sums)
            merged.update(self._gauges)
        return {name: merged[name] for name in sorted(merged)}

    # ------------------------------------------------------------------
    # Cross-process aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A picklable copy, suitable for shipping between processes."""
        with self._lock:
            return {"sums": dict(self._sums), "gauges": dict(self._gauges)}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters sum, gauges union (the snapshot wins on clashes).
        """
        sums = snapshot.get("sums", {})
        gauges = snapshot.get("gauges", {})
        with self._lock:
            for name, value in sums.items():
                self._sums[name] = self._sums.get(name, 0) + value
            self._gauges.update(gauges)

    def clear(self) -> None:
        with self._lock:
            self._sums.clear()
            self._gauges.clear()
