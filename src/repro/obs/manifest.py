"""Run manifests: the reproducibility record written next to run outputs.

A manifest captures everything needed to audit or re-derive a run's
numbers: what code produced it (the :func:`repro.core.memo.code_version_hash`
source digest), under which configuration (a content hash of the
``SystemConfig``), with which seed and package versions, and — through
the recorder — every published counter and per-stage span.  The CLI's
``--manifest DIR`` flag writes one next to every ``figures``/``evaluate``
output.

The headline paper numbers are *re-derivable* from a manifest alone:
:func:`headline_from_counters` recomputes the mean/max PIM-Core and
PIM-Acc energy reductions and speedups from the per-target
``core.runner.target.*`` gauges, so a stored manifest is sufficient
evidence for the EXPERIMENTS.md claims without re-running the models.

For golden tests, :func:`masked` replaces the volatile fields (wall-clock
times, host, pids, package versions, source digest) with a fixed token;
what remains — counter names *and values*, span structure, config hash —
must be byte-stable run over run, which is exactly the property the
golden-manifest test pins.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.recorder import get_recorder

SCHEMA = "repro-run-manifest/v1"

MASK = "<volatile>"

#: Top-level fields that legitimately differ run-to-run or commit-to-commit.
VOLATILE_KEYS = ("created_at", "host", "pid", "code_version", "versions")

#: Per-span fields that carry wall-clock measurements.
VOLATILE_SPAN_KEYS = ("start_s", "duration_s", "pid", "tid")

MANIFEST_FILENAME = "manifest.json"


def _jsonable(value):
    """Dataclasses/tuples/numpy scalars to plain JSON types, recursively."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return item()
    return value


def config_hash(config) -> str:
    """Content hash of a configuration object (dataclasses welcome)."""
    payload = json.dumps(_jsonable(config), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def build_manifest(
    command: str,
    config=None,
    seed=None,
    results: dict | None = None,
    recorder=None,
    extra: dict | None = None,
) -> dict:
    """Assemble a manifest dict for the current (or given) recorder.

    Args:
        command: what produced this run (e.g. ``"evaluate --workload all"``).
        config: the run's configuration object; hashed into ``config_hash``.
        seed: RNG seed, when the run uses one (the models are deterministic).
        results: headline outputs worth pinning (means, anchor values).
        recorder: defaults to the globally installed recorder.
        extra: additional top-level fields.
    """
    from repro.core.memo import code_version_hash  # lazy: avoids import cycle

    rec = recorder if recorder is not None else get_recorder()
    manifest = {
        "schema": SCHEMA,
        "command": command,
        "created_at": datetime.now(timezone.utc).isoformat(),
        "host": platform.node(),
        "pid": os.getpid(),
        "code_version": code_version_hash(),
        "config_hash": config_hash(config) if config is not None else None,
        "seed": seed,
        "versions": _package_versions(),
        "counters": rec.counters.as_dict(),
        "spans": [span.to_dict() for span in rec.spans],
        "results": results if results is not None else {},
    }
    if extra:
        manifest.update(extra)
    return manifest


def _package_versions() -> dict:
    import numpy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": getattr(repro, "__version__", "unknown"),
    }


def manifest_json(manifest: dict) -> str:
    """The canonical byte-stable serialization (sorted keys, 2-space indent)."""
    return json.dumps(manifest, sort_keys=True, indent=2, default=repr) + "\n"


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Write ``manifest`` to ``path``.

    ``path`` may be a directory (existing, or spelled with a trailing
    separator), in which case ``manifest.json`` is written inside it.
    """
    path = Path(path)
    if path.is_dir() or str(path).endswith(os.sep) or not path.suffix:
        path.mkdir(parents=True, exist_ok=True)
        path = path / MANIFEST_FILENAME
    else:
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        f.write(manifest_json(manifest))
    return path


def load_manifest(path: str | Path) -> dict:
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_FILENAME
    with open(path) as f:
        return json.load(f)


def masked(manifest: dict, mask: str = MASK) -> dict:
    """A copy with run-to-run-volatile fields replaced by ``mask``.

    Counter values, span names/structure, and the config hash survive;
    wall-clock measurements, host identity, and version stamps do not.
    The result is deterministic for a deterministic run — the basis of
    the golden-manifest regression test.
    """
    out = dict(manifest)
    for key in VOLATILE_KEYS:
        if key in out:
            out[key] = mask
    out["spans"] = [
        {
            key: (mask if key in VOLATILE_SPAN_KEYS else value)
            for key, value in span.items()
        }
        for span in manifest.get("spans", [])
    ]
    return out


# ----------------------------------------------------------------------
# Re-deriving headline numbers from a manifest
# ----------------------------------------------------------------------

_TARGET_PREFIX = "core.runner.target."


def headline_from_counters(counters: dict) -> dict:
    """Recompute the paper-style aggregates from per-target gauges.

    The experiment runner publishes, for every target, six gauges::

        core.runner.target.<name>.energy_j.{cpu,pim_core,pim_acc}
        core.runner.target.<name>.time_s.{cpu,pim_core,pim_acc}

    From those this function re-derives the cross-workload means and
    maxima that EXPERIMENTS.md reports (PIM-Acc −55.4% energy / −54.2%
    time headline), without access to the original model objects.
    """
    per_target: dict[str, dict] = {}
    for name, value in counters.items():
        if not name.startswith(_TARGET_PREFIX):
            continue
        target, metric, machine = name[len(_TARGET_PREFIX):].rsplit(".", 2)
        per_target.setdefault(target, {})["%s.%s" % (metric, machine)] = value
    energy_core, energy_acc, speed_core, speed_acc = [], [], [], []
    for target, metrics in sorted(per_target.items()):
        energy_cpu = metrics.get("energy_j.cpu", 0.0)
        time_cpu = metrics.get("time_s.cpu", 0.0)
        if energy_cpu > 0:
            energy_core.append(1.0 - metrics["energy_j.pim_core"] / energy_cpu)
            energy_acc.append(1.0 - metrics["energy_j.pim_acc"] / energy_cpu)
        if time_cpu > 0:
            speed_core.append(time_cpu / metrics["time_s.pim_core"])
            speed_acc.append(time_cpu / metrics["time_s.pim_acc"])
    def _mean(values):
        return sum(values) / len(values) if values else 0.0
    return {
        "targets": sorted(per_target),
        "mean_pim_core_energy_reduction": _mean(energy_core),
        "max_pim_core_energy_reduction": max(energy_core, default=0.0),
        "mean_pim_acc_energy_reduction": _mean(energy_acc),
        "max_pim_acc_energy_reduction": max(energy_acc, default=0.0),
        "mean_pim_core_speedup": _mean(speed_core),
        "max_pim_core_speedup": max(speed_core, default=0.0),
        "mean_pim_acc_speedup": _mean(speed_acc),
        "max_pim_acc_speedup": max(speed_acc, default=0.0),
    }
