"""The offload engine: execute a PIM target on each machine model.

For every target the engine produces the three executions the paper
compares (CPU-Only, PIM-Core, PIM-Acc).  PIM executions are charged the
Section 8.2 coherence/launch overheads on top of the kernel itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SystemConfig, default_system, CACHE_LINE_BYTES
from repro.core.target import PimTarget
from repro.obs.recorder import get_recorder
from repro.energy.components import EnergyParameters
from repro.sim.coherence import CoherenceModel
from repro.sim.cpu import CpuModel, Execution
from repro.sim.pim import PimAcceleratorModel, PimCoreModel


@dataclass(frozen=True)
class TargetComparison:
    """The three executions of one PIM target, plus derived metrics."""

    target: PimTarget
    cpu: Execution
    pim_core: Execution
    pim_acc: Execution

    @property
    def pim_core_speedup(self) -> float:
        return self.pim_core.speedup_over(self.cpu)

    @property
    def pim_acc_speedup(self) -> float:
        return self.pim_acc.speedup_over(self.cpu)

    @property
    def pim_core_energy_reduction(self) -> float:
        return self.pim_core.energy_reduction_vs(self.cpu)

    @property
    def pim_acc_energy_reduction(self) -> float:
        return self.pim_acc.energy_reduction_vs(self.cpu)

    def normalized_energy(self) -> dict[str, float]:
        base = self.cpu.energy_j
        if base <= 0:
            return {"CPU-Only": 1.0, "PIM-Core": 0.0, "PIM-Acc": 0.0}
        return {
            "CPU-Only": 1.0,
            "PIM-Core": self.pim_core.energy_j / base,
            "PIM-Acc": self.pim_acc.energy_j / base,
        }

    def normalized_runtime(self) -> dict[str, float]:
        base = self.cpu.time_s
        if base <= 0:
            return {"CPU-Only": 1.0, "PIM-Core": 0.0, "PIM-Acc": 0.0}
        return {
            "CPU-Only": 1.0,
            "PIM-Core": self.pim_core.time_s / base,
            "PIM-Acc": self.pim_acc.time_s / base,
        }


def measured_profile(profile, stats) -> "KernelProfile":
    """``profile`` with its memory-system fields re-anchored on ``stats``.

    The analytic :class:`~repro.sim.profile.KernelProfile` carries
    closed-form miss/traffic estimates; a cache design-space sweep
    (:mod:`repro.analysis.cachesweep`) produces *simulated*
    :class:`~repro.sim.cache.HierarchyStats` for the same kernel under a
    specific geometry.  This helper grafts the measured hierarchy
    behaviour — L1 misses, LLC misses, off-chip bytes — onto the
    profile, so the CPU/PIM machine models can be re-run per geometry
    without touching the compute-side fields.  ``pim_bytes`` is left
    alone when the profile overrode it (a kernel-semantics fact, not a
    geometry fact); profiles that tracked ``dram_bytes`` keep tracking
    the measured value.
    """
    # ``pim_bytes`` defaults to ``dram_bytes`` and is normalized at
    # construction; re-arm the default (sentinel -1) unless the kernel
    # genuinely overrode it, so it follows the measured traffic.
    pim_bytes = -1.0 if profile.pim_bytes == profile.dram_bytes else profile.pim_bytes
    return replace(
        profile,
        l1_misses=float(stats.l1.misses),
        llc_misses=float(stats.llc.misses),
        dram_bytes=float(stats.dram_bytes),
        pim_bytes=pim_bytes,
    )


class OffloadEngine:
    """Runs PIM targets on the three machine models of the paper."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
        coherence: CoherenceModel | None = None,
    ):
        self.system = system or default_system()
        self.cpu_model = CpuModel(self.system, energy_params)
        self.pim_core_model = PimCoreModel(self.system, energy_params)
        self.pim_acc_model = PimAcceleratorModel(self.system, energy_params)
        self.coherence = coherence or CoherenceModel(self.system, energy_params)

    # ------------------------------------------------------------------
    def run_cpu(self, target: PimTarget, cores: int = 1) -> Execution:
        return self.cpu_model.run(target.profile, cores=cores)

    def run_pim_core(self, target: PimTarget, vaults_used: int = 1) -> Execution:
        execution = self.pim_core_model.run(target.profile, vaults_used=vaults_used)
        return self._with_offload_overhead(execution, target)

    def run_pim_acc(self, target: PimTarget, vaults_used: int = 1) -> Execution:
        execution = self.pim_acc_model.run(target.profile, vaults_used=vaults_used)
        return self._with_offload_overhead(execution, target)

    def compare(self, target: PimTarget) -> TargetComparison:
        recorder = get_recorder()
        with recorder.span("core.offload.compare"):
            with recorder.span("core.offload.cpu_only"):
                cpu = self.run_cpu(target)
            with recorder.span("core.offload.pim_core"):
                pim_core = self.run_pim_core(target)
            with recorder.span("core.offload.pim_acc"):
                pim_acc = self.run_pim_acc(target)
        recorder.counters.add("core.offload.comparisons", 1)
        return TargetComparison(
            target=target, cpu=cpu, pim_core=pim_core, pim_acc=pim_acc
        )

    # ------------------------------------------------------------------
    def _with_offload_overhead(
        self, execution: Execution, target: PimTarget
    ) -> Execution:
        profile = target.profile
        overhead = self.coherence.offload_overhead(
            input_bytes=profile.working_set_bytes,
            pim_lines_touched=profile.pim_bytes / CACHE_LINE_BYTES,
            invocations=target.invocations,
        )
        energy = replace(
            execution.energy,
            interconnect=execution.energy.interconnect + overhead.energy_j,
        )
        return Execution(
            machine=execution.machine,
            time_s=execution.time_s + overhead.time_s,
            energy=energy,
            profile=execution.profile,
        )
