"""Segment-merged result store: append-only blobs for memo + checkpoints.

The file-per-entry memo cache and the line-per-append checkpoint journal
share a disease with the paper's workloads: their cost is dominated by
*data movement* — here, file-open/fsync **count**, not bytes.  At sweep
or fleet scale every entry pays a full open + write + rename (and, for
the journal, an fsync), so the storage layer's throughput is set by
syscall and metadata traffic rather than payload size.  Following the
Sentry RFC-0098 segment design (SNIPPETS.md §1), this module buffers
many entries in memory and flushes them as a **single append-only
segment blob** carrying an in-blob offset index, so N entries cost one
write (and at most one fsync) instead of N.

Blob format — a text file of framed lines, one frame per line::

    H<blake2-16hex> {"schema": "repro-segment/v1", "key": ...}\\n
    E<blake2-16hex> {"n": <name>, "p": <payload>}\\n     (entry)
    X<blake2-16hex> {"i": {<name>: [offset, length], ...}}\\n  (index)
    S<blake2-16hex> {"n": <name>, "p": <payload>}\\n     (self-committing)

Every frame checksums its **exact body bytes** (BLAKE2b, 8 bytes), so
verification never re-serializes the payload and is immune to key-order
drift.  A flush appends its entry frames followed by one index frame in
a single ``write`` — the index maps each entry name to the absolute
byte offset and length of its ``E`` line, so point lookups decode one
entry without parsing the rest of the blob.  A single-entry flush (the
fsync-per-append checkpoint pattern, or ``flush_every=1``) collapses
the pair into one ``S`` frame that is its own commit record, so such
blobs carry one line per entry like the JSONL layout they replace.

**Commit contract.**  An entry is *committed* if and only if it is
covered by a valid index frame (an ``S`` frame covers itself).  A
crash mid-flush therefore leaves an
uncommitted tail (entry frames without their index, or a torn final
line) that recovery drops **in full** — committed entries from earlier
chunks are never lost and never silently altered: a checksum mismatch
quarantines the entry (``core.store.corrupt``) instead of returning it,
exactly the torn-write detection contract the per-file layouts had.

Readers are incremental: an append-only blob is re-parsed only past the
last consumed byte, so polling a live store is O(new bytes).  A final
line without its newline is *pending* (an in-flight write), not torn;
an uncommitted tail found when a blob is first loaded — the crash
recovery case — counts ``core.store.torn``.

:meth:`SegmentStore.compact` folds the maintenance chores the per-file
layouts scattered across ``prune()``/``clear()`` into one segment
rewrite: committed entries (plus any legacy entries the caller folds
in) are rewritten into a single fresh segment, segments containing
corrupt frames are quarantined aside as ``*.corrupt`` instead of
deleted, and aged foreign-key segments and debris are pruned.
Compaction is safe under concurrent writers: a pid-stamped lock file
serializes compactors across processes, and segments owned by live
foreign writers (the pid in the blob filename) are skipped rather than
rewritten; live appenders write to per-process blobs, so concurrent
*appends* from many processes never contend on one file.

Everything publishes through the observability registry:
``core.store.{flushes,entries,compactions,torn,corrupt}``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.recorder import get_recorder

SCHEMA = "repro-segment/v1"

#: Testing aid for the crash harness: when set, a flush's blob is
#: written in slices of this many bytes (with a ``store.flush`` fault
#: point before each slice) instead of one ``write``, so a scheduled
#: ``kill`` lands mid-flush and leaves a genuinely torn blob.
WRITE_CHUNK_ENV = "REPRO_STORE_WRITE_CHUNK"

_DIGEST_BYTES = 8  # BLAKE2b digest size -> 16 hex chars per frame
_CHECKSUM_LEN = 2 * _DIGEST_BYTES
_PREFIX_LEN = 1 + _CHECKSUM_LEN + 1  # tag + checksum + space


def to_builtin(value):
    """JSON fallback: unwrap numpy scalars to builtin int/float/bool."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError("%r is not JSON serializable" % (value,))


def _checksum(body: bytes) -> str:
    return hashlib.blake2b(body, digest_size=_DIGEST_BYTES).hexdigest()


def _frame(tag: bytes, body: bytes) -> bytes:
    return tag + _checksum(body).encode() + b" " + body + b"\n"


def _parse_frame(line: bytes):
    """(tag, body) for a checksum-valid frame line, else None."""
    if len(line) < _PREFIX_LEN or line[_PREFIX_LEN - 1 : _PREFIX_LEN] != b" ":
        return None
    body = line[_PREFIX_LEN:]
    if line[1 : _PREFIX_LEN - 1] != _checksum(body).encode("ascii"):
        return None
    return line[0:1], body


def _entry_name(body: bytes):
    """The ``"n"`` field of an entry body, without parsing the payload.

    Bodies are written as ``{"n": <name>, "p": <payload>}`` by
    :meth:`SegmentWriter.append_chunk`; for the common case (a name with
    no JSON escapes) the name is sliced straight out of the bytes, and
    anything unusual falls back to a full parse.  Returns None when no
    string name can be recovered.
    """
    if body.startswith(b'{"n": "'):
        quote = body.find(b'"', 7)
        if quote > 0 and b"\\" not in body[7:quote]:
            try:
                return body[7:quote].decode("utf-8")
            except UnicodeDecodeError:
                return None
    try:
        record = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(record, dict):
        name = record.get("n")
        if isinstance(name, str):
            return name
    return None


def _default_count(event: str, n: float = 1) -> None:
    get_recorder().counters.add("core.store." + event, n)


def peek_key(path):
    """The header key of a segment blob, or None if it has none (yet).

    Reads only the first line, so pruning decisions over a directory of
    large blobs stay O(files), not O(bytes).
    """
    try:
        with open(path, "rb") as f:
            first = f.readline(1 << 16)
    except OSError:
        return None
    if not first.endswith(b"\n"):
        return None
    parsed = _parse_frame(first[:-1])
    if parsed is None or parsed[0] != b"H":
        return None
    try:
        header = json.loads(parsed[1])
    except ValueError:
        return None
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        return None
    return header.get("key")


_CORRUPT = object()  # decode-memo sentinel: checksummed bad, never returned


class SegmentReader:
    """Incremental parser of one append-only segment blob.

    The reader consumes complete lines exactly once: :meth:`refresh`
    re-reads only bytes past the last consumed offset (append-only
    blobs never rewrite history; a shrunk or replaced file triggers a
    full reload).  Entries become visible only when their index frame
    commits them; decoding is lazy and memoized per name, and a
    checksum mismatch at decode time counts ``corrupt`` once and makes
    the entry permanently invisible.
    """

    def __init__(self, path, count=_default_count):
        self.path = Path(path)
        self._count = count
        self._reset()

    def _reset(self):
        self._buf = bytearray()
        self._consumed = 0  # bytes folded into complete lines
        self._committed = 0  # offset just past the last valid index frame
        self._stat = None  # (st_ino, st_size, st_mtime_ns) at last read
        self._loaded = False  # completed at least one refresh
        self._tail_counted = False
        self.key = None  # header key, once a valid header line is seen
        self.invalid = False  # complete-but-garbage header: not a segment
        self.had_corrupt = False
        self.had_torn = False  # a complete line was damaged in place
        self._index: dict = {}  # name -> (offset, length), file order
        self._decoded: dict = {}  # name -> payload | _CORRUPT
        self._flagged: set = set()  # offsets already counted bad at parse
        self._verified: dict = {}  # offset -> line length checksummed OK

    # ------------------------------------------------------------------
    @property
    def committed_offset(self) -> int:
        return self._committed

    @property
    def uncommitted_bytes(self) -> int:
        return len(self._buf) - self._committed

    def refresh(self) -> None:
        """Fold any new bytes on disk into the parsed state."""
        try:
            st = os.stat(self.path)
        except OSError:
            if self._stat is not None:
                self._reset()  # file vanished (clear()/compaction)
            return
        stat = (st.st_ino, st.st_size, st.st_mtime_ns)
        if self._stat == stat:
            return
        if self._stat is not None and (
            st.st_ino != self._stat[0] or st.st_size < len(self._buf)
        ):
            self._reset()  # rewritten or truncated: history changed
        self._stat = stat
        try:
            with open(self.path, "rb") as f:
                f.seek(len(self._buf))
                new = f.read()
        except OSError:
            return
        self._buf += new
        self._parse_new()
        if not self._loaded:
            self._loaded = True
            # First sight of this blob (the crash-recovery read):
            # *complete* lines past the last committed index are a torn
            # flush's remains.  A partial final line alone is left as
            # pending — a live writer may still be mid-``write`` — and
            # is only judged torn by the writer that reclaims the blob
            # (which knows no write can be in flight).
            if self._consumed > self._committed and self.key is not None:
                self._count("torn")
                self._tail_counted = True

    def _parse_new(self) -> None:
        buf = self._buf
        with memoryview(buf) as view:
            while not self.invalid:
                end = buf.find(b"\n", self._consumed)
                if end < 0:
                    return  # incomplete final line: pending, retry later
                start, self._consumed = self._consumed, end + 1
                length = end + 1 - start
                # Inline fast path for well-formed entry frames — the
                # bulk of every blob.  Checksums straight off the
                # buffer view: no per-line copy, no call dispatch.
                tag = buf[start]
                if (
                    start
                    and length > _PREFIX_LEN
                    and (tag == 69 or tag == 83)  # b"E" / b"S"
                    and buf[start + _PREFIX_LEN - 1] == 32  # b" "
                    and view[start + 1 : start + _PREFIX_LEN - 1]
                    == _checksum(view[start + _PREFIX_LEN : end]).encode("ascii")
                ):
                    if tag == 83:
                        self._commit_self(start, end, length)
                    else:
                        self._verified[start] = length
                    continue
                self._line(bytes(buf[start:end]), start, length)

    def _line(self, line: bytes, offset: int, length: int) -> None:
        parsed = _parse_frame(line)
        if offset == 0:
            # The header position decides whether this is a segment at
            # all; a complete non-header first line marks the whole
            # file invalid (the owner may quarantine it).
            header = None
            if parsed is not None and parsed[0] == b"H":
                try:
                    header = json.loads(parsed[1])
                except ValueError:
                    header = None
            if (
                not isinstance(header, dict)
                or header.get("schema") != SCHEMA
            ):
                self.invalid = True
                return
            self.key = header.get("key")
            self._committed = self._consumed
            return
        if parsed is None:
            self._bad_line(line, offset)
            return
        tag, body = parsed
        if tag == b"X":
            try:
                # bytes -> str before loads: json's encoding sniff costs
                # a regex per call, measurable at journal line counts.
                index = json.loads(body.decode("utf-8"))["i"]
                items = list(index.items())
            except (ValueError, KeyError, AttributeError, TypeError):
                self._bad_line(line, offset)
                return
            for name, span in items:
                if (
                    type(span) is not list
                    or len(span) != 2
                    or type(span[0]) is not int
                    or type(span[1]) is not int
                    or span[0] < 0
                    or span[0] + span[1] > offset
                    or self._buf[span[0] : span[0] + 1] != b"E"
                ):
                    self.had_corrupt = True
                    self._count("corrupt")
                    continue
                self._index[name] = (span[0], span[1])
                self._decoded.pop(name, None)
            self._committed = self._consumed
        elif tag == b"E":
            # Committed (and decoded) via an index frame; remember that
            # this span already passed its checksum so decoding does not
            # hash the same bytes a second time.
            self._verified[offset] = length
        elif tag == b"S":
            self._commit_self(offset, offset + length - 1, length)
        else:
            self._bad_line(line, offset)

    def _commit_self(self, start: int, end: int, length: int) -> None:
        """Commit one checksum-valid self-committing (``S``) frame.

        The frame is its own index record, so the commit boundary
        advances past it even when the body turns out unusable (that
        mirrors how an index frame with a bad span still commits —
        recovery must not truncate durable later frames).  Only the
        name is extracted here; payload decoding stays lazy.
        """
        name = _entry_name(bytes(self._buf[start + _PREFIX_LEN : end]))
        if name is None:
            self.had_corrupt = True
            self._flagged.add(start)
            self._count("corrupt")
        else:
            self._index[name] = (start, length)
            self._decoded.pop(name, None)
            self._verified[start] = length
        self._committed = self._consumed

    def _bad_line(self, line: bytes, offset: int) -> None:
        """A complete line that fails its frame check.

        A body that still parses as JSON was *altered* (bit rot,
        tampering) — count ``corrupt``; one that does not was torn
        short and sealed or garbled — count ``torn``.  The offset is
        remembered so decoding the same bytes through an index frame
        later does not count the damage twice.
        """
        self._flagged.add(offset)
        try:
            json.loads(line[_PREFIX_LEN:])
        except ValueError:
            self.had_torn = True
            self._count("torn")
        else:
            self.had_corrupt = True
            self._count("corrupt")

    # ------------------------------------------------------------------
    def get(self, name, default=None):
        if name not in self._index:
            return default
        if name not in self._decoded:
            self._decoded[name] = self._decode(name)
        value = self._decoded[name]
        return default if value is _CORRUPT else value

    def __contains__(self, name) -> bool:
        return self.get(name, _CORRUPT) is not _CORRUPT

    def names(self):
        return list(self._index)

    def entries(self) -> dict:
        """All committed, checksum-valid entries, in commit order."""
        out = {}
        for name in self._index:
            value = self.get(name, _CORRUPT)
            if value is not _CORRUPT:
                out[name] = value
        return out

    def _decode(self, name):
        offset, length = self._index[name]
        if self._verified.get(offset) == length:
            body = bytes(self._buf[offset + _PREFIX_LEN : offset + length - 1])
        else:
            parsed = _parse_frame(
                bytes(self._buf[offset : offset + length - 1])
            )
            body = (
                parsed[1]
                if parsed is not None and parsed[0] in (b"E", b"S")
                else None
            )
        if body is not None:
            try:
                record = json.loads(body.decode("utf-8"))
                if record["n"] == name:
                    return record["p"]
            except (ValueError, KeyError, TypeError):
                pass
        self.had_corrupt = True
        if offset not in self._flagged:
            self._flagged.add(offset)
            self._count("corrupt")
        return _CORRUPT


class SegmentWriter:
    """Exclusive append handle on one segment blob.

    One writer owns one blob: concurrent stores write distinct
    per-process files, and the checkpoint journal has one appender per
    sweep.  Re-opening an existing blob (the journal's crash-recovery
    path) truncates the uncommitted tail first, so appends never land
    after torn bytes.
    """

    def __init__(self, path, key, count=_default_count):
        self.path = Path(path)
        self.key = key
        self._count = count
        self._fd = None
        self._offset = 0

    @property
    def is_open(self) -> bool:
        return self._fd is not None

    def open(self, fd=None, reader=None) -> None:
        """Acquire the blob: adopt a fresh ``fd``, or reopen ``path``.

        With ``fd`` (from an exclusive create) the header is written
        immediately.  Reopening an existing blob requires a matching
        header key — rotation/migration of mismatched files is the
        owner's job — and truncates any uncommitted tail (counted as
        ``torn``), so recovery after a crashed writer is physical, not
        just interpretive.  Pass ``reader`` to share the owner's
        already-loaded :class:`SegmentReader` instead of re-parsing the
        blob (and double-counting its torn tail).
        """
        if self._fd is not None:
            return
        if fd is not None:
            self._fd = fd
            self._offset = 0
            self._write(_frame(b"H", self._header_body()))
            self._offset = self._header_size()
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if reader is None:
            reader = SegmentReader(self.path, count=self._count)
        reader.refresh()
        if reader.key is not None and reader.key != self.key:
            raise ValueError(
                "segment %s is keyed %r, not %r (rotate it first)"
                % (self.path, reader.key, self.key)
            )
        self._fd = os.open(self.path, os.O_CREAT | os.O_WRONLY, 0o644)
        committed = reader.committed_offset if reader.key is not None else 0
        if reader.uncommitted_bytes > 0 and not reader._tail_counted:
            # An exclusive writer reclaiming the blob knows no write is
            # in flight: a pending partial tail really was torn.
            self._count("torn")
        os.ftruncate(self._fd, committed)
        os.lseek(self._fd, 0, os.SEEK_END)
        self._offset = committed
        if committed == 0:
            self._write(_frame(b"H", self._header_body()))
            self._offset = self._header_size()

    def _header_body(self) -> bytes:
        return json.dumps(
            {"schema": SCHEMA, "key": self.key}, sort_keys=True
        ).encode()

    def _header_size(self) -> int:
        return len(_frame(b"H", self._header_body()))

    def append_chunk(self, items, fsync: bool = False) -> None:
        """Flush ``(name, payload)`` pairs as one committed chunk.

        The chunk — entry frames plus their index frame — is written in
        a single ``write`` (unless the crash harness slices it), then
        optionally fsync'd.  Only after the index frame is durable are
        the entries committed; a crash anywhere earlier leaves a tail
        that recovery drops wholesale.  A one-entry chunk collapses to
        a single self-committing ``S`` frame with the same contract:
        the entry is committed iff its full line (checksum, newline)
        made it to disk.
        """
        items = list(items)
        if not items:
            return
        self.open()
        blob = bytearray()
        if len(items) == 1:
            name, payload = items[0]
            body = json.dumps(
                {"n": name, "p": payload}, default=to_builtin
            ).encode()
            blob += _frame(b"S", body)
        else:
            index: dict = {}
            for name, payload in items:
                body = json.dumps(
                    {"n": name, "p": payload}, default=to_builtin
                ).encode()
                line = _frame(b"E", body)
                index[name] = [self._offset + len(blob), len(line)]
                blob += line
            blob += _frame(
                b"X", json.dumps({"i": index}, sort_keys=True).encode()
            )
        self._write(bytes(blob))
        if fsync:
            os.fsync(self._fd)
        self._offset += len(blob)
        self._count("flushes")
        self._count("entries", len(items))

    def _write(self, blob: bytes) -> None:
        step = int(os.environ.get(WRITE_CHUNK_ENV) or 0)
        if step <= 0:
            step = len(blob) or 1
        view = memoryview(blob)
        while view.nbytes:
            if os.environ.get("REPRO_FAULT_PLAN"):
                from repro.core.resilience import maybe_inject_fault

                maybe_inject_fault("store.flush")
            written = os.write(self._fd, view[:step])
            view = view[written:]

    def fsync(self) -> None:
        if self._fd is not None:
            os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


@dataclass
class CompactionStats:
    """What one :meth:`SegmentStore.compact` rewrite did."""

    entries: int = 0  # live entries carried into the fresh segment
    segments_merged: int = 0  # same-key segment blobs folded and removed
    legacy_folded: int = 0  # legacy per-file entries folded in
    files_removed: int = 0  # every file deleted (segments, legacy, debris)
    quarantined: int = 0  # blobs set aside as *.corrupt, not deleted
    pruned: int = 0  # aged foreign-key/debris files removed
    busy_skipped: int = 0  # blobs left alone: a live writer owns them

    @property
    def total_removed(self) -> int:
        return self.files_removed + self.quarantined


class CompactionBusy(RuntimeError):
    """Another process holds the store's compaction lock right now."""


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (conservative on EPERM)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM), or exotic platform
    return True


def _segment_pid(path) -> int | None:
    """The writer pid embedded in a ``<prefix>-<seq>-<pid>.seg`` name."""
    parts = Path(path).stem.split("-")
    try:
        return int(parts[-1])
    except (IndexError, ValueError):
        return None


class SegmentStore:
    """A named store of JSON entries over append-only segment blobs.

    Args:
        directory: where segment blobs live; created on first flush.
        key: namespace pinned into every blob header — blobs carrying a
            different key are invisible to reads (and age-pruned by
            :meth:`compact`), exactly like the memo cache's
            code-version keying.
        prefix: blob filename prefix; files are
            ``<prefix>-<seq>-<pid>.seg`` so concurrent writers never
            share a blob and merge order is the filename sort.
        flush_every: buffered entries per automatic flush; 1 flushes on
            every :meth:`append` (the durable, read-your-writes-now
            default), larger values batch N entries per write.
        fsync: whether each flush is fsync'd (checkpoints want this;
            the memo cache historically never fsync'd and still
            does not).
        compact_ratio: dead-bytes ratio above which
            :meth:`maybe_compact` rewrites the store (``None`` disables
            auto-compaction).  The conservative default only triggers
            once well over half the committed bytes are superseded.
    """

    def __init__(
        self,
        directory,
        key: str,
        prefix: str = "seg",
        flush_every: int = 1,
        fsync: bool = False,
        count=_default_count,
        compact_ratio: float | None = 0.6,
    ):
        self.directory = Path(directory)
        self.key = key
        self.prefix = prefix
        self.flush_every = max(int(flush_every), 1)
        self.fsync = fsync
        self.compact_ratio = compact_ratio
        self._count = count
        self._writer = None
        self._buffer: dict = {}  # name -> payload, insertion ordered
        self._readers: dict = {}  # Path -> SegmentReader

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, name, payload) -> None:
        """Buffer one entry; auto-flushes every ``flush_every`` entries."""
        self._buffer[name] = payload
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self):
        """Write all buffered entries as one committed chunk.

        Returns the blob path written to, or None if nothing was
        buffered.
        """
        if not self._buffer:
            return None
        writer = self._ensure_writer()
        writer.append_chunk(self._buffer.items(), fsync=self.fsync)
        self._buffer.clear()
        return writer.path

    def segment_path(self) -> Path:
        """This store's own blob (claimed, with header, on first call)."""
        return self._ensure_writer().path

    def _ensure_writer(self) -> SegmentWriter:
        if self._writer is None:
            path, fd = self._claim_blob()
            self._writer = SegmentWriter(path, self.key, count=self._count)
            self._writer.open(fd=fd)
        return self._writer

    def _claim_blob(self):
        """An exclusively-created, never-before-seen blob path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        seq = 0
        for path in self.directory.glob(self.prefix + "-*.seg"):
            parts = path.stem.split("-")
            try:
                seq = max(seq, int(parts[-2]) + 1)
            except (IndexError, ValueError):
                continue
        while True:
            path = self.directory / (
                "%s-%08d-%d.seg" % (self.prefix, seq, os.getpid())
            )
            try:
                fd = os.open(
                    path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                seq += 1
                continue
            return path, fd

    def close(self) -> None:
        """Flush the buffer and release the blob file descriptor."""
        self.flush()
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def discard(self) -> None:
        """Drop buffered entries and all parsed state without writing.

        Used by the owner's ``clear()``: deleting the files out from
        under live readers and then flushing a stale buffer would
        resurrect cleared entries.
        """
        self._buffer.clear()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._readers.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name, default=None):
        """The committed (or still-buffered) payload for ``name``.

        Committed entries are immutable under a content-addressed key,
        so a name already loaded is returned without touching the
        filesystem; an unknown name triggers one incremental rescan of
        the directory before reporting a miss.
        """
        if name in self._buffer:
            return self._buffer[name]
        sentinel = _CORRUPT
        for reader in self._our_readers(newest_first=True):
            value = reader.get(name, sentinel)
            if value is not sentinel:
                return value
        self._refresh()
        for reader in self._our_readers(newest_first=True):
            value = reader.get(name, sentinel)
            if value is not sentinel:
                return value
        return default

    def __contains__(self, name) -> bool:
        sentinel = _CORRUPT
        return self.get(name, sentinel) is not sentinel

    def entries(self) -> dict:
        """Every committed entry across all same-key blobs.

        Blobs merge in filename-sort order (creation order), so a name
        rewritten later wins; buffered entries overlay last.
        """
        self._refresh()
        out: dict = {}
        for reader in self._our_readers(newest_first=False):
            out.update(reader.entries())
        out.update(self._buffer)
        return out

    def _our_readers(self, newest_first: bool):
        paths = sorted(self._readers, reverse=newest_first)
        return [
            self._readers[p]
            for p in paths
            if self._readers[p].key == self.key
        ]

    def _refresh(self) -> None:
        """Rescan the directory and fold new bytes into every reader."""
        if self.directory.is_dir():
            for path in self.directory.glob(self.prefix + "-*.seg"):
                if path not in self._readers:
                    self._readers[path] = SegmentReader(
                        path, count=self._count
                    )
        for path, reader in list(self._readers.items()):
            reader.refresh()
            if reader.invalid:
                # Complete-but-garbage header: this is no segment.
                # Quarantine it aside so it is inspectable, never reread.
                self._count("corrupt")
                try:
                    os.replace(path, path.with_suffix(".corrupt"))
                except OSError:
                    pass
                del self._readers[path]
            elif reader._stat is None and reader.key is None:
                del self._readers[path]  # vanished before first read

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def dead_bytes(self) -> tuple:
        """``(dead, total)`` committed bytes across this store's blobs.

        An entry line is *live* when it is the winning (newest) write
        for its name under the merge order; everything else committed —
        superseded rewrites, batched-chunk index frames — is weight a
        :meth:`compact` rewrite would reclaim.  Blob header lines count
        as live (a compacted store still pays one).
        """
        self._refresh()
        total = 0
        live = 0
        winners: dict = {}
        for reader in self._our_readers(newest_first=False):
            committed = reader.committed_offset
            total += committed
            header_end = reader._buf.find(b"\n") + 1
            if header_end > 0:
                live += min(header_end, committed)
            for name, (_, length) in reader._index.items():
                winners[name] = length
        live += sum(winners.values())
        return max(total - live, 0), total

    def dead_ratio(self) -> float:
        dead, total = self.dead_bytes()
        return dead / total if total else 0.0

    def maybe_compact(self, **kwargs):
        """:meth:`compact` iff the dead-bytes ratio crosses the knob.

        The sweep-completion hook: rewriting a store is only worth the
        IO once enough superseded bytes pile up, so callers invoke this
        unconditionally after a batch of writes and the knob decides.
        Returns the :class:`CompactionStats` when a compaction ran
        (counted as ``core.store.auto_compactions`` on top of the
        rewrite's own ``compactions``), else None.  A ``compact_ratio``
        of None disables the trigger.  A store another process is
        already compacting is left alone (counted as
        ``core.store.compact_busy``) — during a long-lived fleet
        session any client may trigger maintenance, and exactly one
        should win.  Keyword arguments are forwarded to :meth:`compact`.
        """
        if self.compact_ratio is None:
            return None
        if self.dead_ratio() <= self.compact_ratio:
            return None
        try:
            stats = self.compact(**kwargs)
        except CompactionBusy:
            self._count("compact_busy")
            return None
        self._count("auto_compactions")
        return stats

    def _lock_path(self) -> Path:
        return self.directory / (self.prefix + ".compact.lock")

    def _acquire_compact_lock(self) -> None:
        """Exclusive cross-process compaction lock (pid-stamped file).

        A lock file whose owner pid is dead is stale — a compactor
        crashed while holding it — and is broken by atomically renaming
        it aside (only one breaker can win the rename) before retrying.
        Raises :class:`CompactionBusy` when a live process holds it.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        lock = self._lock_path()
        for _ in range(8):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                try:
                    owner = int(lock.read_text().strip() or "0")
                except (OSError, ValueError):
                    # Mid-write or vanished: re-read on the next pass.
                    time.sleep(0.01)
                    continue
                if _pid_alive(owner):
                    raise CompactionBusy(
                        "compaction of %s already running in pid %d"
                        % (self.directory, owner)
                    )
                stale = lock.with_suffix(lock.suffix + ".stale.%d" % os.getpid())
                try:
                    os.rename(lock, stale)  # atomic: one breaker wins
                    stale.unlink()
                except OSError:
                    pass
                time.sleep(0.01)
                continue
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return
        raise CompactionBusy(
            "could not acquire compaction lock %s" % self._lock_path()
        )

    def _release_compact_lock(self) -> None:
        try:
            self._lock_path().unlink()
        except OSError:
            pass

    def compact(
        self,
        max_age_days=None,
        extra_entries=None,
        remove_paths=(),
        now=None,
    ) -> CompactionStats:
        """Rewrite the store as one fresh segment; fold in the chores.

        * every committed same-key entry (and each of
          ``extra_entries``, which merge *under* segment entries — the
          legacy layout is older by construction) is rewritten into a
          single new blob, and the merged blobs plus ``remove_paths``
          (the caller's folded legacy files) are deleted;
        * a same-key blob that held corrupt or torn frames is
          quarantined to ``*.corrupt`` instead of deleted, so
          the evidence survives the rewrite;
        * with ``max_age_days``, foreign-key blobs and quarantine/debris
          files older than the cutoff are pruned (current-key data is
          never age-pruned).

        Safe under concurrent writers: one cross-process lock file
        serializes compactors (:class:`CompactionBusy` is raised when a
        live process already holds it), and a *busy* segment — one whose
        filename pid names a live foreign process, i.e. a writer that
        may still be appending — is never merged, deleted, or
        quarantined (``busy_skipped``).  A name whose winning write
        lives in a busy segment is also kept out of the replacement
        blob, so the fresh (highest-sorting) segment can never demote a
        concurrent writer's newer value.  Returns a
        :class:`CompactionStats` with accurate counts.
        """
        stats = CompactionStats()
        self.flush()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._acquire_compact_lock()
        try:
            return self._compact_locked(
                stats, max_age_days, extra_entries, remove_paths, now
            )
        finally:
            self._release_compact_lock()

    def _compact_locked(
        self, stats, max_age_days, extra_entries, remove_paths, now
    ) -> CompactionStats:
        self._refresh()
        merged: dict = {}
        for name, payload in (extra_entries or {}).items():
            merged[name] = payload
            stats.legacy_folded += 1
        our_paths = []
        dirty_paths = []
        busy_names: set = set()
        own_pid = os.getpid()
        for path in sorted(self._readers):
            reader = self._readers[path]
            if reader.key != self.key:
                continue
            pid = _segment_pid(path)
            busy = pid is not None and pid != own_pid and _pid_alive(pid)
            if busy:
                # A live writer owns this blob: leave it untouched.  Its
                # entries sort after everything merged so far, so names
                # it has committed must not be re-emitted into the fresh
                # blob (which would sort even later and win wrongly).
                stats.busy_skipped += 1
                self._count("compact_busy_segments")
                busy_names.update(reader.entries())
                continue
            entries = reader.entries()
            merged.update(entries)
            # This blob sorts after any busy blob seen so far, so its
            # values are the newer write for every name it carries.
            busy_names.difference_update(entries)
            our_paths.append(path)
            if (
                reader.had_corrupt
                or reader.had_torn
                or reader.uncommitted_bytes > 0
            ):
                dirty_paths.append(path)
        for name in busy_names:
            merged.pop(name, None)
        # Write the replacement blob before removing anything: a crash
        # mid-compaction leaves duplicates (harmless: identical
        # payloads, later-sorting blob wins), never data loss.
        if merged:
            path, fd = self._claim_blob()
            writer = SegmentWriter(path, self.key, count=self._count)
            writer.open(fd=fd)
            writer.append_chunk(merged.items(), fsync=True)
            writer.close()
            stats.entries = len(merged)
        for path in our_paths:
            self._readers.pop(path, None)
            try:
                if path in dirty_paths:
                    os.replace(path, path.with_suffix(".corrupt"))
                    stats.quarantined += 1
                else:
                    path.unlink()
                    stats.files_removed += 1
            except OSError:
                continue
            stats.segments_merged += 1
        for path in remove_paths:
            try:
                Path(path).unlink()
                stats.files_removed += 1
            except OSError:
                pass
        if max_age_days is not None:
            stats.pruned = self._prune_aged(max_age_days, now=now)
            stats.files_removed += stats.pruned
        self._count("compactions")
        return stats

    def _prune_aged(self, max_age_days: float, now=None) -> int:
        """Drop aged foreign-key blobs and quarantine/debris files."""
        cutoff = (now if now is not None else time.time()) - (
            max_age_days * 86400.0
        )
        removed = 0
        patterns = (self.prefix + "-*.seg", "*.corrupt", "*.tmp.*")
        for pattern in patterns:
            for path in self.directory.glob(pattern):
                if path.suffix == ".seg" and peek_key(path) == self.key:
                    continue  # current-key data is never age-pruned
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        removed += 1
                        self._readers.pop(path, None)
                except OSError:
                    pass
        return removed
