"""Whole-workload characterization.

A workload is a list of functions, each with a measured
:class:`KernelProfile`; characterization runs every function through the
CPU timing/energy model and reports the paper's two standard breakdowns:

* **per function** (Figures 1, 6, 7, 10, 15): each function's share of the
  workload's total energy or execution time;
* **per hardware component** (Figures 2, 11): each component's (CPU, L1,
  LLC, interconnect, memory controller, DRAM) share of total energy,
  optionally stacked by function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.energy.breakdown import Component, EnergyBreakdown
from repro.energy.components import EnergyParameters
from repro.sim.cpu import CpuModel, Execution
from repro.sim.profile import KernelProfile


@dataclass(frozen=True)
class WorkloadFunction:
    """One function of a workload, with its profile and PIM metadata."""

    name: str
    profile: KernelProfile
    #: Accelerator key if this function is a PIM target; None for the
    #: functions the paper leaves on the CPU (e.g. Conv2D/MatMul, "Other").
    accelerator_key: str | None = None
    invocations: int = 1


@dataclass
class FunctionResult:
    """A function's CPU-Only execution within the workload."""

    function: WorkloadFunction
    execution: Execution

    @property
    def name(self) -> str:
        return self.function.name

    @property
    def energy_j(self) -> float:
        return self.execution.energy_j

    @property
    def time_s(self) -> float:
        return self.execution.time_s


@dataclass
class WorkloadCharacterization:
    """Aggregated characterization of one workload on the CPU."""

    workload: str
    results: list[FunctionResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_energy_j(self) -> float:
        return sum(r.energy_j for r in self.results)

    @property
    def total_time_s(self) -> float:
        return sum(r.time_s for r in self.results)

    @property
    def total_breakdown(self) -> EnergyBreakdown:
        return sum((r.execution.energy for r in self.results), EnergyBreakdown.zero())

    @property
    def data_movement_fraction(self) -> float:
        """The paper's headline metric (62.7% on average, Section 1)."""
        return self.total_breakdown.data_movement_fraction

    # ------------------------------------------------------------------
    def energy_share(self, name: str) -> float:
        total = self.total_energy_j
        if total <= 0:
            return 0.0
        return sum(r.energy_j for r in self.results if r.name == name) / total

    def time_share(self, name: str) -> float:
        total = self.total_time_s
        if total <= 0:
            return 0.0
        return sum(r.time_s for r in self.results if r.name == name) / total

    def energy_shares(self) -> dict[str, float]:
        return {r.name: self.energy_share(r.name) for r in self.results}

    def time_shares(self) -> dict[str, float]:
        return {r.name: self.time_share(r.name) for r in self.results}

    def movement_share_of_workload(self, name: str) -> float:
        """Data-movement energy of one function as a share of workload energy."""
        total = self.total_energy_j
        if total <= 0:
            return 0.0
        movement = sum(
            r.execution.energy.data_movement for r in self.results if r.name == name
        )
        return movement / total

    def movement_fraction_of_function(self, name: str) -> float:
        """Fraction of a function's own energy spent on data movement."""
        energy = sum(r.energy_j for r in self.results if r.name == name)
        if energy <= 0:
            return 0.0
        movement = sum(
            r.execution.energy.data_movement for r in self.results if r.name == name
        )
        return movement / energy

    def component_energy(self, component: Component) -> float:
        return self.total_breakdown.component(component)

    def component_energy_by_function(self) -> dict[str, dict[str, float]]:
        """Figure 2/11-style matrix: component -> function -> joules."""
        matrix: dict[str, dict[str, float]] = {}
        for component in (
            Component.CPU,
            Component.L1,
            Component.LLC,
            Component.INTERCONNECT,
            Component.MEMCTRL,
            Component.DRAM,
        ):
            matrix[component.value] = {
                r.name: r.execution.energy.component(component) for r in self.results
            }
        return matrix

    def function(self, name: str) -> FunctionResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError("no function %r in workload %r" % (name, self.workload))


def characterize(
    workload: str,
    functions: list[WorkloadFunction],
    system: SystemConfig | None = None,
    energy_params: EnergyParameters | None = None,
) -> WorkloadCharacterization:
    """Run every function of a workload through the CPU model."""
    cpu = CpuModel(system, energy_params)
    results = [
        FunctionResult(function=f, execution=cpu.run(f.profile)) for f in functions
    ]
    return WorkloadCharacterization(workload=workload, results=results)


@dataclass(frozen=True)
class OffloadedWorkloadTotals:
    """Whole-workload energy/time with PIM targets offloaded."""

    cpu_energy_j: float
    cpu_time_s: float
    pim_energy_j: float
    pim_time_s: float

    @property
    def energy_reduction(self) -> float:
        if self.cpu_energy_j <= 0:
            return 0.0
        return 1.0 - self.pim_energy_j / self.cpu_energy_j

    @property
    def speedup(self) -> float:
        if self.pim_time_s <= 0:
            return float("inf")
        return self.cpu_time_s / self.pim_time_s


def offloaded_totals(
    functions: list[WorkloadFunction],
    engine=None,
    use_accelerators: bool = True,
) -> OffloadedWorkloadTotals:
    """Whole-workload comparison: everything on the CPU vs. the PIM
    targets offloaded (PIM-Acc by default) while the rest stays on the
    CPU.  Functions are assumed serialized, as in the paper's kernel
    studies -- overlap gains (Figure 19) are modeled separately.
    """
    from repro.core.offload import OffloadEngine
    from repro.core.target import PimTarget

    engine = engine or OffloadEngine()
    cpu_energy = cpu_time = pim_energy = pim_time = 0.0
    for f in functions:
        cpu_exec = engine.cpu_model.run(f.profile)
        cpu_energy += cpu_exec.energy_j
        cpu_time += cpu_exec.time_s
        if f.accelerator_key is None:
            pim_energy += cpu_exec.energy_j
            pim_time += cpu_exec.time_s
            continue
        target = PimTarget(
            f.name, f.profile, accelerator_key=f.accelerator_key,
            invocations=f.invocations,
        )
        pim_exec = (
            engine.run_pim_acc(target)
            if use_accelerators
            else engine.run_pim_core(target)
        )
        pim_energy += pim_exec.energy_j
        pim_time += pim_exec.time_s
    return OffloadedWorkloadTotals(
        cpu_energy_j=cpu_energy,
        cpu_time_s=cpu_time,
        pim_energy_j=pim_energy,
        pim_time_s=pim_time,
    )
