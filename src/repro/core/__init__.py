"""The paper's primary contribution: PIM-target analysis and offloading.

* :mod:`repro.core.target` -- the ``PimTarget`` abstraction and the
  Section 3.2 candidate-identification criteria (energy share, data-
  movement share, MPKI > 10, movement-dominated, no-slowdown, area budget);
* :mod:`repro.core.offload` -- the offload engine that executes a target
  on the CPU, the PIM core, or a PIM accelerator, including the
  Section 8.2 coherence overheads;
* :mod:`repro.core.workload` -- whole-workload characterization: function-
  level and component-level energy breakdowns (the paper's Figures 1, 2, 6,
  7, 10, 11, 15);
* :mod:`repro.core.runner` -- the experiment runner producing the paper's
  CPU-Only / PIM-Core / PIM-Acc comparisons (Figures 18-20) and headline
  averages.
"""

from repro.core.target import (
    PimTarget,
    CandidateCriteria,
    CandidateEvaluation,
    identify_pim_targets,
)
from repro.core.offload import OffloadEngine, TargetComparison
from repro.core.workload import (
    WorkloadFunction,
    WorkloadCharacterization,
    characterize,
    offloaded_totals,
    OffloadedWorkloadTotals,
)
from repro.core.runner import ExperimentRunner, SweepResult

__all__ = [
    "PimTarget",
    "CandidateCriteria",
    "CandidateEvaluation",
    "identify_pim_targets",
    "OffloadEngine",
    "TargetComparison",
    "WorkloadFunction",
    "WorkloadCharacterization",
 "characterize",
    "offloaded_totals",
    "OffloadedWorkloadTotals",
    "ExperimentRunner",
    "SweepResult",
]
