"""Experiment runner: batch evaluation of PIM targets.

Produces the paper's Figures 18-20 data (normalized energy and runtime per
kernel for CPU-Only / PIM-Core / PIM-Acc) and the headline cross-workload
averages (PIM-Core: -49.1% energy / +44.6% performance; PIM-Acc: -55.4% /
+54.2%).

Sweeps are fault-tolerant: pass a
:class:`~repro.core.resilience.RetryPolicy` and a crashed or hung pool
worker costs one retry instead of the sweep; targets that exhaust their
retries are quarantined into :attr:`SweepResult.failures` (strict mode
upgrades quarantine to a raise).  A :class:`~repro.core.resilience.SweepCheckpoint`
journal makes long sweeps resumable: completed comparisons are appended
as they finish and ``resume=True`` reloads them bit-identically instead
of recomputing.  Without a policy or checkpoint, behaviour (and the
published counter surface) is exactly the legacy fail-fast one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.offload import OffloadEngine, TargetComparison
from repro.core.resilience import (
    ResilientMap,
    RetryPolicy,
    SweepCheckpoint,
    TargetFailure,
    comparison_from_jsonable,
    comparison_to_jsonable,
    maybe_inject_fault,
    sweep_key,
)
from repro.core.target import PimTarget
from repro.energy.components import EnergyParameters
from repro.obs.recorder import get_recorder


@dataclass
class SweepResult:
    """Results for a set of PIM targets evaluated on all machines.

    ``failures`` lists the targets a fault-tolerant sweep quarantined
    after exhausting their retries; when it is non-empty the sweep is
    ``degraded`` and every aggregate is computed over the survivors in
    ``comparisons`` only.
    """

    comparisons: list[TargetComparison] = field(default_factory=list)
    failures: list[TargetFailure] = field(default_factory=list)
    _index: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def by_name(self, name: str) -> TargetComparison:
        if self._index is None or len(self._index) != len(self.comparisons):
            self._index = {c.target.name: c for c in self.comparisons}
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                "no target named %r; available: %s"
                % (name, ", ".join(sorted(self._index)) or "(none)")
            ) from None

    @property
    def names(self) -> list[str]:
        return [c.target.name for c in self.comparisons]

    @property
    def degraded(self) -> bool:
        """Whether any target was quarantined instead of evaluated."""
        return bool(self.failures)

    # ------------------------------------------------------------------
    # Paper-style aggregates (arithmetic means across kernels, as the
    # paper averages "across all of the consumer workloads").
    # ------------------------------------------------------------------
    @property
    def mean_pim_core_energy_reduction(self) -> float:
        return _mean([c.pim_core_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_acc_energy_reduction(self) -> float:
        return _mean([c.pim_acc_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_core_speedup(self) -> float:
        return _mean([c.pim_core_speedup for c in self.comparisons])

    @property
    def mean_pim_acc_speedup(self) -> float:
        return _mean([c.pim_acc_speedup for c in self.comparisons])

    def _survivors(self) -> list[TargetComparison]:
        if not self.comparisons:
            raise ValueError(
                "empty sweep: no surviving comparisons to aggregate over"
                + (
                    " (%d target(s) quarantined)" % len(self.failures)
                    if self.failures
                    else ""
                )
            )
        return self.comparisons

    @property
    def max_pim_core_energy_reduction(self) -> float:
        return max(c.pim_core_energy_reduction for c in self._survivors())

    @property
    def max_pim_acc_energy_reduction(self) -> float:
        return max(c.pim_acc_energy_reduction for c in self._survivors())

    @property
    def max_pim_core_speedup(self) -> float:
        return max(c.pim_core_speedup for c in self._survivors())

    @property
    def max_pim_acc_speedup(self) -> float:
        return max(c.pim_acc_speedup for c in self._survivors())

    def rows(self) -> list[dict]:
        """Flat result rows for the figure/report harnesses.

        Quarantined targets contribute a trailing stub row with
        ``failed=True`` (and no metric keys), so report consumers can
        annotate degraded sweeps instead of silently dropping targets.
        """
        out = []
        for c in self.comparisons:
            energy = c.normalized_energy()
            runtime = c.normalized_runtime()
            out.append(
                {
                    "target": c.target.name,
                    "workload": c.target.workload,
                    "energy_cpu": energy["CPU-Only"],
                    "energy_pim_core": energy["PIM-Core"],
                    "energy_pim_acc": energy["PIM-Acc"],
                    "runtime_cpu": runtime["CPU-Only"],
                    "runtime_pim_core": runtime["PIM-Core"],
                    "runtime_pim_acc": runtime["PIM-Acc"],
                    "speedup_pim_core": c.pim_core_speedup,
                    "speedup_pim_acc": c.pim_acc_speedup,
                }
            )
        for failure in self.failures:
            out.append(
                {
                    "target": failure.target,
                    "workload": "",
                    "failed": True,
                    "attempts": failure.attempts,
                    "error": failure.error,
                }
            )
        return out


#: Per-process engine for parallel sweeps (set by the pool initializer).
_WORKER_ENGINE: OffloadEngine | None = None


def _install_worker_fault_handlers() -> None:
    """Make worker deaths diagnosable.

    ``faulthandler`` turns hard crashes (segfaults, aborts) into stderr
    tracebacks, and a SIGTERM handler does the same for workers the
    resilience layer kills after a timeout — so a killed/hung worker
    leaves evidence of *where* it was instead of dying silently.
    """
    import faulthandler
    import os
    import signal

    try:
        faulthandler.enable()
    except (RuntimeError, OSError):
        pass

    def _dump_and_exit(signum, frame):
        faulthandler.dump_traceback()
        os._exit(128 + signum)

    try:
        signal.signal(signal.SIGTERM, _dump_and_exit)
    except (ValueError, OSError):
        # Not the main thread of the worker, or an exotic platform.
        pass


def _init_worker(system, energy_params, observe: bool = False) -> None:
    global _WORKER_ENGINE
    _install_worker_fault_handlers()
    try:
        _WORKER_ENGINE = OffloadEngine(system, energy_params)
    except BaseException as exc:
        # An initializer failure normally surfaces in the parent as an
        # opaque BrokenProcessPool; leave a one-line cause on stderr.
        print(
            "repro: pool worker initializer failed: %r" % exc,
            file=sys.stderr,
            flush=True,
        )
        raise
    if observe:
        # A recorder cannot cross the process boundary (it holds locks),
        # so each worker records into its own and ships snapshots back.
        from repro.obs.recorder import Recorder, set_recorder

        set_recorder(Recorder())


def _compare_in_worker(target: PimTarget) -> "TargetComparison":
    maybe_inject_fault(target.name)
    return _WORKER_ENGINE.compare(target)


def _compare_in_worker_observed(target: PimTarget):
    """Worker task when observability is on: (comparison, obs snapshot)."""
    recorder = get_recorder()
    recorder.reset()
    with recorder.span("core.runner.target.%s" % target.name):
        maybe_inject_fault(target.name)
        comparison = _WORKER_ENGINE.compare(target)
    _publish_comparison(recorder, comparison)
    return comparison, recorder.snapshot()


def _publish_comparison(recorder, comparison: TargetComparison) -> None:
    """Export one target's results as per-target gauges.

    These six gauges per target are the substrate from which
    :func:`repro.obs.manifest.headline_from_counters` re-derives the
    paper's headline averages out of a manifest alone.
    """
    counters = recorder.counters
    base = "core.runner.target.%s." % comparison.target.name
    for machine, execution in (
        ("cpu", comparison.cpu),
        ("pim_core", comparison.pim_core),
        ("pim_acc", comparison.pim_acc),
    ):
        counters.set(base + "energy_j." + machine, execution.energy_j)
        counters.set(base + "time_s." + machine, execution.time_s)
    counters.add("core.runner.targets", 1)


class ExperimentRunner:
    """Evaluates lists of PIM targets against all three machine models."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        self.system = system
        self.energy_params = energy_params
        self.engine = OffloadEngine(system, energy_params)

    def evaluate(
        self,
        targets: list[PimTarget],
        jobs: int = 1,
        retry_policy: RetryPolicy | None = None,
        checkpoint=None,
        resume: bool = False,
    ) -> SweepResult:
        """Compare every target on all machines.

        Args:
            targets: the PIM targets to evaluate.
            jobs: worker processes; ``1`` evaluates in-process.  Each
                worker builds one engine (via the pool initializer) and
                streams targets through it, so results are identical to
                the serial path, in input order.
            retry_policy: per-target fault containment; ``None`` keeps
                the legacy fail-fast contract (a failure raises).  With
                a policy, failed targets retry with backoff and
                exhausted ones are quarantined into
                :attr:`SweepResult.failures` (strict mode raises
                instead).
            checkpoint: path (or :class:`SweepCheckpoint`) of an
                append-only journal; completed comparisons are recorded
                as they finish.
            resume: reload matching journal entries instead of
                recomputing them; the resumed result is bit-identical
                to an uninterrupted run.
        """
        recorder = get_recorder()
        with recorder.span("core.runner.evaluate"):
            journal = self._journal(checkpoint)
            resumed: dict[str, TargetComparison] = {}
            if journal is not None and resume:
                for name, payload in journal.entries().items():
                    resumed[name] = comparison_from_jsonable(payload)
            resumed = {
                t.name: resumed[t.name] for t in targets if t.name in resumed
            }
            if recorder.enabled and resumed:
                recorder.counters.add("core.resilience.resumed", len(resumed))
                for comparison in resumed.values():
                    _publish_comparison(recorder, comparison)
            pending = [t for t in targets if t.name not in resumed]

            fresh: dict[str, TargetComparison] = {}
            failures: list[TargetFailure] = []
            if pending:
                def journal_success(index, name, value):
                    if journal is None:
                        return
                    comparison = value[0] if isinstance(value, tuple) else value
                    journal.append(name, comparison_to_jsonable(comparison))

                if jobs > 1 and len(pending) > 1:
                    values, failures = self._evaluate_parallel(
                        pending, jobs, retry_policy, recorder, journal_success
                    )
                else:
                    values, failures = self._evaluate_serial(
                        pending, retry_policy, recorder, journal_success
                    )
                fresh = {
                    t.name: v for t, v in zip(pending, values) if v is not None
                }
            comparisons = [
                resumed.get(t.name) or fresh.get(t.name)
                for t in targets
                if t.name in resumed or t.name in fresh
            ]
        return SweepResult(comparisons=comparisons, failures=failures)

    # ------------------------------------------------------------------
    def _evaluate_serial(self, targets, retry_policy, recorder, on_success):
        def compare(target):
            with recorder.span("core.runner.target.%s" % target.name):
                maybe_inject_fault(target.name)
                comparison = self.engine.compare(target)
            if recorder.enabled:
                _publish_comparison(recorder, comparison)
            return comparison

        return ResilientMap(
            compare,
            targets,
            names=[t.name for t in targets],
            policy=retry_policy,
            jobs=1,
            on_success=on_success,
            raise_failures=retry_policy is None,
        ).run()

    def _evaluate_parallel(self, targets, jobs, retry_policy, recorder, on_success):
        self._check_config_ships(recorder)
        mapper = ResilientMap(
            _compare_in_worker_observed if recorder.enabled else _compare_in_worker,
            targets,
            names=[t.name for t in targets],
            policy=retry_policy,
            jobs=min(jobs, len(targets)),
            initializer=_init_worker,
            initargs=(self.system, self.energy_params, recorder.enabled),
            on_success=on_success,
            raise_failures=retry_policy is None,
        )
        values, failures = mapper.run()
        if recorder.enabled:
            # Merge worker snapshots in input order, as the legacy
            # pool.map path did, so additive sums stay deterministic.
            unwrapped = []
            for value in values:
                if value is None:
                    unwrapped.append(None)
                    continue
                comparison, snapshot = value
                recorder.merge_snapshot(snapshot)
                unwrapped.append(comparison)
            values = unwrapped
        return values, failures

    def _check_config_ships(self, recorder) -> None:
        """Fail fast, with a cause, when the config cannot reach workers.

        Without this, a config that does not pickle cleanly dies inside
        the pool initializer and surfaces only as an opaque
        ``BrokenProcessPool``.
        """
        import pickle

        try:
            pickle.dumps((self.system, self.energy_params, recorder.enabled))
        except Exception as exc:
            raise ValueError(
                "configuration cannot be shipped to pool workers "
                "(must pickle cleanly): %r" % exc
            ) from exc

    def _journal(self, checkpoint) -> SweepCheckpoint | None:
        if checkpoint is None:
            return None
        if isinstance(checkpoint, SweepCheckpoint):
            return checkpoint
        return SweepCheckpoint(
            checkpoint, key=sweep_key((self.system, self.energy_params))
        )


def _mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
