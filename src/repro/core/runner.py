"""Experiment runner: batch evaluation of PIM targets.

Produces the paper's Figures 18-20 data (normalized energy and runtime per
kernel for CPU-Only / PIM-Core / PIM-Acc) and the headline cross-workload
averages (PIM-Core: -49.1% energy / +44.6% performance; PIM-Acc: -55.4% /
+54.2%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.offload import OffloadEngine, TargetComparison
from repro.core.target import PimTarget
from repro.energy.components import EnergyParameters


@dataclass
class SweepResult:
    """Results for a set of PIM targets evaluated on all machines."""

    comparisons: list[TargetComparison] = field(default_factory=list)

    def by_name(self, name: str) -> TargetComparison:
        for c in self.comparisons:
            if c.target.name == name:
                return c
        raise KeyError("no target named %r" % name)

    @property
    def names(self) -> list[str]:
        return [c.target.name for c in self.comparisons]

    # ------------------------------------------------------------------
    # Paper-style aggregates (arithmetic means across kernels, as the
    # paper averages "across all of the consumer workloads").
    # ------------------------------------------------------------------
    @property
    def mean_pim_core_energy_reduction(self) -> float:
        return _mean([c.pim_core_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_acc_energy_reduction(self) -> float:
        return _mean([c.pim_acc_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_core_speedup(self) -> float:
        return _mean([c.pim_core_speedup for c in self.comparisons])

    @property
    def mean_pim_acc_speedup(self) -> float:
        return _mean([c.pim_acc_speedup for c in self.comparisons])

    @property
    def max_pim_core_energy_reduction(self) -> float:
        return max(c.pim_core_energy_reduction for c in self.comparisons)

    @property
    def max_pim_acc_energy_reduction(self) -> float:
        return max(c.pim_acc_energy_reduction for c in self.comparisons)

    @property
    def max_pim_core_speedup(self) -> float:
        return max(c.pim_core_speedup for c in self.comparisons)

    @property
    def max_pim_acc_speedup(self) -> float:
        return max(c.pim_acc_speedup for c in self.comparisons)

    def rows(self) -> list[dict]:
        """Flat result rows for the figure/report harnesses."""
        out = []
        for c in self.comparisons:
            energy = c.normalized_energy()
            runtime = c.normalized_runtime()
            out.append(
                {
                    "target": c.target.name,
                    "workload": c.target.workload,
                    "energy_cpu": energy["CPU-Only"],
                    "energy_pim_core": energy["PIM-Core"],
                    "energy_pim_acc": energy["PIM-Acc"],
                    "runtime_cpu": runtime["CPU-Only"],
                    "runtime_pim_core": runtime["PIM-Core"],
                    "runtime_pim_acc": runtime["PIM-Acc"],
                    "speedup_pim_core": c.pim_core_speedup,
                    "speedup_pim_acc": c.pim_acc_speedup,
                }
            )
        return out


class ExperimentRunner:
    """Evaluates lists of PIM targets against all three machine models."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        self.engine = OffloadEngine(system, energy_params)

    def evaluate(self, targets: list[PimTarget]) -> SweepResult:
        return SweepResult(comparisons=[self.engine.compare(t) for t in targets])


def _mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
