"""Experiment runner: batch evaluation of PIM targets.

Produces the paper's Figures 18-20 data (normalized energy and runtime per
kernel for CPU-Only / PIM-Core / PIM-Acc) and the headline cross-workload
averages (PIM-Core: -49.1% energy / +44.6% performance; PIM-Acc: -55.4% /
+54.2%).

Sweeps are fault-tolerant: pass a
:class:`~repro.core.resilience.RetryPolicy` and a crashed or hung pool
worker costs one retry instead of the sweep; targets that exhaust their
retries are quarantined into :attr:`SweepResult.failures` (strict mode
upgrades quarantine to a raise).  A :class:`~repro.core.resilience.SweepCheckpoint`
journal makes long sweeps resumable: completed comparisons are appended
as they finish and ``resume=True`` reloads them bit-identically instead
of recomputing.  Without a policy or checkpoint, behaviour (and the
published counter surface) is exactly the legacy fail-fast one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import SystemConfig
from repro.core.offload import OffloadEngine, TargetComparison
from repro.core.resilience import (
    ResilientMap,
    RetryPolicy,
    SweepCheckpoint,
    TargetFailure,
    comparison_from_jsonable,
    comparison_to_jsonable,
    maybe_inject_fault,
    sweep_key,
)
from repro.core.target import PimTarget
from repro.energy.components import EnergyParameters
from repro.obs.recorder import get_recorder


@dataclass
class SweepResult:
    """Results for a set of PIM targets evaluated on all machines.

    ``failures`` lists the targets a fault-tolerant sweep quarantined
    after exhausting their retries; when it is non-empty the sweep is
    ``degraded`` and every aggregate is computed over the survivors in
    ``comparisons`` only.
    """

    comparisons: list[TargetComparison] = field(default_factory=list)
    failures: list[TargetFailure] = field(default_factory=list)
    _index: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def by_name(self, name: str) -> TargetComparison:
        if self._index is None or len(self._index) != len(self.comparisons):
            self._index = {c.target.name: c for c in self.comparisons}
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                "no target named %r; available: %s"
                % (name, ", ".join(sorted(self._index)) or "(none)")
            ) from None

    @property
    def names(self) -> list[str]:
        return [c.target.name for c in self.comparisons]

    @property
    def degraded(self) -> bool:
        """Whether any target was quarantined instead of evaluated."""
        return bool(self.failures)

    # ------------------------------------------------------------------
    # Paper-style aggregates (arithmetic means across kernels, as the
    # paper averages "across all of the consumer workloads").
    # ------------------------------------------------------------------
    @property
    def mean_pim_core_energy_reduction(self) -> float:
        return _mean([c.pim_core_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_acc_energy_reduction(self) -> float:
        return _mean([c.pim_acc_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_core_speedup(self) -> float:
        return _mean([c.pim_core_speedup for c in self.comparisons])

    @property
    def mean_pim_acc_speedup(self) -> float:
        return _mean([c.pim_acc_speedup for c in self.comparisons])

    def _survivors(self) -> list[TargetComparison]:
        if not self.comparisons:
            raise ValueError(
                "empty sweep: no surviving comparisons to aggregate over"
                + (
                    " (%d target(s) quarantined)" % len(self.failures)
                    if self.failures
                    else ""
                )
            )
        return self.comparisons

    @property
    def max_pim_core_energy_reduction(self) -> float:
        return max(c.pim_core_energy_reduction for c in self._survivors())

    @property
    def max_pim_acc_energy_reduction(self) -> float:
        return max(c.pim_acc_energy_reduction for c in self._survivors())

    @property
    def max_pim_core_speedup(self) -> float:
        return max(c.pim_core_speedup for c in self._survivors())

    @property
    def max_pim_acc_speedup(self) -> float:
        return max(c.pim_acc_speedup for c in self._survivors())

    def rows(self) -> list[dict]:
        """Flat result rows for the figure/report harnesses.

        Quarantined targets contribute a trailing stub row with
        ``failed=True`` (and no metric keys), so report consumers can
        annotate degraded sweeps instead of silently dropping targets.
        """
        out = []
        for c in self.comparisons:
            energy = c.normalized_energy()
            runtime = c.normalized_runtime()
            out.append(
                {
                    "target": c.target.name,
                    "workload": c.target.workload,
                    "energy_cpu": energy["CPU-Only"],
                    "energy_pim_core": energy["PIM-Core"],
                    "energy_pim_acc": energy["PIM-Acc"],
                    "runtime_cpu": runtime["CPU-Only"],
                    "runtime_pim_core": runtime["PIM-Core"],
                    "runtime_pim_acc": runtime["PIM-Acc"],
                    "speedup_pim_core": c.pim_core_speedup,
                    "speedup_pim_acc": c.pim_acc_speedup,
                }
            )
        for failure in self.failures:
            out.append(
                {
                    "target": failure.target,
                    "workload": "",
                    "failed": True,
                    "attempts": failure.attempts,
                    "error": failure.error,
                }
            )
        return out


#: Per-process engine for parallel sweeps (set by the pool initializer).
_WORKER_ENGINE: OffloadEngine | None = None


def _install_worker_fault_handlers() -> None:
    """Make worker deaths diagnosable.

    ``faulthandler`` turns hard crashes (segfaults, aborts) into stderr
    tracebacks, and a SIGTERM handler does the same for workers the
    resilience layer kills after a timeout — so a killed/hung worker
    leaves evidence of *where* it was instead of dying silently.
    """
    import faulthandler
    import os
    import signal

    try:
        faulthandler.enable()
    except (RuntimeError, OSError):
        pass

    def _dump_and_exit(signum, frame):
        faulthandler.dump_traceback()
        os._exit(128 + signum)

    try:
        signal.signal(signal.SIGTERM, _dump_and_exit)
    except (ValueError, OSError):
        # Not the main thread of the worker, or an exotic platform.
        pass


def _init_worker(system, energy_params, observe: bool = False) -> None:
    global _WORKER_ENGINE
    _install_worker_fault_handlers()
    try:
        _WORKER_ENGINE = OffloadEngine(system, energy_params)
    except BaseException as exc:
        # An initializer failure normally surfaces in the parent as an
        # opaque BrokenProcessPool; leave a one-line cause on stderr.
        print(
            "repro: pool worker initializer failed: %r" % exc,
            file=sys.stderr,
            flush=True,
        )
        raise
    if observe:
        # A recorder cannot cross the process boundary (it holds locks),
        # so each worker records into its own and ships snapshots back.
        from repro.obs.recorder import Recorder, set_recorder

        set_recorder(Recorder())


def _compare_in_worker(target: PimTarget) -> "TargetComparison":
    maybe_inject_fault(target.name)
    return _WORKER_ENGINE.compare(target)


def _compare_in_worker_observed(target: PimTarget):
    """Worker task when observability is on: (comparison, obs snapshot)."""
    recorder = get_recorder()
    recorder.reset()
    with recorder.span("core.runner.target.%s" % target.name):
        maybe_inject_fault(target.name)
        comparison = _WORKER_ENGINE.compare(target)
    _publish_comparison(recorder, comparison)
    return comparison, recorder.snapshot()


def _publish_comparison(recorder, comparison: TargetComparison) -> None:
    """Export one target's results as per-target gauges.

    These six gauges per target are the substrate from which
    :func:`repro.obs.manifest.headline_from_counters` re-derives the
    paper's headline averages out of a manifest alone.
    """
    counters = recorder.counters
    base = "core.runner.target.%s." % comparison.target.name
    for machine, execution in (
        ("cpu", comparison.cpu),
        ("pim_core", comparison.pim_core),
        ("pim_acc", comparison.pim_acc),
    ):
        counters.set(base + "energy_j." + machine, execution.energy_j)
        counters.set(base + "time_s." + machine, execution.time_s)
    counters.add("core.runner.targets", 1)


class ExperimentRunner:
    """Evaluates lists of PIM targets against all three machine models."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        self.system = system
        self.energy_params = energy_params
        self.engine = OffloadEngine(system, energy_params)

    def evaluate(
        self,
        targets: list[PimTarget],
        jobs: int = 1,
        retry_policy: RetryPolicy | None = None,
        checkpoint=None,
        resume: bool = False,
        pool_factory=None,
    ) -> SweepResult:
        """Compare every target on all machines.

        Args:
            targets: the PIM targets to evaluate.
            jobs: worker processes; ``1`` evaluates in-process.  Each
                worker builds one engine (via the pool initializer) and
                streams targets through it, so results are identical to
                the serial path, in input order.
            retry_policy: per-target fault containment; ``None`` keeps
                the legacy fail-fast contract (a failure raises).  With
                a policy, failed targets retry with backoff and
                exhausted ones are quarantined into
                :attr:`SweepResult.failures` (strict mode raises
                instead).
            checkpoint: path (or :class:`SweepCheckpoint`) of an
                append-only journal; completed comparisons are recorded
                as they finish.
            resume: reload matching journal entries instead of
                recomputing them; the resumed result is bit-identical
                to an uninterrupted run.
            pool_factory: executor seam forwarded to
                :class:`~repro.core.resilience.ResilientMap` — e.g. a
                remote worker fleet via
                :func:`repro.fleet.fleet_pool_factory`.
        """
        recorder = get_recorder()
        with recorder.span("core.runner.evaluate"):
            journal = self._journal(checkpoint)
            try:
                resumed: dict[str, TargetComparison] = {}
                if journal is not None and resume:
                    for name, payload in journal.entries().items():
                        resumed[name] = comparison_from_jsonable(payload)
                resumed = {
                    t.name: resumed[t.name] for t in targets if t.name in resumed
                }
                if recorder.enabled and resumed:
                    recorder.counters.add("core.resilience.resumed", len(resumed))
                    for comparison in resumed.values():
                        _publish_comparison(recorder, comparison)
                pending = [t for t in targets if t.name not in resumed]

                fresh: dict[str, TargetComparison] = {}
                failures: list[TargetFailure] = []
                if pending:
                    def journal_success(index, name, value):
                        if journal is None:
                            return
                        comparison = value[0] if isinstance(value, tuple) else value
                        journal.append(name, comparison_to_jsonable(comparison))

                    if jobs > 1 and len(pending) > 1:
                        values, failures = self._evaluate_parallel(
                            pending, jobs, retry_policy, recorder,
                            journal_success, pool_factory,
                        )
                    else:
                        values, failures = self._evaluate_serial(
                            pending, retry_policy, recorder, journal_success
                        )
                    fresh = {
                        t.name: v for t, v in zip(pending, values) if v is not None
                    }
                comparisons = [
                    resumed.get(t.name) or fresh.get(t.name)
                    for t in targets
                    if t.name in resumed or t.name in fresh
                ]
            finally:
                # A journal built here from a path owns an fd; callers
                # who passed a SweepCheckpoint keep control of theirs.
                if journal is not None and journal is not checkpoint:
                    journal.close()
        return SweepResult(comparisons=comparisons, failures=failures)

    # ------------------------------------------------------------------
    def _evaluate_serial(self, targets, retry_policy, recorder, on_success):
        def compare(target):
            with recorder.span("core.runner.target.%s" % target.name):
                maybe_inject_fault(target.name)
                comparison = self.engine.compare(target)
            if recorder.enabled:
                _publish_comparison(recorder, comparison)
            return comparison

        return ResilientMap(
            compare,
            targets,
            names=[t.name for t in targets],
            policy=retry_policy,
            jobs=1,
            on_success=on_success,
            raise_failures=retry_policy is None,
        ).run()

    def _evaluate_parallel(
        self, targets, jobs, retry_policy, recorder, on_success,
        pool_factory=None,
    ):
        self._check_config_ships(recorder)
        mapper = ResilientMap(
            _compare_in_worker_observed if recorder.enabled else _compare_in_worker,
            targets,
            names=[t.name for t in targets],
            policy=retry_policy,
            jobs=min(jobs, len(targets)),
            initializer=_init_worker,
            initargs=(self.system, self.energy_params, recorder.enabled),
            on_success=on_success,
            raise_failures=retry_policy is None,
            pool_factory=pool_factory,
        )
        values, failures = mapper.run()
        if recorder.enabled:
            # Merge worker snapshots in input order, as the legacy
            # pool.map path did, so additive sums stay deterministic.
            unwrapped = []
            for value in values:
                if value is None:
                    unwrapped.append(None)
                    continue
                comparison, snapshot = value
                recorder.merge_snapshot(snapshot)
                unwrapped.append(comparison)
            values = unwrapped
        return values, failures

    def _check_config_ships(self, recorder) -> None:
        """Fail fast, with a cause, when the config cannot reach workers.

        Without this, a config that does not pickle cleanly dies inside
        the pool initializer and surfaces only as an opaque
        ``BrokenProcessPool``.
        """
        import pickle

        try:
            pickle.dumps((self.system, self.energy_params, recorder.enabled))
        except Exception as exc:
            raise ValueError(
                "configuration cannot be shipped to pool workers "
                "(must pickle cleanly): %r" % exc
            ) from exc

    def _journal(self, checkpoint) -> SweepCheckpoint | None:
        if checkpoint is None:
            return None
        if isinstance(checkpoint, SweepCheckpoint):
            return checkpoint
        return SweepCheckpoint(
            checkpoint, key=sweep_key((self.system, self.energy_params))
        )


def _mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


# ----------------------------------------------------------------------
# Cache-geometry config sweeps over one shared trace artifact
# ----------------------------------------------------------------------

#: Per-process replay state for parallel config sweeps: (trace, params,
#: instructions_per_access), set by the pool initializer from the
#: memory-mapped artifact so workers never re-trace the kernel.
_SWEEP_TRACE_STATE = None


def _open_shared_artifact(artifact_path, content_hash):
    """Resolve a shard's trace by path, falling back to content hash.

    Local pool workers share the client's filesystem, so the path wins.
    A fleet worker on another machine resolves the same ``content_hash``
    against its local :class:`~repro.sim.artifact.TraceStore` instead —
    the pickled-by-content-reference half of remote shard dispatch.
    Either way the bytes that replay are hash-verified.
    """
    from repro.sim.artifact import TraceArtifact, TraceStore

    try:
        return TraceArtifact.load(
            artifact_path, mmap=True, expected_hash=content_hash
        )
    except (OSError, ValueError) as exc:
        artifact = TraceStore().find_by_hash(content_hash)
        if artifact is None:
            raise FileNotFoundError(
                "trace artifact %r unavailable and no local artifact "
                "matches content hash %s" % (str(artifact_path), content_hash)
            ) from exc
        return artifact


def _init_sweep_worker(
    artifact_path, content_hash, timing_params, instructions_per_access
):
    global _SWEEP_TRACE_STATE
    _install_worker_fault_handlers()

    try:
        artifact = _open_shared_artifact(artifact_path, content_hash)
        _SWEEP_TRACE_STATE = (
            artifact.trace(), timing_params, instructions_per_access
        )
    except BaseException as exc:
        print(
            "repro: sweep worker initializer failed: %r" % exc,
            file=sys.stderr,
            flush=True,
        )
        raise


def _sweep_config_in_worker(job):
    label, soc = job
    maybe_inject_fault(label)
    trace, params, ipa = _SWEEP_TRACE_STATE
    return _evaluate_sweep_config(trace, soc, params, ipa)


#: Per-process batch engine for sharded sweeps (set by the shard pool
#: initializer from the memory-mapped artifact; reused across shards).
_SHARD_EVALUATOR = None


def _init_shard_worker(
    artifact_path,
    content_hash,
    timing_params,
    instructions_per_access,
    observe: bool = False,
):
    global _SHARD_EVALUATOR
    _install_worker_fault_handlers()
    from repro.sim.batch import ShardEvaluator

    try:
        # Zero-copy trace sharing: the worker opens the artifact by path
        # *and* content hash — no trace bytes cross the pool boundary,
        # and a file swapped under the path is rejected at open.  A
        # worker without the path (remote fleet) resolves the hash
        # against its local store instead.
        artifact = _open_shared_artifact(artifact_path, content_hash)
        _SHARD_EVALUATOR = ShardEvaluator(
            artifact.trace(),
            params=timing_params,
            instructions_per_access=instructions_per_access,
        )
    except BaseException as exc:
        print(
            "repro: shard worker initializer failed: %r" % exc,
            file=sys.stderr,
            flush=True,
        )
        raise
    if observe:
        from repro.obs.recorder import Recorder, set_recorder

        set_recorder(Recorder())


def _sweep_shard_in_worker(job):
    """One shard's rows: ``[(plan_index, label, row), ...]``.

    Fault hooks fire on the shard name and then on each config label,
    so fault plans can target either a whole shard (worker-level
    crash/hang) or a single geometry within it.
    """
    shard_name, items = job
    maybe_inject_fault(shard_name)
    for _, label, _ in items:
        maybe_inject_fault(label)
    stats, timings = _SHARD_EVALUATOR.evaluate([soc for _, _, soc in items])
    ipa = _SHARD_EVALUATOR.instructions_per_access
    return [
        (index, label, _sweep_row(soc, s, t, ipa))
        for (index, label, soc), s, t in zip(items, stats, timings)
    ]


def _sweep_shard_in_worker_observed(job):
    """Shard task when observability is on: (rows, obs snapshot)."""
    recorder = get_recorder()
    recorder.reset()
    with recorder.span("core.runner.shard.%s" % job[0]):
        rows = _sweep_shard_in_worker(job)
    return rows, recorder.snapshot()


def _evaluate_sweep_config(trace, soc, timing_params, instructions_per_access):
    """One geometry's row: serial cache replay + serial timing replay."""
    from repro.sim.cache import CacheHierarchy
    from repro.sim.timing import TimingSimulator

    stats = CacheHierarchy(soc).replay_fast(trace)
    timing = TimingSimulator(soc, timing_params).replay_fast(
        trace, instructions_per_access
    )
    return _sweep_row(soc, stats, timing, instructions_per_access)


def _sweep_row(soc, stats, timing, instructions_per_access) -> dict:
    """A JSON-able sweep-point row (also the checkpoint payload).

    ``pim_candidate`` applies the paper's Section 3.2 memory-intensity
    criterion (LLC MPKI > 10) at this geometry's *measured* miss count,
    with instructions estimated from the replayed access count.
    """
    from repro.config import soc_cache_label

    instructions = timing.accesses * instructions_per_access
    mpki = (
        stats.llc.misses / (instructions / 1000.0) if instructions > 0 else 0.0
    )
    return {
        "config": soc_cache_label(soc),
        "l1_bytes": soc.l1.size_bytes,
        "l1_assoc": soc.l1.associativity,
        "llc_bytes": soc.l2.size_bytes,
        "llc_assoc": soc.l2.associativity,
        "accesses": timing.accesses,
        "l1_misses": stats.l1.misses,
        "l1_miss_rate": (
            stats.l1.misses / stats.l1.accesses if stats.l1.accesses else 0.0
        ),
        "llc_misses": stats.llc.misses,
        "llc_mpki": mpki,
        "pim_candidate": mpki > 10.0,
        "dram_line_reads": stats.dram_line_reads,
        "dram_line_writes": stats.dram_line_writes,
        "dram_bytes": stats.dram_bytes,
        "cycles": timing.cycles,
        "timing_dram_misses": timing.dram_misses,
        "stall_fraction": timing.stall_fraction,
    }


@dataclass
class ConfigSweepResult:
    """Rows for every surviving geometry, in input order."""

    rows: list[dict] = field(default_factory=list)
    failures: list[TargetFailure] = field(default_factory=list)
    #: Whether the batched engine produced the fresh rows (False: serial
    #: path, by request or after a fault-containment fallback).
    batched: bool = False

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    def by_config(self, label: str) -> dict:
        for row in self.rows:
            if row["config"] == label:
                return row
        raise KeyError("no sweep row for config %r" % label)


class ConfigSweep:
    """Evaluates N cache geometries over one shared trace artifact.

    The artifact (:class:`repro.sim.artifact.TraceArtifact`) is
    materialized once per workload; every geometry replays the same
    memoized run stream.  ``batch=True`` evaluates all pending
    geometries in a single pass (:func:`repro.sim.batch.replay_batch` —
    bit-identical per config to the serial path, so the two modes can
    be mixed freely across resume boundaries).

    With ``jobs > 1`` the batch plan itself is sharded across pool
    workers (:func:`repro.sim.batch.plan_shards`): each worker opens the
    on-disk artifact by path + content hash (memory-mapped — the trace
    is never pickled) and evaluates its shard through the same
    pour-and-``_finish`` path, so parallel rows are bit-identical to
    the single-process batch and to serial replay.  An in-memory
    artifact is auto-saved to ``trace_dir`` first.

    Resilience composes as in :class:`ExperimentRunner`: a checkpoint
    journal keyed by the artifact's ``content_hash`` makes sweeps
    resumable, and a retry policy quarantines a faulty *config* without
    discarding the shared trace — a batched pass that fails falls back
    to the resilient serial path over the same in-memory artifact, so
    one bad geometry costs its own row, never the trace.  A shard whose
    worker keeps dying is contained the same way: its configs fall back
    to the in-process serial path after the retry budget is spent.
    """

    def __init__(
        self,
        artifact,
        timing_params=None,
        instructions_per_access: float = 2.0,
        trace_dir=None,
    ):
        from repro.sim.timing import TimingParameters

        self.artifact = artifact
        self.timing_params = timing_params or TimingParameters()
        self.instructions_per_access = instructions_per_access
        self.trace_dir = trace_dir

    def evaluate(
        self,
        socs,
        batch: bool = True,
        jobs: int = 1,
        retry_policy: RetryPolicy | None = None,
        checkpoint=None,
        resume: bool = False,
        pool_factory=None,
    ) -> ConfigSweepResult:
        from repro.config import soc_cache_label

        socs = list(socs)
        labels = [soc_cache_label(s) for s in socs]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate cache geometries in sweep: %r" % labels)
        recorder = get_recorder()
        with recorder.span("core.runner.config_sweep"):
            journal = self._journal(checkpoint)
            try:
                resumed: dict[str, dict] = {}
                if journal is not None and resume:
                    entries = journal.entries()
                    resumed = {
                        label: entries[label] for label in labels if label in entries
                    }
                    if recorder.enabled and resumed:
                        recorder.counters.add(
                            "core.resilience.resumed", len(resumed)
                        )
                pending = [
                    (label, soc)
                    for label, soc in zip(labels, socs)
                    if label not in resumed
                ]
                fresh: dict[str, dict] = {}
                failures: list[TargetFailure] = []
                batched = False
                if pending and batch and jobs > 1 and len(pending) > 1:
                    parallel = self._evaluate_batch_parallel(
                        pending, jobs, retry_policy, journal, recorder,
                        pool_factory,
                    )
                    if parallel is not None:
                        shard_fresh, failures, used_fallback = parallel
                        fresh.update(shard_fresh)
                        batched = not used_fallback
                        pending = []
                if pending and batch:
                    rows = self._evaluate_batch(pending, retry_policy, recorder)
                    if rows is not None:
                        batched = True
                        for (label, _), row in zip(pending, rows):
                            fresh[label] = row
                            if journal is not None:
                                journal.append(label, row)
                        pending = []
                if pending:
                    values, failures = self._evaluate_serial(
                        pending, jobs, retry_policy, journal, recorder,
                        pool_factory,
                    )
                    fresh.update(
                        (label, row)
                        for (label, _), row in zip(pending, values)
                        if row is not None
                    )
                if recorder.enabled:
                    recorder.counters.add("core.runner.config_sweeps", 1)
                    recorder.counters.add(
                        "core.runner.config_sweep_points", len(fresh) + len(resumed)
                    )
            finally:
                if journal is not None and journal is not checkpoint:
                    journal.close()
        rows = [
            (resumed.get(label) or fresh.get(label))
            for label in labels
            if label in resumed or label in fresh
        ]
        return ConfigSweepResult(rows=rows, failures=failures, batched=batched)

    # ------------------------------------------------------------------
    def _evaluate_batch(self, pending, retry_policy, recorder):
        """All pending geometries in one shared pass; None = fall back.

        Fault-injection hooks fire per config *before* the pass, so a
        planned fault degrades to the serial path (where it is retried
        and, if persistent, quarantined alone) instead of poisoning the
        batch.  Any batch-path failure is contained the same way when a
        retry policy is present; without one the legacy fail-fast
        contract applies.
        """
        from repro.sim.batch import sweep_batch

        trace = self.artifact.trace()
        try:
            for label, _ in pending:
                maybe_inject_fault(label)
            stats, timings = sweep_batch(
                trace,
                [soc for _, soc in pending],
                params=self.timing_params,
                instructions_per_access=self.instructions_per_access,
            )
        except Exception:
            if retry_policy is None:
                raise
            if recorder.enabled:
                recorder.counters.add("core.runner.batch_fallbacks", 1)
            return None
        return [
            _sweep_row(soc, s, t, self.instructions_per_access)
            for (_, soc), s, t in zip(pending, stats, timings)
        ]

    def _evaluate_batch_parallel(
        self, pending, jobs, retry_policy, journal, recorder,
        pool_factory=None,
    ):
        """Shards of one batch plan across pool workers; None = not sharded.

        Returns ``(fresh, failures, used_fallback)``.  The plan is
        partitioned by L1 geometry (:func:`repro.sim.batch.plan_shards`)
        and each shard runs in a pool worker that memory-maps the
        artifact — only geometry specs travel out and compact row dicts
        travel back.  Shard workers publish per-config ``sim.*``
        counters into their own recorders (merged here); the plan-level
        ``sim.replay_batch.*`` records are published exactly once by
        this parent, so the merged registry matches a single-process
        batched sweep.  A shard that exhausts its retries is contained:
        its configs fall back to the in-process serial path
        (``core.runner.shard_fallbacks``).
        """
        from repro.sim.batch import plan_shards, publish_sweep_plan

        try:
            path = self._ensure_artifact_path()
        except Exception:
            if retry_policy is None:
                raise
            if recorder.enabled:
                recorder.counters.add("core.runner.batch_fallbacks", 1)
            return None  # the in-memory single-process batch still works
        items = [(i, label, soc) for i, (label, soc) in enumerate(pending)]
        shards = plan_shards(items, jobs)
        if len(shards) < 2:
            return None
        shard_names = ["shard-%d" % k for k in range(len(shards))]
        observe = recorder.enabled

        def journal_success(index, name, value):
            if journal is None:
                return
            rows = value[0] if isinstance(value, tuple) else value
            for _, label, row in rows:
                journal.append(label, row)

        jobs_used = min(jobs, len(shards))
        values, shard_failures = ResilientMap(
            _sweep_shard_in_worker_observed if observe else _sweep_shard_in_worker,
            list(zip(shard_names, shards)),
            names=shard_names,
            policy=retry_policy,
            jobs=jobs_used,
            initializer=_init_shard_worker,
            initargs=(
                str(path),
                self.artifact.content_hash,
                self.timing_params,
                self.instructions_per_access,
                observe,
            ),
            on_success=journal_success,
            raise_failures=retry_policy is None,
            pool_factory=pool_factory,
        ).run()
        fresh: dict[str, dict] = {}
        for value in values:
            if value is None:
                continue
            if observe:
                rows, snapshot = value
                recorder.merge_snapshot(snapshot)
            else:
                rows = value
            for _, label, row in rows:
                fresh[label] = row
        failures: list[TargetFailure] = []
        fb_pending = []
        if shard_failures:
            by_name = dict(zip(shard_names, shards))
            fb_items = sorted(
                (item for f in shard_failures for item in by_name[f.target]),
                key=lambda item: item[0],
            )
            fb_pending = [(label, soc) for _, label, soc in fb_items]
            if recorder.enabled:
                recorder.counters.add(
                    "core.runner.shard_fallbacks", len(shard_failures)
                )
            fb_values, failures = self._evaluate_serial(
                fb_pending, 1, retry_policy, journal, recorder
            )
            fresh.update(
                (label, row)
                for (label, _), row in zip(fb_pending, fb_values)
                if row is not None
            )
        if recorder.enabled:
            n_sharded = len(pending) - len(fb_pending)
            if n_sharded:
                publish_sweep_plan(
                    recorder, n_sharded, self.artifact.num_runs
                )
            recorder.counters.add("core.runner.parallel_batches", 1)
            recorder.counters.add("core.runner.shards", len(shards))
            recorder.counters.max("core.runner.pool_workers", jobs_used)
        return fresh, failures, bool(shard_failures)

    def _ensure_artifact_path(self) -> Path:
        """The artifact's on-disk path, auto-saving an in-memory one.

        Pool workers open the trace by path + content hash instead of
        pickling columns, so a sharded sweep needs a file.  An artifact
        built in memory is saved once into ``trace_dir`` (default: the
        cache's trace directory), counted as ``sim.artifact.autosaves``
        — parallel sweeps never silently degrade to single-process.
        """
        if self.artifact.path is not None:
            return self.artifact.path
        from repro.core.memo import default_cache_dir

        directory = (
            Path(self.trace_dir)
            if self.trace_dir is not None
            else default_cache_dir() / "traces"
        )
        safe = "".join(
            c if (c.isalnum() or c in "-_.") else "_"
            for c in (self.artifact.workload or "trace")
        )
        path = directory / (
            "auto-%s-%s.trace" % (safe, self.artifact.content_hash[:16])
        )
        self.artifact.save(path)
        get_recorder().counters.add("sim.artifact.autosaves", 1)
        return path

    def _evaluate_serial(
        self, pending, jobs, retry_policy, journal, recorder,
        pool_factory=None,
    ):
        def journal_success(index, name, value):
            if journal is not None:
                journal.append(name, value)

        names = [label for label, _ in pending]
        if jobs > 1 and len(pending) > 1:
            path = self._ensure_artifact_path()
            mapper = ResilientMap(
                _sweep_config_in_worker,
                pending,
                names=names,
                policy=retry_policy,
                jobs=min(jobs, len(pending)),
                initializer=_init_sweep_worker,
                initargs=(
                    str(path),
                    self.artifact.content_hash,
                    self.timing_params,
                    self.instructions_per_access,
                ),
                on_success=journal_success,
                raise_failures=retry_policy is None,
                pool_factory=pool_factory,
            )
            return mapper.run()
        trace = self.artifact.trace()

        def evaluate_one(job):
            label, soc = job
            with recorder.span("core.runner.config.%s" % label):
                maybe_inject_fault(label)
                return _evaluate_sweep_config(
                    trace, soc, self.timing_params, self.instructions_per_access
                )

        return ResilientMap(
            evaluate_one,
            pending,
            names=names,
            policy=retry_policy,
            jobs=1,
            on_success=journal_success,
            raise_failures=retry_policy is None,
        ).run()

    def _journal(self, checkpoint) -> SweepCheckpoint | None:
        """Journal keyed by artifact content + sweep parameters.

        Embedding ``content_hash`` means a journal written against one
        trace can never resume a sweep over a different one — the
        mismatched key rotates the file aside, exactly like a code edit.
        """
        if checkpoint is None:
            return None
        if isinstance(checkpoint, SweepCheckpoint):
            return checkpoint
        key = "%s:%s" % (
            self.artifact.content_hash,
            sweep_key((self.timing_params, self.instructions_per_access)),
        )
        return SweepCheckpoint(checkpoint, key=key)
