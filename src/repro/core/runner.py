"""Experiment runner: batch evaluation of PIM targets.

Produces the paper's Figures 18-20 data (normalized energy and runtime per
kernel for CPU-Only / PIM-Core / PIM-Acc) and the headline cross-workload
averages (PIM-Core: -49.1% energy / +44.6% performance; PIM-Acc: -55.4% /
+54.2%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.offload import OffloadEngine, TargetComparison
from repro.core.target import PimTarget
from repro.energy.components import EnergyParameters
from repro.obs.recorder import get_recorder


@dataclass
class SweepResult:
    """Results for a set of PIM targets evaluated on all machines."""

    comparisons: list[TargetComparison] = field(default_factory=list)
    _index: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def by_name(self, name: str) -> TargetComparison:
        if self._index is None or len(self._index) != len(self.comparisons):
            self._index = {c.target.name: c for c in self.comparisons}
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                "no target named %r; available: %s"
                % (name, ", ".join(sorted(self._index)) or "(none)")
            ) from None

    @property
    def names(self) -> list[str]:
        return [c.target.name for c in self.comparisons]

    # ------------------------------------------------------------------
    # Paper-style aggregates (arithmetic means across kernels, as the
    # paper averages "across all of the consumer workloads").
    # ------------------------------------------------------------------
    @property
    def mean_pim_core_energy_reduction(self) -> float:
        return _mean([c.pim_core_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_acc_energy_reduction(self) -> float:
        return _mean([c.pim_acc_energy_reduction for c in self.comparisons])

    @property
    def mean_pim_core_speedup(self) -> float:
        return _mean([c.pim_core_speedup for c in self.comparisons])

    @property
    def mean_pim_acc_speedup(self) -> float:
        return _mean([c.pim_acc_speedup for c in self.comparisons])

    @property
    def max_pim_core_energy_reduction(self) -> float:
        return max(c.pim_core_energy_reduction for c in self.comparisons)

    @property
    def max_pim_acc_energy_reduction(self) -> float:
        return max(c.pim_acc_energy_reduction for c in self.comparisons)

    @property
    def max_pim_core_speedup(self) -> float:
        return max(c.pim_core_speedup for c in self.comparisons)

    @property
    def max_pim_acc_speedup(self) -> float:
        return max(c.pim_acc_speedup for c in self.comparisons)

    def rows(self) -> list[dict]:
        """Flat result rows for the figure/report harnesses."""
        out = []
        for c in self.comparisons:
            energy = c.normalized_energy()
            runtime = c.normalized_runtime()
            out.append(
                {
                    "target": c.target.name,
                    "workload": c.target.workload,
                    "energy_cpu": energy["CPU-Only"],
                    "energy_pim_core": energy["PIM-Core"],
                    "energy_pim_acc": energy["PIM-Acc"],
                    "runtime_cpu": runtime["CPU-Only"],
                    "runtime_pim_core": runtime["PIM-Core"],
                    "runtime_pim_acc": runtime["PIM-Acc"],
                    "speedup_pim_core": c.pim_core_speedup,
                    "speedup_pim_acc": c.pim_acc_speedup,
                }
            )
        return out


#: Per-process engine for parallel sweeps (set by the pool initializer).
_WORKER_ENGINE: OffloadEngine | None = None


def _init_worker(system, energy_params, observe: bool = False) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = OffloadEngine(system, energy_params)
    if observe:
        # A recorder cannot cross the process boundary (it holds locks),
        # so each worker records into its own and ships snapshots back.
        from repro.obs.recorder import Recorder, set_recorder

        set_recorder(Recorder())


def _compare_in_worker(target: PimTarget) -> "TargetComparison":
    return _WORKER_ENGINE.compare(target)


def _compare_in_worker_observed(target: PimTarget):
    """Worker task when observability is on: (comparison, obs snapshot)."""
    recorder = get_recorder()
    recorder.reset()
    with recorder.span("core.runner.target.%s" % target.name):
        comparison = _WORKER_ENGINE.compare(target)
    _publish_comparison(recorder, comparison)
    return comparison, recorder.snapshot()


def _publish_comparison(recorder, comparison: TargetComparison) -> None:
    """Export one target's results as per-target gauges.

    These six gauges per target are the substrate from which
    :func:`repro.obs.manifest.headline_from_counters` re-derives the
    paper's headline averages out of a manifest alone.
    """
    counters = recorder.counters
    base = "core.runner.target.%s." % comparison.target.name
    for machine, execution in (
        ("cpu", comparison.cpu),
        ("pim_core", comparison.pim_core),
        ("pim_acc", comparison.pim_acc),
    ):
        counters.set(base + "energy_j." + machine, execution.energy_j)
        counters.set(base + "time_s." + machine, execution.time_s)
    counters.add("core.runner.targets", 1)


class ExperimentRunner:
    """Evaluates lists of PIM targets against all three machine models."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        energy_params: EnergyParameters | None = None,
    ):
        self.system = system
        self.energy_params = energy_params
        self.engine = OffloadEngine(system, energy_params)

    def evaluate(self, targets: list[PimTarget], jobs: int = 1) -> SweepResult:
        """Compare every target on all machines.

        Args:
            targets: the PIM targets to evaluate.
            jobs: worker processes; ``1`` evaluates in-process.  Each
                worker builds one engine (via the pool initializer) and
                streams targets through it, so results are identical to
                the serial path, in input order.
        """
        recorder = get_recorder()
        with recorder.span("core.runner.evaluate"):
            if jobs > 1 and len(targets) > 1:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(targets)),
                    initializer=_init_worker,
                    initargs=(self.system, self.energy_params, recorder.enabled),
                ) as pool:
                    if recorder.enabled:
                        pairs = list(pool.map(_compare_in_worker_observed, targets))
                        comparisons = [comparison for comparison, _ in pairs]
                        for _, snapshot in pairs:
                            recorder.merge_snapshot(snapshot)
                    else:
                        comparisons = list(pool.map(_compare_in_worker, targets))
            else:
                comparisons = []
                for target in targets:
                    with recorder.span("core.runner.target.%s" % target.name):
                        comparison = self.engine.compare(target)
                    if recorder.enabled:
                        _publish_comparison(recorder, comparison)
                    comparisons.append(comparison)
        return SweepResult(comparisons=comparisons)


def _mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
