"""Fault-tolerant sweep execution: retries, timeouts, quarantine, resume.

Real benchmarking campaigns treat partial failure as the common case: a
crashed worker, a hung target, or a truncated results file must cost one
retry — never the sweep.  This module is the resilience layer under
:class:`repro.core.runner.ExperimentRunner` (and the figure harness in
:mod:`repro.analysis.report`):

* :class:`RetryPolicy` — per-target retry budget with exponential
  backoff and *deterministic* seeded jitter (two runs with the same
  policy retry at the same offsets), plus an optional per-target
  timeout that detects hung pool workers;
* :class:`ResilientMap` — the replacement for bare ``pool.map``: one
  future per item, crash containment (a ``BrokenProcessPool`` respawns
  the pool and costs the in-flight items one retry), hang detection
  (timed-out workers are killed and the pool respawned without losing
  completed items), and quarantine of items that exhaust their retries;
* :class:`TargetFailure` — the audit record of one quarantined item;
* :class:`SweepCheckpoint` — an append-only, fsync'd journal of
  completed results keyed by config+code-version hash (like
  :class:`repro.core.memo.MemoCache`), stored as one
  :mod:`repro.core.store` segment blob (legacy JSONL journals are read
  and migrated transparently), so an interrupted sweep resumed with
  ``--resume`` reproduces the uninterrupted result bit-for-bit;
* :func:`maybe_inject_fault` — the chaos hook the fault-injection test
  harness (and CI's chaos smoke step) uses to crash/hang/fail specific
  targets on schedule via the ``REPRO_FAULT_PLAN`` environment variable.

Everything publishes through the observability registry under
``core.resilience.*`` (retries, timeouts, quarantined, checkpoint
writes, resumed entries), so a run manifest records the sweep's fault
history.  When no policy is supplied and no checkpoint is in play, none
of these counters are published — a fault-free legacy run stays
byte-identical (the golden-manifest test pins this).

Strict mode (:mod:`repro.validate`) upgrades quarantine to a raise: a
target that exhausts its retries under ``REPRO_STRICT=1`` aborts the
sweep with :class:`~repro.validate.errors.InvariantError` instead of
degrading the result.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.obs.recorder import get_recorder
from repro.validate import InvariantError, resolve_strict
from repro.validate.fields import (
    require_at_least,
    require_non_negative,
    require_positive_int,
)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How a sweep responds to per-target faults.

    Attributes:
        max_attempts: total tries per target (1 = no retries).
        backoff_base_s: delay before the first retry.
        backoff_factor: multiplier applied per subsequent retry.
        jitter: extra fractional delay in ``[0, jitter]``, derived
            *deterministically* from (seed, target name, attempt) so two
            runs of the same sweep back off identically.
        seed: jitter seed.
        timeout_s: per-target wall-clock budget; a pool worker that
            exceeds it is declared hung, killed, and the target retried.
            ``None`` disables hang detection.  Only enforced on the
            parallel path (a hung in-process call cannot be preempted).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    timeout_s: float | None = None

    def __post_init__(self):
        owner = type(self).__name__
        require_positive_int(owner, "max_attempts", self.max_attempts)
        require_non_negative(owner, "backoff_base_s", self.backoff_base_s)
        require_at_least(owner, "backoff_factor", self.backoff_factor, 1.0, "one")
        require_non_negative(owner, "jitter", self.jitter)
        if self.timeout_s is not None:
            require_at_least(owner, "timeout_s", self.timeout_s, 1e-3, "1ms")

    def delay_s(self, name: str, attempt: int) -> float:
        """Backoff before retrying ``name`` after its ``attempt``-th failure.

        Deterministic: the jitter fraction is a hash of
        (seed, name, attempt), not a PRNG draw, so resumed or repeated
        sweeps schedule identical retries.
        """
        base = self.backoff_base_s * self.backoff_factor ** max(attempt - 1, 0)
        digest = hashlib.sha256(
            ("%d:%s:%d" % (self.seed, name, attempt)).encode()
        ).digest()
        fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return base * (1.0 + self.jitter * fraction)


@dataclass(frozen=True)
class TargetFailure:
    """Audit record of one quarantined sweep item."""

    target: str
    attempts: int
    error: str
    elapsed_s: float


# ----------------------------------------------------------------------
# The resilient map: per-item futures with retry/timeout/quarantine
# ----------------------------------------------------------------------

class _ItemState:
    """Book-keeping for one in-flight sweep item."""

    __slots__ = ("index", "name", "item", "attempts", "submitted_s", "first_s")

    def __init__(self, index: int, name: str, item):
        self.index = index
        self.name = name
        self.item = item
        self.attempts = 0
        self.submitted_s = 0.0
        self.first_s = time.monotonic()


class ResilientMap:
    """Map ``fn`` over ``items`` with per-item fault containment.

    Serial (``jobs=1``) runs call ``fn`` in-process with retries;
    parallel runs submit one future per item to a
    ``ProcessPoolExecutor`` and survive worker crashes (pool respawn,
    one retry charged to every in-flight item — a crash cannot be
    attributed) and hangs (``policy.timeout_s`` exceeded: the pool's
    workers are terminated, the pool respawned, and only the hung item
    charged a retry; innocent in-flight items are resubmitted for free).

    Args:
        fn: the task; must be module-level picklable when ``jobs > 1``.
        items: task inputs, one per item.
        names: labels for counters/failures (defaults to ``str(item)``).
        policy: retry policy; ``None`` means one attempt.
        jobs: worker processes; ``1`` runs in-process.
        initializer/initargs: forwarded to the pool.
        on_success: ``fn(index, name, value)`` called once per completed
            item, in completion order (checkpoint writes hook in here).
        raise_failures: when True (the legacy contract), an exhausted
            item re-raises its original exception instead of being
            quarantined.  Strict mode forces a raise either way.
        pool_factory: the executor seam — ``fn(mapper) -> executor``
            called whenever a (re)spawn is needed.  Any object with the
            ``ProcessPoolExecutor`` surface (``submit`` returning
            futures, ``shutdown``, optionally ``_processes`` for hang
            teardown) works, so the same retry/quarantine/checkpoint
            policy can drive a local pool today and a remote worker
            fleet tomorrow.  Default: a ``ProcessPoolExecutor`` built
            from ``jobs``/``initializer``/``initargs``.

    :meth:`run` returns ``(values, failures)``: ``values`` holds one
    result per item in input order (``None`` for quarantined items), and
    ``failures`` one :class:`TargetFailure` per quarantined item.
    """

    #: Upper bound on one scheduler wait; keeps hang detection responsive.
    _TICK_S = 0.25

    def __init__(
        self,
        fn,
        items,
        names=None,
        policy: RetryPolicy | None = None,
        jobs: int = 1,
        initializer=None,
        initargs=(),
        on_success=None,
        raise_failures: bool = False,
        pool_factory=None,
    ):
        self.fn = fn
        self.items = list(items)
        self.names = (
            list(names) if names is not None else [str(i) for i in self.items]
        )
        if len(self.names) != len(self.items):
            raise ValueError("names and items must have equal length")
        self.policy = policy if policy is not None else RetryPolicy(
            max_attempts=1, backoff_base_s=0.0, jitter=0.0
        )
        self.jobs = max(int(jobs), 1)
        self.initializer = initializer
        self.initargs = initargs
        self.on_success = on_success
        self.raise_failures = raise_failures
        self.pool_factory = pool_factory

    # ------------------------------------------------------------------
    def run(self):
        if self.jobs > 1 and len(self.items) > 1:
            return self._run_parallel()
        return self._run_serial()

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------
    def _run_serial(self):
        values = [None] * len(self.items)
        failures: list[TargetFailure] = []
        for index, (name, item) in enumerate(zip(self.names, self.items)):
            state = _ItemState(index, name, item)
            while True:
                try:
                    value = self.fn(item)
                except Exception as exc:
                    retry = self._attempt_failed(state, exc, failures)
                    if not retry:
                        break
                    time.sleep(self.policy.delay_s(name, state.attempts))
                else:
                    values[index] = value
                    if self.on_success is not None:
                        self.on_success(index, name, value)
                    break
        return values, failures

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_parallel(self):
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        counters = get_recorder().counters
        values = [None] * len(self.items)
        failures: list[TargetFailure] = []
        queue = deque(
            _ItemState(index, name, item)
            for index, (name, item) in enumerate(zip(self.names, self.items))
        )
        waiting: list[tuple[float, _ItemState]] = []  # (ready_s, state)
        inflight: dict = {}  # future -> state
        pool = self._new_pool()
        try:
            while queue or waiting or inflight:
                now = time.monotonic()
                still_waiting = []
                for ready_s, state in waiting:
                    if ready_s <= now:
                        queue.append(state)
                    else:
                        still_waiting.append((ready_s, state))
                waiting = still_waiting
                # Keep at most one task per worker in flight, so a
                # future's submission time approximates its start time
                # and the per-target timeout measures real execution.
                while queue and len(inflight) < self.jobs:
                    state = queue.popleft()
                    state.submitted_s = time.monotonic()
                    try:
                        inflight[pool.submit(self.fn, state.item)] = state
                    except BrokenProcessPool:
                        # The pool died between waits; respawn and let the
                        # next iteration resubmit (no attempt charged).
                        queue.appendleft(state)
                        for survivor in inflight.values():
                            queue.append(survivor)
                        inflight.clear()
                        self._kill_pool(pool)
                        pool = self._new_pool()
                if not inflight:
                    next_ready = min(ready_s for ready_s, _ in waiting)
                    time.sleep(max(min(next_ready - time.monotonic(), self._TICK_S), 0.0))
                    continue
                done, _ = wait(
                    list(inflight),
                    timeout=self._wait_timeout(inflight, waiting),
                    return_when=FIRST_COMPLETED,
                )
                respawn = False
                for future in done:
                    state = inflight.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool as exc:
                        # A worker died (e.g. SIGKILL).  The pool is
                        # unusable and the culprit unattributable: every
                        # broken in-flight item is charged one attempt.
                        respawn = True
                        if self._attempt_failed(state, exc, failures):
                            waiting.append(self._retry_at(state))
                    except Exception as exc:
                        if self._attempt_failed(state, exc, failures):
                            waiting.append(self._retry_at(state))
                    else:
                        values[state.index] = value
                        if self.on_success is not None:
                            self.on_success(state.index, state.name, value)
                if self.policy.timeout_s is not None:
                    now = time.monotonic()
                    for future, state in list(inflight.items()):
                        if now - state.submitted_s < self.policy.timeout_s:
                            continue
                        # Hung worker: only this item is charged; the
                        # pool must be respawned to reclaim the worker.
                        respawn = True
                        inflight.pop(future)
                        counters.add("core.resilience.timeouts", 1)
                        exc = TimeoutError(
                            "target %r exceeded timeout_s=%.3f"
                            % (state.name, self.policy.timeout_s)
                        )
                        if self._attempt_failed(state, exc, failures):
                            waiting.append(self._retry_at(state))
                if respawn:
                    # In-flight survivors lose their (incomplete) work but
                    # are resubmitted without being charged an attempt.
                    for state in inflight.values():
                        queue.append(state)
                    inflight.clear()
                    self._kill_pool(pool)
                    pool = self._new_pool()
        except BaseException:
            self._kill_pool(pool)
            raise
        else:
            pool.shutdown(wait=True)
        return values, failures

    def _new_pool(self):
        if self.pool_factory is not None:
            return self.pool_factory(self)
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _kill_pool(self, pool) -> None:
        """Tear a (possibly hung) pool down without waiting on its workers.

        Workers get SIGTERM first — the runner's worker initializer
        installs a handler that dumps a traceback to stderr before
        exiting — then SIGKILL if they linger.

        Custom executors (the ``pool_factory`` seam) opt into teardown
        explicitly: a callable ``kill()`` on the executor is preferred
        and owns the whole teardown (e.g. :class:`repro.fleet.executor.
        FleetExecutor` aborts its poll threads); failing that, a callable
        ``processes()`` returns the worker handles to terminate.  Only
        when neither protocol method exists does discovery fall back to
        the private ``ProcessPoolExecutor._processes`` attribute — and
        only when *that* is also absent (e.g. a future Python renames
        it) is the blind teardown counted
        (``core.resilience.pool_kill_no_workers``) rather than silently
        ignored; a pool that genuinely has zero live workers is not a
        discovery failure.
        """
        kill = getattr(pool, "kill", None)
        if callable(kill):
            try:
                kill()
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            return
        discover = getattr(pool, "processes", None)
        if callable(discover):
            processes = list(discover())
        elif hasattr(pool, "_processes"):
            processes = list((pool._processes or {}).values())
        else:
            processes = []
            get_recorder().counters.add(
                "core.resilience.pool_kill_no_workers", 1
            )
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for process in processes:
            try:
                process.join(max(deadline - time.monotonic(), 0.0))
                if process.is_alive():
                    process.kill()
                    process.join(1.0)
            except (OSError, ValueError, AssertionError):
                pass

    def _wait_timeout(self, inflight, waiting) -> float:
        """How long the scheduler may block before its next decision."""
        now = time.monotonic()
        timeout = self._TICK_S
        if self.policy.timeout_s is not None:
            next_deadline = min(
                state.submitted_s + self.policy.timeout_s
                for state in inflight.values()
            )
            timeout = min(timeout, next_deadline - now)
        if waiting:
            timeout = min(timeout, min(ready_s for ready_s, _ in waiting) - now)
        return max(timeout, 0.01)

    def _retry_at(self, state: _ItemState) -> tuple[float, _ItemState]:
        return (
            time.monotonic() + self.policy.delay_s(state.name, state.attempts),
            state,
        )

    def _attempt_failed(
        self, state: _ItemState, exc: BaseException, failures: list
    ) -> bool:
        """Charge one failed attempt; True when the item should retry.

        On exhaustion the item is quarantined (recorded in ``failures``)
        unless ``raise_failures`` or strict mode demand a raise.
        """
        counters = get_recorder().counters
        state.attempts += 1
        if state.attempts < self.policy.max_attempts:
            counters.add("core.resilience.retries", 1)
            return True
        if self.raise_failures:
            raise exc
        counters.add("core.resilience.quarantined", 1)
        error = repr(exc)
        if resolve_strict():
            raise InvariantError(
                "core.resilience.quarantine",
                "target %r exhausted %d attempt(s): %s"
                % (state.name, state.attempts, error),
            )
        failures.append(
            TargetFailure(
                target=state.name,
                attempts=state.attempts,
                error=error,
                elapsed_s=time.monotonic() - state.first_s,
            )
        )
        return False


# ----------------------------------------------------------------------
# Sweep checkpoints: append-only JSONL journal with resume
# ----------------------------------------------------------------------

def sweep_key(config=None) -> str:
    """Checkpoint namespace: config content hash + code-version hash.

    Like :class:`repro.core.memo.MemoCache`, any source edit anywhere in
    the package invalidates prior journal entries, so a resumed entry is
    always the product of the same model code and configuration.
    """
    from repro.core.memo import code_version_hash
    from repro.obs.manifest import config_hash

    return "%s:%s" % (config_hash(config), code_version_hash())


class SweepCheckpoint:
    """Append-only journal of completed sweep entries.

    The file is one :mod:`repro.core.store` segment blob: a checksummed
    header frame pinning the key, then per append one entry frame plus
    the index frame that commits it — a single fsync'd ``write`` per
    completed target.  A crash mid-append leaves an uncommitted tail
    that :meth:`entries` drops (counted as
    ``core.resilience.checkpoint.torn``) and the next writer physically
    truncates; committed entries are never lost, and a checksum
    mismatch means an entry is hidden, never silently altered.

    A journal whose header key does not match (stale code or different
    config) is rotated aside to ``<path>.stale`` rather than mixed into
    the new run.  Pre-segment journals — the original fsync-per-line
    JSONL layout — are still read transparently, and the first
    :meth:`append` migrates a matching one to the segment format in a
    single atomic rewrite.
    """

    SCHEMA = "repro-sweep-checkpoint/v1"

    def __init__(self, path: str | Path, key: str):
        self.path = Path(path)
        self.key = key
        self._reader = None  # shared SegmentReader (segment journals)
        self._writer = None  # SegmentWriter once append() ran

    def _count(self, event: str, n: float = 1) -> None:
        counters = get_recorder().counters
        counters.add("core.store." + event, n)
        if event == "flushes":
            counters.add("core.resilience.checkpoint.writes", n)
        elif event == "torn":
            counters.add("core.resilience.checkpoint.torn", n)

    # ------------------------------------------------------------------
    def append(self, name: str, payload) -> None:
        """Journal one completed entry (one fsync'd chunk write)."""
        self._ensure_writer()
        self._writer.append_chunk([(name, payload)], fsync=True)

    def entries(self) -> dict:
        """Completed entries from a matching journal, name -> payload.

        Torn or corrupted frames are dropped (counted as
        ``core.resilience.checkpoint.torn``); a missing file or a key
        mismatch yields no entries.  Legacy JSONL journals are parsed
        in place without being rewritten.
        """
        from repro.core.store import SegmentReader

        kind = self._classify()
        if kind == "segment":
            if self._reader is None:
                self._reader = SegmentReader(self.path, count=self._count)
            self._reader.refresh()
            return self._reader.entries()
        if kind == "legacy":
            return self._legacy_entries()
        return {}

    def close(self) -> None:
        """Release the journal's file descriptor."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # ------------------------------------------------------------------
    def _classify(self) -> str:
        """What lives at ``path``: absent | segment | legacy | foreign.

        Only the first line is read, so classification (and therefore
        every append) stays O(1) I/O regardless of journal length.
        ``foreign`` covers everything that must be rotated aside before
        writing: mismatched keys, other schemas, garbage.
        """
        from repro.core.store import peek_key

        try:
            if os.path.getsize(self.path) == 0:
                return "absent"
        except OSError:
            return "absent"
        segment_key = peek_key(self.path)
        if segment_key == self.key:
            return "segment"
        if segment_key is None:
            try:
                with open(self.path, "rb") as f:
                    header = json.loads(f.readline(1 << 16))
            except (OSError, ValueError):
                header = None
            if isinstance(header, dict) and header.get("schema") == self.SCHEMA:
                return "legacy" if header.get("key") == self.key else "foreign"
        return "foreign"

    def _ensure_writer(self) -> None:
        from repro.core.store import SegmentReader, SegmentWriter

        if self._writer is not None and self._writer.is_open:
            return
        kind = self._classify()
        if kind == "foreign":
            # Stale journal (code or config changed): rotate, don't mix.
            os.replace(
                self.path, self.path.with_suffix(self.path.suffix + ".stale")
            )
            kind = "absent"
        if kind == "legacy":
            self._writer = self._migrate_legacy()
            return
        self._writer = SegmentWriter(self.path, self.key, count=self._count)
        if kind == "segment":
            if self._reader is None:
                self._reader = SegmentReader(self.path, count=self._count)
            self._writer.open(reader=self._reader)
            # The writer may have truncated a torn tail out from under
            # the shared reader; force a clean re-parse on next read.
            self._reader = None
        else:
            self._writer.open()

    def _migrate_legacy(self):
        """Rewrite a matching legacy JSONL journal as one segment blob.

        The new blob is built beside the journal and swapped in with
        ``os.replace``, so a crash mid-migration leaves the legacy file
        intact; the returned writer keeps appending to the swapped-in
        blob.  Counts one checkpoint write for the fold-in chunk.
        """
        from repro.core.store import SegmentWriter

        entries = self._legacy_entries()
        tmp = self.path.with_suffix(self.path.suffix + ".migrate.%d" % os.getpid())
        writer = SegmentWriter(tmp, self.key, count=self._count)
        writer.open()
        if entries:
            writer.append_chunk(entries.items(), fsync=True)
        os.replace(tmp, self.path)
        writer.fsync()
        writer.path = self.path  # the fd survives the rename
        return writer

    def _legacy_entries(self) -> dict:
        counters = get_recorder().counters
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return {}
        out: dict = {}
        for line in lines[1:]:
            record = self._parse_legacy_record(line)
            if record is None:
                counters.add("core.resilience.checkpoint.torn", 1)
                continue
            out[record["name"]] = record["payload"]
        return out

    @staticmethod
    def _parse_legacy_record(line: str):
        try:
            record = json.loads(line)
            body = json.dumps(record["payload"], sort_keys=True)
            if record["sha"] != hashlib.sha256(body.encode()).hexdigest()[:16]:
                return None
            record["name"]
        except (ValueError, KeyError, TypeError):
            return None
        return record


# ----------------------------------------------------------------------
# TargetComparison <-> JSON (checkpoint payloads)
# ----------------------------------------------------------------------

def comparison_to_jsonable(comparison) -> dict:
    """A plain-JSON form of a :class:`~repro.core.offload.TargetComparison`.

    JSON round-trips finite floats exactly (``repr``-based), so a
    journaled comparison reloads bit-identical to the original — the
    property behind resume reproducing an uninterrupted sweep.
    """
    from repro.obs.manifest import _jsonable

    return _jsonable(comparison)


def comparison_from_jsonable(data: dict):
    """Rebuild a :class:`~repro.core.offload.TargetComparison`."""
    from repro.core.offload import TargetComparison
    from repro.core.target import PimTarget
    from repro.energy.breakdown import EnergyBreakdown
    from repro.sim.cpu import Execution
    from repro.sim.profile import KernelProfile

    def profile(d):
        return KernelProfile(**d)

    def execution(d):
        return Execution(
            machine=d["machine"],
            time_s=d["time_s"],
            energy=EnergyBreakdown(**d["energy"]),
            profile=profile(d["profile"]),
        )

    target = data["target"]
    return TargetComparison(
        target=PimTarget(
            name=target["name"],
            profile=profile(target["profile"]),
            accelerator_key=target["accelerator_key"],
            invocations=target["invocations"],
            workload=target["workload"],
        ),
        cpu=execution(data["cpu"]),
        pim_core=execution(data["pim_core"]),
        pim_acc=execution(data["pim_acc"]),
    )


# ----------------------------------------------------------------------
# Fault injection (test harness + CI chaos smoke)
# ----------------------------------------------------------------------

#: Points at a JSON plan: ``{"faults": {"<name>": ["kill", "hang:600",
#: "raise:boom", "ok", ...]}}`` — one spec per attempt, "ok" thereafter.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class FaultInjected(RuntimeError):
    """The exception a ``raise`` fault spec produces."""


def maybe_inject_fault(name: str) -> None:
    """Execute the scheduled fault for ``name``, if a plan is active.

    No-op unless ``REPRO_FAULT_PLAN`` names a readable plan file.  Each
    call consumes one attempt slot for ``name`` (attempt counts live in
    ``<plan>.attempts/`` so they survive worker crashes); the matching
    spec is then executed:

    * ``"kill"`` — SIGKILL the current process (a real worker crash);
    * ``"hang"`` / ``"hang:<s>"`` — sleep (default far past any timeout);
    * ``"raise"`` / ``"raise:<msg>"`` — raise :class:`FaultInjected`;
    * ``"ok"`` (or exhausted plan) — do nothing.
    """
    plan_path = os.environ.get(FAULT_PLAN_ENV)
    if not plan_path:
        return
    try:
        plan = json.loads(Path(plan_path).read_text())
        specs = plan.get("faults", {}).get(name)
    except (OSError, ValueError, AttributeError):
        return
    if not specs:
        return
    attempt = _consume_attempt(Path(plan_path), name)
    spec = specs[attempt] if attempt < len(specs) else "ok"
    if spec == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.startswith("hang"):
        _, _, arg = spec.partition(":")
        time.sleep(float(arg) if arg else 3600.0)
    elif spec.startswith("raise"):
        _, _, arg = spec.partition(":")
        raise FaultInjected(arg or "injected fault for %r" % name)


def _consume_attempt(plan_path: Path, name: str) -> int:
    """Next attempt index for ``name`` (cross-process, crash-proof).

    One byte is appended to a per-name scoreboard file with ``O_APPEND``;
    the size before the append is the attempt index.  Works across pool
    workers because retries of one target never overlap in time.
    """
    directory = plan_path.parent / (plan_path.name + ".attempts")
    directory.mkdir(parents=True, exist_ok=True)
    fd = os.open(
        directory / name.replace(os.sep, "_"),
        os.O_CREAT | os.O_WRONLY | os.O_APPEND,
        0o644,
    )
    try:
        attempt = os.fstat(fd).st_size
        os.write(fd, b".")
    finally:
        os.close(fd)
    return attempt
