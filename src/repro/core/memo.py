"""Content-keyed on-disk memoization for regenerated experiments.

Regenerating a paper figure is deterministic: the rows depend only on the
model code and the (default) configuration.  ``MemoCache`` therefore keys
each entry on a SHA-256 of (entry name, JSON-encoded config, code-version
hash), where the code-version hash digests every ``*.py`` file of the
installed ``repro`` package.  Any source edit — anywhere in the package —
invalidates the whole cache, so a hit is always safe to reuse; a repeated
``python -m repro figures`` run with an unchanged tree skips all model
work and loads rows from disk.

The cache directory defaults to ``.repro_cache/`` next to
``pyproject.toml`` when running from a source checkout (override with the
``REPRO_CACHE_DIR`` environment variable; falls back to
``~/.cache/repro`` for installed packages).  Entries live in append-only
segment blobs (:mod:`repro.core.store`): each writing process claims its
own ``memo-*.seg`` blob and appends checksummed entries to it, so N puts
cost N buffered appends and a handful of file opens instead of N
open/write/rename round trips.  The torn-write contract is unchanged: a
corrupted entry (checksum mismatch) is counted as ``core.memo.corrupt``
and never returned, and a truncated flush loses only its own uncommitted
tail.  The pre-segment layout — one ``<key>.json`` document per entry —
is still read transparently, and :meth:`MemoCache.compact` folds legacy
files, quarantine debris, and accumulated blobs into one fresh segment.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import time
from pathlib import Path

from repro.core.store import CompactionStats, SegmentReader, SegmentStore, peek_key
from repro.obs.recorder import get_recorder


def _to_builtin(value):
    """JSON fallback: unwrap numpy scalars to builtin int/float/bool."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError("%r is not JSON serializable" % (value,))


def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


@functools.lru_cache(maxsize=1)
def code_version_hash() -> str:
    """Digest of every source file in the ``repro`` package."""
    digest = hashlib.sha256()
    root = package_root()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # src/repro -> src -> repo root, when running from a checkout.
    checkout = package_root().parent.parent
    if (checkout / "pyproject.toml").exists():
        return checkout / ".repro_cache"
    return Path.home() / ".cache" / "repro"


_MISS = object()


def memo_key(name: str, config, version: str) -> str:
    """The content address of a (name, config) entry at ``version``.

    Shared by :class:`MemoCache` and the fleet's remote cache client so a
    local run and a gateway-backed run address the same entries.
    """
    payload = json.dumps([name, config, version], sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class MemoCache:
    """A content-addressed store of JSON-serializable results.

    Args:
        directory: where entries live; created on first :meth:`put`.
        version: cache namespace; defaults to :func:`code_version_hash`
            so edits to the model code invalidate prior entries.
        flush_every: entries buffered per segment flush.  The default
            (1) writes each :meth:`put` through immediately — the same
            read-your-writes durability as the old file-per-entry
            layout; larger values batch N entries per file write for
            high-rate producers (call :meth:`flush` or :meth:`close`
            when done).
        compact_ratio: dead-bytes threshold for :meth:`maybe_compact`
            (forwarded to the segment store; ``None`` disables the
            auto-compaction trigger).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        version: str | None = None,
        flush_every: int = 1,
        compact_ratio: float | None = 0.6,
    ):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.version = version if version is not None else code_version_hash()
        self._store = SegmentStore(
            self.directory,
            key=self.version,
            prefix="memo",
            flush_every=flush_every,
            fsync=False,
            count=self._count,
            compact_ratio=compact_ratio,
        )

    def _count(self, event: str, n: float = 1) -> None:
        counters = get_recorder().counters
        counters.add("core.store." + event, n)
        if event == "corrupt":
            counters.add("core.memo.corrupt", n)

    def key(self, name: str, config=None) -> str:
        return memo_key(name, config, self.version)

    def _path(self, name: str, config) -> Path:
        """The legacy (pre-segment) per-entry document path."""
        return self.directory / ("%s.json" % self.key(name, config))

    @staticmethod
    def _checksum(value_json: str) -> str:
        return hashlib.sha256(value_json.encode()).hexdigest()[:16]

    def get(self, name: str, config=None, default=None):
        """The cached value for (name, config) at this code version.

        A corrupted entry (checksum mismatch, in a segment or a legacy
        document) is never returned as a value: it is counted as
        ``core.memo.corrupt`` — distinct from an honest miss — and made
        permanently invisible (legacy documents are quarantined to
        ``<entry>.corrupt`` immediately; a bad segment frame hides its
        entry at once and :meth:`compact` quarantines the blob), so a
        torn write from a dead worker cannot poison later runs.
        """
        counters = get_recorder().counters
        value = self._store.get(self.key(name, config), _MISS)
        if value is not _MISS:
            counters.add("core.memo.hits", 1)
            return value
        return self._get_legacy(name, config, default)

    def _get_legacy(self, name: str, config, default):
        """Read-transparency for the pre-segment one-file-per-entry layout."""
        counters = get_recorder().counters
        path = self._path(name, config)
        try:
            raw = path.read_text()
        except OSError:
            counters.add("core.memo.misses", 1)
            return default
        try:
            document = json.loads(raw)
            value = document["value"]
            stored = document["checksum"]
            recomputed = self._checksum(json.dumps(value, sort_keys=True))
            if stored != recomputed:
                raise ValueError(
                    "checksum mismatch: %s != %s" % (stored, recomputed)
                )
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            counters.add("core.memo.corrupt", 1)
            return default
        counters.add("core.memo.hits", 1)
        return value

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside so it is inspectable but never reread."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    def put(self, name: str, value, config=None) -> Path:
        """Store a JSON-serializable value; returns the segment path.

        The entry is appended to this process's own segment blob (a
        single buffered write per ``flush_every`` entries — no
        per-entry file creation), committed under a per-entry BLAKE2
        checksum by the flush's index frame (or, for a single-entry
        flush, its own self-committing frame).
        """
        get_recorder().counters.add("core.memo.puts", 1)
        self._store.append(self.key(name, config), value)
        return self._store.segment_path()

    def flush(self):
        """Write any entries still buffered by ``flush_every`` > 1."""
        return self._store.flush()

    def close(self) -> None:
        """Flush buffered entries and release the segment blob."""
        self._store.close()

    def clear(self) -> int:
        """Delete all entries; returns how many entries (plus debris
        files) were removed.

        Sweeps everything the cache can own: segment blobs (counted by
        the committed entries inside them), legacy per-entry documents,
        quarantined ``*.corrupt`` entries, and stale ``*.tmp.<pid>``
        files from workers that died mid-write.
        """
        removed = 0
        self._store.discard()
        if self.directory.is_dir():
            for path in self.directory.glob("*.seg"):
                removed += self._segment_weight(path)
                try:
                    path.unlink()
                except OSError:
                    removed -= 1
            for pattern in ("*.json", "*.corrupt", "*.tmp.*"):
                for path in self.directory.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def _segment_weight(self, path: Path) -> int:
        """How many removals deleting ``path`` counts for.

        A current-version blob counts its committed entries (so clearing
        N entries reports N whether they lived in one blob or N files);
        a foreign or unreadable blob counts as one opaque file.
        """
        if peek_key(path) != self.version:
            return 1
        reader = SegmentReader(path, count=lambda *a: None)
        reader.refresh()
        return max(len(reader.names()), 1)

    def prune(self, max_age_days: float = 30.0) -> int:
        """Remove files from old code versions, plus aged debris.

        A legacy document or segment blob keyed by a different version
        is unreachable (the key embeds the version) and only wastes
        disk; it is deleted once older than ``max_age_days``, as are
        ``*.corrupt`` quarantine files and stale ``*.tmp.*`` files past
        the cutoff.  Current-version files are never pruned.  Returns
        how many files were removed.  (:meth:`compact` subsumes this
        *and* rewrites current-version data; ``prune`` alone never
        touches live entries or legacy documents it can still read.)
        """
        if not self.directory.is_dir():
            return 0
        cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
                version = json.loads(path.read_text()).get("version")
            except (OSError, ValueError, AttributeError):
                version = None
            if version == self.version:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.directory.glob("*.seg"):
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
            except OSError:
                continue
            if peek_key(path) == self.version:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for pattern in ("*.corrupt", "*.tmp.*"):
            for path in self.directory.glob(pattern):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        removed += 1
                except OSError:
                    pass
        return removed

    def maybe_compact(self, max_age_days: float | None = None):
        """:meth:`compact` iff the store's dead-bytes ratio crosses the knob.

        The sweep-completion hook: the CLI calls this after a sweep's
        results land, so caches serving many overwriting sweeps shed
        superseded bytes without anyone scheduling maintenance.
        Returns the :class:`~repro.core.store.CompactionStats` when a
        rewrite ran (counted as ``core.store.auto_compactions``), else
        None.
        """
        from repro.core.store import CompactionBusy

        if self._store.compact_ratio is None:
            return None
        if self._store.dead_ratio() <= self._store.compact_ratio:
            return None
        try:
            stats = self.compact(max_age_days=max_age_days)
        except CompactionBusy:
            self._count("compact_busy")
            return None
        self._count("auto_compactions")
        return stats

    def compact(self, max_age_days: float | None = None) -> CompactionStats:
        """Rewrite the cache as one fresh segment, folding in the chores.

        Every live current-version entry — from segment blobs *and*
        from readable legacy per-entry documents — is rewritten into a
        single new blob; the merged blobs and folded legacy files are
        removed, blobs that held corrupt/torn frames are quarantined to
        ``*.corrupt`` (like a corrupt legacy document always was), and
        an unreadable legacy document is quarantined on the spot.  With
        ``max_age_days``, aged foreign-version files and debris are
        pruned as :meth:`prune` would.  Safe under concurrent writers:
        compactors serialize on a cross-process lock
        (:class:`~repro.core.store.CompactionBusy` when contended) and
        blobs a live writer owns are skipped, not rewritten.  Returns
        the :class:`~repro.core.store.CompactionStats`.
        """
        legacy: dict = {}
        remove: list = []
        pruned_json = 0
        if self.directory.is_dir():
            for path in sorted(self.directory.glob("*.json")):
                try:
                    document = json.loads(path.read_text())
                    version = document["version"]
                    value = document["value"]
                    checksum = document["checksum"]
                except (OSError, ValueError, KeyError, TypeError):
                    self._quarantine(path)
                    self._count("corrupt")
                    continue
                if version != self.version:
                    continue  # left for the age-prune below
                if checksum != self._checksum(
                    json.dumps(value, sort_keys=True)
                ):
                    self._quarantine(path)
                    self._count("corrupt")
                    continue
                legacy[path.stem] = value
                remove.append(path)
        stats = self._store.compact(
            max_age_days=max_age_days, extra_entries=legacy, remove_paths=remove
        )
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            for path in self.directory.glob("*.json"):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        pruned_json += 1
                except OSError:
                    pass
            stats.pruned += pruned_json
            stats.files_removed += pruned_json
        return stats
