"""Content-keyed on-disk memoization for regenerated experiments.

Regenerating a paper figure is deterministic: the rows depend only on the
model code and the (default) configuration.  ``MemoCache`` therefore keys
each entry on a SHA-256 of (entry name, JSON-encoded config, code-version
hash), where the code-version hash digests every ``*.py`` file of the
installed ``repro`` package.  Any source edit — anywhere in the package —
invalidates the whole cache, so a hit is always safe to reuse; a repeated
``python -m repro figures`` run with an unchanged tree skips all model
work and loads rows from disk.

The cache directory defaults to ``.repro_cache/`` next to
``pyproject.toml`` when running from a source checkout (override with the
``REPRO_CACHE_DIR`` environment variable; falls back to
``~/.cache/repro`` for installed packages).  Entries are small JSON
documents, written atomically so concurrent runs never observe partial
files, and carry a content checksum: a corrupted or truncated entry is
quarantined to ``*.corrupt`` (and counted as ``core.memo.corrupt``)
rather than returned or silently treated as a miss.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import time
from pathlib import Path

from repro.obs.recorder import get_recorder


def _to_builtin(value):
    """JSON fallback: unwrap numpy scalars to builtin int/float/bool."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError("%r is not JSON serializable" % (value,))


def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


@functools.lru_cache(maxsize=1)
def code_version_hash() -> str:
    """Digest of every source file in the ``repro`` package."""
    digest = hashlib.sha256()
    root = package_root()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # src/repro -> src -> repo root, when running from a checkout.
    checkout = package_root().parent.parent
    if (checkout / "pyproject.toml").exists():
        return checkout / ".repro_cache"
    return Path.home() / ".cache" / "repro"


class MemoCache:
    """A content-addressed store of JSON-serializable results.

    Args:
        directory: where entries live; created on first :meth:`put`.
        version: cache namespace; defaults to :func:`code_version_hash`
            so edits to the model code invalidate prior entries.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        version: str | None = None,
    ):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.version = version if version is not None else code_version_hash()

    def key(self, name: str, config=None) -> str:
        payload = json.dumps(
            [name, config, self.version], sort_keys=True, default=repr
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def _path(self, name: str, config) -> Path:
        return self.directory / ("%s.json" % self.key(name, config))

    @staticmethod
    def _checksum(value_json: str) -> str:
        return hashlib.sha256(value_json.encode()).hexdigest()[:16]

    def get(self, name: str, config=None, default=None):
        """The cached value for (name, config) at this code version.

        A corrupted or truncated entry (unparseable JSON, missing
        fields, or a checksum mismatch) is never returned as a value:
        it is quarantined to ``<entry>.corrupt`` and counted as
        ``core.memo.corrupt`` — distinct from an honest miss — so a
        torn write from a dead worker cannot poison later runs.
        """
        counters = get_recorder().counters
        path = self._path(name, config)
        try:
            raw = path.read_text()
        except OSError:
            counters.add("core.memo.misses", 1)
            return default
        try:
            document = json.loads(raw)
            value = document["value"]
            stored = document["checksum"]
            recomputed = self._checksum(json.dumps(value, sort_keys=True))
            if stored != recomputed:
                raise ValueError(
                    "checksum mismatch: %s != %s" % (stored, recomputed)
                )
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            counters.add("core.memo.corrupt", 1)
            return default
        counters.add("core.memo.hits", 1)
        return value

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside so it is inspectable but never reread."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    def put(self, name: str, value, config=None) -> Path:
        """Store a JSON-serializable value; returns the entry path."""
        get_recorder().counters.add("core.memo.puts", 1)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(name, config)
        value_json = json.dumps(value, sort_keys=True, default=_to_builtin)
        # Checksum the *canonical* (re-parsed) form: JSON stringifies
        # non-string dict keys, so a value like {10: ...} serializes with
        # different key order before vs after a round trip; :meth:`get`
        # recomputes over the parsed document, which matches this.
        document = {
            "name": name,
            "version": self.version,
            "value": value,
            "checksum": self._checksum(
                json.dumps(json.loads(value_json), sort_keys=True)
            ),
        }
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        with open(tmp, "w") as f:
            json.dump(document, f, default=_to_builtin)
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete all entries; returns how many were removed.

        Also sweeps the debris faulty runs leave behind: quarantined
        ``*.corrupt`` entries and stale ``*.tmp.<pid>`` files from
        workers that died mid-:meth:`put`.
        """
        removed = 0
        if self.directory.is_dir():
            for pattern in ("*.json", "*.corrupt", "*.tmp.*"):
                for path in self.directory.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def prune(self, max_age_days: float = 30.0) -> int:
        """Remove entries from old code versions, plus aged debris.

        An entry whose stored ``version`` differs from this cache's is
        unreachable (the key embeds the version) and only wastes disk;
        it is deleted once older than ``max_age_days``.  Unreadable
        entries, ``*.corrupt`` quarantine files, and stale ``*.tmp.*``
        files past the age cutoff are removed too.  Current-version
        entries are never pruned.  Returns how many files were removed.
        """
        if not self.directory.is_dir():
            return 0
        cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
                version = json.loads(path.read_text()).get("version")
            except (OSError, ValueError, AttributeError):
                version = None
            if version == self.version:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for pattern in ("*.corrupt", "*.tmp.*"):
            for path in self.directory.glob(pattern):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        removed += 1
                except OSError:
                    pass
        return removed
