"""Content-keyed on-disk memoization for regenerated experiments.

Regenerating a paper figure is deterministic: the rows depend only on the
model code and the (default) configuration.  ``MemoCache`` therefore keys
each entry on a SHA-256 of (entry name, JSON-encoded config, code-version
hash), where the code-version hash digests every ``*.py`` file of the
installed ``repro`` package.  Any source edit — anywhere in the package —
invalidates the whole cache, so a hit is always safe to reuse; a repeated
``python -m repro figures`` run with an unchanged tree skips all model
work and loads rows from disk.

The cache directory defaults to ``.repro_cache/`` next to
``pyproject.toml`` when running from a source checkout (override with the
``REPRO_CACHE_DIR`` environment variable; falls back to
``~/.cache/repro`` for installed packages).  Entries are small JSON
documents, written atomically so concurrent runs never observe partial
files.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from pathlib import Path

from repro.obs.recorder import get_recorder


def _to_builtin(value):
    """JSON fallback: unwrap numpy scalars to builtin int/float/bool."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError("%r is not JSON serializable" % (value,))


def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


@functools.lru_cache(maxsize=1)
def code_version_hash() -> str:
    """Digest of every source file in the ``repro`` package."""
    digest = hashlib.sha256()
    root = package_root()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # src/repro -> src -> repo root, when running from a checkout.
    checkout = package_root().parent.parent
    if (checkout / "pyproject.toml").exists():
        return checkout / ".repro_cache"
    return Path.home() / ".cache" / "repro"


class MemoCache:
    """A content-addressed store of JSON-serializable results.

    Args:
        directory: where entries live; created on first :meth:`put`.
        version: cache namespace; defaults to :func:`code_version_hash`
            so edits to the model code invalidate prior entries.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        version: str | None = None,
    ):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.version = version if version is not None else code_version_hash()

    def key(self, name: str, config=None) -> str:
        payload = json.dumps(
            [name, config, self.version], sort_keys=True, default=repr
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def _path(self, name: str, config) -> Path:
        return self.directory / ("%s.json" % self.key(name, config))

    def get(self, name: str, config=None, default=None):
        """The cached value for (name, config) at this code version."""
        try:
            with open(self._path(name, config)) as f:
                value = json.load(f)["value"]
        except (OSError, ValueError, KeyError):
            get_recorder().counters.add("core.memo.misses", 1)
            return default
        get_recorder().counters.add("core.memo.hits", 1)
        return value

    def put(self, name: str, value, config=None) -> Path:
        """Store a JSON-serializable value; returns the entry path."""
        get_recorder().counters.add("core.memo.puts", 1)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(name, config)
        document = {"name": name, "version": self.version, "value": value}
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        with open(tmp, "w") as f:
            json.dump(document, f, default=_to_builtin)
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
