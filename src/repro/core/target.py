"""PIM targets and the Section 3.2 identification methodology.

The paper identifies a function as a *PIM target candidate* when:

1. it consumes the most energy out of all functions in the workload
   (operationalized here as: it is among the top energy consumers, above a
   configurable share threshold);
2. its data movement consumes a significant fraction of total workload
   energy;
3. it is memory-intensive: last-level-cache MPKI > 10;
4. data movement is the single largest component of the function's energy.

A candidate becomes a *PIM target* if additionally:

5. it incurs no performance loss on simple PIM logic; and
6. its PIM logic fits in the area available per vault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.area import AreaModel, PAPER_ACCELERATOR_AREAS
from repro.sim.profile import KernelProfile


@dataclass(frozen=True)
class PimTarget:
    """One offloadable function, ready for evaluation.

    Attributes:
        name: function name (e.g. ``"texture_tiling"``).
        profile: its measured execution profile.
        accelerator_key: key into the accelerator-area table; also selects
            the fixed-function accelerator design.
        invocations: number of separate offload invocations this profile
            represents (sets the coherence/launch overhead).
        workload: owning workload, for reporting.
    """

    name: str
    profile: KernelProfile
    accelerator_key: str
    invocations: int = 1
    workload: str = ""

    def __post_init__(self):
        if self.accelerator_key not in PAPER_ACCELERATOR_AREAS:
            raise KeyError(
                "no accelerator design for %r; known: %s"
                % (self.accelerator_key, sorted(PAPER_ACCELERATOR_AREAS))
            )
        if self.invocations < 1:
            raise ValueError("invocations must be >= 1")


@dataclass(frozen=True)
class CandidateCriteria:
    """Thresholds for the Section 3.2 candidate tests."""

    #: A function must hold at least this share of workload energy (the
    #: paper examines the top consumers; "Other" buckets of <1% functions
    #: are excluded by construction).
    min_energy_share: float = 0.05
    #: Its data movement must be at least this share of *workload* energy.
    min_movement_share_of_workload: float = 0.03
    #: The paper's memory-intensity threshold.
    min_mpki: float = 10.0


@dataclass
class CandidateEvaluation:
    """Outcome of evaluating one function against all six criteria."""

    name: str
    energy_share: float
    movement_share_of_workload: float
    mpki: float
    movement_dominates_function: bool
    pim_speedup: float
    area_fraction_of_vault: float
    criteria: CandidateCriteria = field(default_factory=CandidateCriteria)

    @property
    def is_candidate(self) -> bool:
        """Criteria 1-4 (workload analysis)."""
        return (
            self.energy_share >= self.criteria.min_energy_share
            and self.movement_share_of_workload
            >= self.criteria.min_movement_share_of_workload
            and self.mpki > self.criteria.min_mpki
            and self.movement_dominates_function
        )

    @property
    def no_performance_loss(self) -> bool:
        """Criterion 5: PIM execution is not slower than the CPU."""
        return self.pim_speedup >= 1.0

    @property
    def fits_area_budget(self) -> bool:
        """Criterion 6: the PIM logic fits in the per-vault budget."""
        return self.area_fraction_of_vault <= 1.0

    @property
    def is_pim_target(self) -> bool:
        return self.is_candidate and self.no_performance_loss and self.fits_area_budget


def identify_pim_targets(
    evaluations: list[CandidateEvaluation],
) -> list[CandidateEvaluation]:
    """Filter a workload's function evaluations down to accepted targets."""
    return [e for e in evaluations if e.is_pim_target]


def evaluate_candidate(
    name: str,
    profile: KernelProfile,
    energy_share: float,
    movement_share_of_workload: float,
    movement_fraction_of_function: float,
    pim_speedup: float,
    accelerator_key: str | None = None,
    area_model: AreaModel | None = None,
    criteria: CandidateCriteria | None = None,
) -> CandidateEvaluation:
    """Build a :class:`CandidateEvaluation` from measured quantities."""
    area = area_model or AreaModel()
    if accelerator_key is not None:
        check = area.check_accelerator(accelerator_key)
        area_fraction = check.fraction_of_budget
    else:
        area_fraction = area.check_pim_core().fraction_of_budget
    return CandidateEvaluation(
        name=name,
        energy_share=energy_share,
        movement_share_of_workload=movement_share_of_workload,
        mpki=profile.mpki,
        movement_dominates_function=movement_fraction_of_function > 0.5,
        pim_speedup=pim_speedup,
        area_fraction_of_vault=area_fraction,
        criteria=criteria or CandidateCriteria(),
    )
