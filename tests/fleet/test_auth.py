"""Shared-secret request signing: every endpoint, both directions.

The contract: with a secret configured, a server answers unsigned or
wrongly-signed requests with 401 (plus a ``fleet.*.unauthorized``
counter) and never runs route logic; with no secret configured nothing
changes for loopback fleets.  Signing covers method, selector (path +
query), and body, so a signature can't be replayed onto a different
request.
"""

from __future__ import annotations

import pytest

from repro.core.memo import code_version_hash
from repro.fleet.wire import (
    PROTOCOL,
    decode_obj,
    encode_obj,
    http_json,
    sign_request,
    verify_signature,
)
from tests.fleet.conftest import elastic_manifest, inprocess_manifest

SECRET = "tests-shared-secret"


def _envelope(fn, *args, **kwargs):
    return {
        "protocol": PROTOCOL,
        "version": code_version_hash(),
        "init": None,
        "fn": encode_obj(fn),
        "args": encode_obj(args),
        "kwargs": encode_obj(kwargs),
    }


def _triple(x):
    return 3 * x


# ---------------------------------------------------------------------------
# Signature primitives


def test_signature_round_trip():
    sig = sign_request(SECRET, "POST", "/run", b"body")
    assert verify_signature(SECRET, "POST", "/run", b"body", sig)


@pytest.mark.parametrize(
    "mutation",
    [
        dict(method="GET"),
        dict(selector="/other"),
        dict(selector="/run?x=1"),
        dict(body=b"tampered"),
        dict(secret="wrong"),
    ],
)
def test_signature_binds_every_component(mutation):
    sig = sign_request(SECRET, "POST", "/run", b"body")
    params = dict(secret=SECRET, method="POST", selector="/run", body=b"body")
    params.update(mutation)
    assert not verify_signature(
        params["secret"], params["method"], params["selector"], params["body"], sig
    )


def test_verify_survives_garbage_header():
    assert not verify_signature(SECRET, "POST", "/run", b"", "not-hex-at-all")
    assert not verify_signature(SECRET, "POST", "/run", b"", "")


# ---------------------------------------------------------------------------
# Worker endpoints


WORKER_REQUESTS = [
    ("GET", "/health", None),
    ("GET", "/result?job=x", None),
    ("POST", "/run", {"protocol": PROTOCOL}),
    ("POST", "/drain", {}),
]


@pytest.mark.parametrize("method,path,payload", WORKER_REQUESTS)
def test_worker_rejects_unsigned_and_wrong_secret(
    worker_servers, method, path, payload
):
    from repro.obs.recorder import recording

    with recording() as recorder:
        (server,) = worker_servers(1, secret=SECRET)
        url = "http://127.0.0.1:%d" % server.port
        status, doc = http_json(method, url + path, payload)
        assert status == 401
        assert doc["error"] == "unauthorized"
        status, doc = http_json(method, url + path, payload, secret="wrong")
        assert status == 401
        assert recorder.counters.get("fleet.worker.unauthorized") == 2
    # A drain must not have started from the unauthorized attempts.
    assert server.state.draining is False


def test_worker_accepts_signed_requests(worker_servers):
    (server,) = worker_servers(1, secret=SECRET)
    url = "http://127.0.0.1:%d" % server.port
    status, doc = http_json("GET", url + "/health", secret=SECRET)
    assert status == 200 and doc["ok"]
    status, doc = http_json("POST", url + "/run", _envelope(_triple, 5), secret=SECRET)
    assert status == 200
    import time

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        status, record = http_json(
            "GET", "%s/result?job=%s" % (url, doc["job"]), secret=SECRET
        )
        assert status == 200
        if record["status"] != "pending":
            break
        time.sleep(0.01)
    assert decode_obj(record["value"]) == 15


def test_worker_without_secret_ignores_signatures(worker_servers):
    (server,) = worker_servers(1)
    url = "http://127.0.0.1:%d" % server.port
    for secret in (None, "anything"):
        status, doc = http_json("GET", url + "/health", secret=secret)
        assert status == 200 and doc["ok"]


# ---------------------------------------------------------------------------
# Gateway endpoints

GATEWAY_REQUESTS = [
    ("GET", "/health", None),
    ("GET", "/status", None),
    ("GET", "/result?worker=x&job=y", None),
    ("GET", "/cache/get?key=k", None),
    ("POST", "/run", {"protocol": PROTOCOL}),
    ("POST", "/register", {"host": "127.0.0.1", "port": 1}),
    ("POST", "/renew", {"host": "127.0.0.1", "port": 1}),
    ("POST", "/deregister", {"host": "127.0.0.1", "port": 1}),
    ("POST", "/cache/put", {"key": "k", "value": 1}),
]


@pytest.mark.parametrize("method,path,payload", GATEWAY_REQUESTS)
def test_gateway_rejects_unsigned_and_wrong_secret(
    gateway_server, method, path, payload
):
    from repro.obs.recorder import recording

    with recording() as recorder:
        gateway = gateway_server(elastic_manifest(0), secret=SECRET)
        url = "http://127.0.0.1:%d" % gateway.port
        status, doc = http_json(method, url + path, payload)
        assert status == 401
        assert doc["error"] == "unauthorized"
        status, _doc = http_json(method, url + path, payload, secret="wrong")
        assert status == 401
        assert recorder.counters.get("fleet.gateway.unauthorized") == 2
    # The unauthorized register must not have touched membership.
    assert len(gateway.membership) == 0


def test_signed_job_round_trips_through_gateway(worker_servers, gateway_server):
    servers = worker_servers(2, secret=SECRET)
    manifest = inprocess_manifest(servers)
    gateway = gateway_server(manifest, secret=SECRET)
    url = "http://127.0.0.1:%d" % gateway.port
    status, doc = http_json("POST", url + "/run", _envelope(_triple, 7), secret=SECRET)
    assert status == 200
    import time
    from urllib.parse import quote

    result_url = "%s/result?worker=%s&job=%s" % (
        url,
        quote(doc["worker"], safe=""),
        doc["job"],
    )
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        status, record = http_json("GET", result_url, secret=SECRET)
        assert status == 200
        if record["status"] != "pending":
            break
        time.sleep(0.01)
    assert decode_obj(record["value"]) == 21


def test_remote_cache_with_wrong_secret_degrades_to_miss(gateway_server):
    from repro.fleet.cache import RemoteMemoCache

    gateway = gateway_server(elastic_manifest(0), secret=SECRET)
    url = "http://127.0.0.1:%d" % gateway.port
    good = RemoteMemoCache(url, secret=SECRET)
    good.put("point", {"v": 1}, config={"c": 1})
    assert good.get("point", config={"c": 1}) == {"v": 1}
    # Wrong secret: every request answers 401 → the cache degrades to a
    # miss (recompute), never to a sweep failure — and never a hit.
    bad = RemoteMemoCache(url, secret="wrong")
    assert bad.get("point", config={"c": 1}, default="MISS") == "MISS"
    bad.put("other", {"v": 2})  # silently dropped
    assert good.get("other", default="MISS") == "MISS"
