"""Fixtures for the distributed sweep fleet tests.

Two tiers of infrastructure:

- In-process servers (:func:`worker_servers`, :func:`gateway_server`):
  ``WorkerServer`` / ``GatewayServer`` instances on daemon threads, for
  protocol-level unit tests where real process isolation isn't the point.
- Subprocess fleets (:func:`make_fleet`): real ``python -m repro fleet
  worker`` / ``fleet serve`` processes bound to ephemeral ports, for the
  fault suite — killing a worker must kill a *process*, and fault plans
  (``REPRO_FAULT_PLAN``) must be inherited at spawn.  Workers can be
  started static (listed in the manifest) or elastic
  (``start_worker(register=True)`` → ``--register`` against the
  gateway), and SIGSTOP/SIGCONT helpers simulate partitions for the
  lease-expiry tests.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.fleet.manifest import FleetManifest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Client-side knobs tuned for loopback latencies.
FAST_KNOBS = {
    "poll_interval_s": 0.02,
    "probe_interval_s": 0.2,
    "request_timeout_s": 10.0,
}


def fleet_env(extra=None) -> dict:
    """Subprocess env: repro importable, tests unpicklable-by-reference."""
    env = dict(os.environ)
    parts = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if extra:
        env.update(extra)
    return env


def wait_for_port_file(path: Path, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.02)
    raise RuntimeError("no port file at %s after %gs" % (path, timeout))


class FleetHarness:
    """Spawn and manage a loopback fleet of real subprocesses."""

    def __init__(self, tmp_path: Path, env_extra=None):
        self.tmp_path = Path(tmp_path)
        self.env = fleet_env(env_extra)
        self.workers = []  # (Popen, port)
        self.gateway = None  # (Popen, port)
        self.gateway_cache_dir = self.tmp_path / "gateway-cache"
        self._seq = 0

    # -- processes -----------------------------------------------------
    def _spawn(self, argv, log_name: str) -> subprocess.Popen:
        log = open(self.tmp_path / log_name, "wb")
        return subprocess.Popen(
            [sys.executable, "-m", "repro"] + argv,
            env=self.env,
            cwd=str(REPO_ROOT),
            stdout=log,
            stderr=subprocess.STDOUT,
        )

    def start_worker(self, register: bool = False, extra_args=()) -> int:
        self._seq += 1
        port_file = self.tmp_path / ("worker-%d.port" % self._seq)
        argv = ["fleet", "worker", "--port", "0", "--port-file", str(port_file)]
        if register:
            assert self.gateway is not None, "start_gateway() first"
            argv += ["--register", "http://127.0.0.1:%d" % self.gateway[1]]
        argv += list(extra_args)
        proc = self._spawn(argv, "worker-%d.log" % self._seq)
        port = wait_for_port_file(port_file)
        self.workers.append((proc, port))
        return port

    def start_gateway(
        self, port: int = 0, include_workers: bool = True, **overrides
    ) -> int:
        manifest_path = self.write_manifest(
            name="gateway-manifest.json",
            include_workers=include_workers,
            # An elastic gateway manifest names itself so validation
            # passes with zero static workers; port 0 is a placeholder.
            with_gateway=not include_workers,
            gateway_port=0,
            **overrides,
        )
        self._seq += 1
        port_file = self.tmp_path / ("gateway-%d.port" % self._seq)
        proc = self._spawn(
            [
                "fleet", "serve", "--fleet", str(manifest_path),
                "--port", str(port), "--port-file", str(port_file),
                "--cache-dir", str(self.gateway_cache_dir),
            ],
            "gateway-%d.log" % self._seq,
        )
        bound = wait_for_port_file(port_file)
        self.gateway = (proc, bound)
        return bound

    def kill_worker(self, index: int) -> None:
        proc, _port = self.workers[index]
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

    def sigstop_worker(self, index: int) -> None:
        """Freeze a worker process: the loopback analogue of a partition
        (TCP connects still succeed, nothing answers, leases lapse)."""
        proc, _port = self.workers[index]
        proc.send_signal(signal.SIGSTOP)

    def sigcont_worker(self, index: int) -> None:
        proc, _port = self.workers[index]
        proc.send_signal(signal.SIGCONT)

    def sigterm_worker(self, index: int) -> None:
        proc, _port = self.workers[index]
        proc.send_signal(signal.SIGTERM)

    def drain_worker(self, index: int, secret=None) -> None:
        from repro.fleet.wire import http_json

        _proc, port = self.workers[index]
        status, doc = http_json(
            "POST",
            "http://127.0.0.1:%d/drain" % port,
            {},
            timeout=5.0,
            secret=secret,
        )
        assert status == 200 and doc.get("ok"), doc

    def wait_worker_exit(self, index: int, timeout: float = 30.0) -> int:
        proc, _port = self.workers[index]
        return proc.wait(timeout=timeout)

    def kill_gateway(self) -> None:
        assert self.gateway is not None
        proc, _port = self.gateway
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        self.gateway = None

    def gateway_status(self, secret=None) -> dict:
        from repro.fleet.wire import http_json

        assert self.gateway is not None
        status, doc = http_json(
            "GET",
            "http://127.0.0.1:%d/status" % self.gateway[1],
            timeout=5.0,
            secret=secret,
        )
        assert status == 200, doc
        return doc

    def wait_members(self, n: int, timeout: float = 30.0, secret=None) -> dict:
        """Block until the gateway reports ``n`` alive members."""
        deadline = time.monotonic() + timeout
        last = {}
        while time.monotonic() < deadline:
            last = self.gateway_status(secret=secret)
            alive = [w for w in last.get("workers", []) if w.get("alive")]
            if len(alive) == n:
                return last
            time.sleep(0.1)
        raise AssertionError(
            "gateway never reported %d alive members; last status: %r" % (n, last)
        )

    def stop(self) -> None:
        procs = [proc for proc, _ in self.workers]
        if self.gateway is not None:
            procs.append(self.gateway[0])
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGCONT)  # un-freeze SIGSTOP'd ones
                proc.send_signal(signal.SIGKILL)
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass

    # -- manifests -----------------------------------------------------
    def manifest_doc(
        self,
        with_gateway: bool = False,
        include_workers: bool = True,
        gateway_port=None,
        **overrides,
    ) -> dict:
        doc = dict(FAST_KNOBS)
        doc.update(overrides)
        doc["workers"] = (
            [{"host": "127.0.0.1", "port": port} for _proc, port in self.workers]
            if include_workers
            else []
        )
        if with_gateway:
            if gateway_port is None:
                assert self.gateway is not None, "start_gateway() first"
                gateway_port = self.gateway[1]
            doc["gateway"] = {"host": "127.0.0.1", "port": gateway_port}
        return doc

    def manifest(self, with_gateway: bool = False, **overrides) -> FleetManifest:
        return FleetManifest.from_dict(self.manifest_doc(with_gateway, **overrides))

    def write_manifest(
        self, with_gateway: bool = False, name: str = "fleet.json", **overrides
    ) -> Path:
        import json

        path = self.tmp_path / name
        path.write_text(json.dumps(self.manifest_doc(with_gateway, **overrides)))
        return path


@pytest.fixture
def make_fleet(tmp_path):
    """Factory: ``make_fleet(n_workers, env_extra=..., gateway=...)``."""
    harnesses = []

    def factory(n_workers: int, env_extra=None, gateway: bool = False) -> FleetHarness:
        harness = FleetHarness(tmp_path, env_extra=env_extra)
        harnesses.append(harness)
        for _ in range(n_workers):
            harness.start_worker()
        if gateway:
            harness.start_gateway()
        return harness

    yield factory
    for harness in harnesses:
        harness.stop()


@pytest.fixture
def worker_servers():
    """Factory for in-process WorkerServers on daemon threads."""
    from repro.fleet.worker import WorkerServer

    servers = []

    def factory(n: int = 1, **kwargs):
        batch = []
        for _ in range(n):
            server = WorkerServer("127.0.0.1", 0, **kwargs)
            threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.02},
                daemon=True,
            ).start()
            servers.append(server)
            batch.append(server)
        return batch

    yield factory
    for server in servers:
        server.shutdown()
        server.server_close()


@pytest.fixture
def gateway_server(tmp_path):
    """Factory for an in-process GatewayServer on a daemon thread."""
    from repro.fleet.gateway import GatewayServer

    servers = []

    def factory(manifest, secret=None, cache_dir=None) -> "GatewayServer":
        server = GatewayServer(
            manifest,
            "127.0.0.1",
            0,
            cache_dir=cache_dir or tmp_path / ("gwcache-%d" % len(servers)),
            secret=secret,
        )
        threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.02},
            daemon=True,
        ).start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.shutdown()
        server.server_close()


def inprocess_manifest(servers, gateway_port=None, **overrides) -> FleetManifest:
    doc = dict(FAST_KNOBS)
    doc.update(overrides)
    doc["workers"] = [
        {"host": "127.0.0.1", "port": server.port} for server in servers
    ]
    if gateway_port is not None:
        doc["gateway"] = {"host": "127.0.0.1", "port": gateway_port}
    return FleetManifest.from_dict(doc)


def elastic_manifest(gateway_port: int, **overrides) -> FleetManifest:
    """A manifest with no static workers — gateway-only, elastic."""
    doc = dict(FAST_KNOBS)
    doc.update(overrides)
    doc["workers"] = []
    doc["gateway"] = {"host": "127.0.0.1", "port": gateway_port}
    return FleetManifest.from_dict(doc)
