"""Fixtures for the distributed sweep fleet tests.

Two tiers of infrastructure:

- In-process servers (:func:`worker_servers`): ``WorkerServer`` /
  ``GatewayServer`` instances on daemon threads, for protocol-level unit
  tests where real process isolation isn't the point.
- Subprocess fleets (:func:`make_fleet`): real ``python -m repro fleet
  worker`` / ``fleet serve`` processes bound to ephemeral ports, for the
  fault suite — killing a worker must kill a *process*, and fault plans
  (``REPRO_FAULT_PLAN``) must be inherited at spawn.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.fleet.manifest import FleetManifest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Client-side knobs tuned for loopback latencies.
FAST_KNOBS = {
    "poll_interval_s": 0.02,
    "probe_interval_s": 0.2,
    "request_timeout_s": 10.0,
}


def fleet_env(extra=None) -> dict:
    """Subprocess env: repro importable, tests unpicklable-by-reference."""
    env = dict(os.environ)
    parts = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if extra:
        env.update(extra)
    return env


def wait_for_port_file(path: Path, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.02)
    raise RuntimeError("no port file at %s after %gs" % (path, timeout))


class FleetHarness:
    """Spawn and manage a loopback fleet of real subprocesses."""

    def __init__(self, tmp_path: Path, env_extra=None):
        self.tmp_path = Path(tmp_path)
        self.env = fleet_env(env_extra)
        self.workers = []  # (Popen, port)
        self.gateway = None  # (Popen, port)
        self.gateway_cache_dir = self.tmp_path / "gateway-cache"
        self._seq = 0

    # -- processes -----------------------------------------------------
    def _spawn(self, argv, log_name: str) -> subprocess.Popen:
        log = open(self.tmp_path / log_name, "wb")
        return subprocess.Popen(
            [sys.executable, "-m", "repro"] + argv,
            env=self.env,
            cwd=str(REPO_ROOT),
            stdout=log,
            stderr=subprocess.STDOUT,
        )

    def start_worker(self) -> int:
        self._seq += 1
        port_file = self.tmp_path / ("worker-%d.port" % self._seq)
        proc = self._spawn(
            ["fleet", "worker", "--port", "0", "--port-file", str(port_file)],
            "worker-%d.log" % self._seq,
        )
        port = wait_for_port_file(port_file)
        self.workers.append((proc, port))
        return port

    def start_gateway(self, port: int = 0) -> int:
        manifest_path = self.write_manifest(name="gateway-manifest.json")
        self._seq += 1
        port_file = self.tmp_path / ("gateway-%d.port" % self._seq)
        proc = self._spawn(
            [
                "fleet", "serve", "--fleet", str(manifest_path),
                "--port", str(port), "--port-file", str(port_file),
                "--cache-dir", str(self.gateway_cache_dir),
            ],
            "gateway-%d.log" % self._seq,
        )
        bound = wait_for_port_file(port_file)
        self.gateway = (proc, bound)
        return bound

    def kill_worker(self, index: int) -> None:
        proc, _port = self.workers[index]
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

    def kill_gateway(self) -> None:
        assert self.gateway is not None
        proc, _port = self.gateway
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        self.gateway = None

    def stop(self) -> None:
        procs = [proc for proc, _ in self.workers]
        if self.gateway is not None:
            procs.append(self.gateway[0])
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass

    # -- manifests -----------------------------------------------------
    def manifest_doc(self, with_gateway: bool = False, **overrides) -> dict:
        doc = dict(FAST_KNOBS)
        doc.update(overrides)
        doc["workers"] = [
            {"host": "127.0.0.1", "port": port} for _proc, port in self.workers
        ]
        if with_gateway:
            assert self.gateway is not None, "start_gateway() first"
            doc["gateway"] = {"host": "127.0.0.1", "port": self.gateway[1]}
        return doc

    def manifest(self, with_gateway: bool = False, **overrides) -> FleetManifest:
        return FleetManifest.from_dict(self.manifest_doc(with_gateway, **overrides))

    def write_manifest(
        self, with_gateway: bool = False, name: str = "fleet.json", **overrides
    ) -> Path:
        import json

        path = self.tmp_path / name
        path.write_text(json.dumps(self.manifest_doc(with_gateway, **overrides)))
        return path


@pytest.fixture
def make_fleet(tmp_path):
    """Factory: ``make_fleet(n_workers, env_extra=..., gateway=...)``."""
    harnesses = []

    def factory(n_workers: int, env_extra=None, gateway: bool = False) -> FleetHarness:
        harness = FleetHarness(tmp_path, env_extra=env_extra)
        harnesses.append(harness)
        for _ in range(n_workers):
            harness.start_worker()
        if gateway:
            harness.start_gateway()
        return harness

    yield factory
    for harness in harnesses:
        harness.stop()


@pytest.fixture
def worker_servers():
    """Factory for in-process WorkerServers on daemon threads."""
    from repro.fleet.worker import WorkerServer

    servers = []

    def factory(n: int = 1):
        batch = []
        for _ in range(n):
            server = WorkerServer("127.0.0.1", 0)
            threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.02},
                daemon=True,
            ).start()
            servers.append(server)
            batch.append(server)
        return batch

    yield factory
    for server in servers:
        server.shutdown()
        server.server_close()


def inprocess_manifest(servers, gateway_port=None, **overrides) -> FleetManifest:
    doc = dict(FAST_KNOBS)
    doc.update(overrides)
    doc["workers"] = [
        {"host": "127.0.0.1", "port": server.port} for server in servers
    ]
    if gateway_port is not None:
        doc["gateway"] = {"host": "127.0.0.1", "port": gateway_port}
    return FleetManifest.from_dict(doc)
