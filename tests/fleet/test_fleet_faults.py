"""Loopback-fleet fault suite: real worker processes, real deaths.

Every scenario asserts the ResilientMap contract holds when the "pool"
is a fleet of HTTP workers: faults degrade or retry exactly as they do
for a local process pool, and whatever survives is byte-identical to a
serial single-process run.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.cachesweep import run_sweep, sweep_all
from repro.config import CacheConfig, SocConfig
from repro.core.resilience import RetryPolicy
from repro.fleet.cache import RemoteMemoCache
from repro.fleet.executor import fleet_pool_factory
from repro.obs import recording
from repro.sim.artifact import TraceStore
from repro.validate import strict_mode

NAMES = ["tensorflow.gemm_unpacked", "chrome.compositing_linear"]
# Two distinct L1 geometries so the sharded path has >= 2 shards.
SOCS = [
    SocConfig(
        l1=CacheConfig(size_bytes=1024, associativity=2),
        l2=CacheConfig(size_bytes=4096, associativity=4),
    ),
    SocConfig(
        l1=CacheConfig(size_bytes=2048, associativity=4),
        l2=CacheConfig(size_bytes=8192, associativity=8),
    ),
]
FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.05, jitter=0.0)


def canon(document) -> str:
    return json.dumps(document, sort_keys=True)


def canon_data(documents) -> str:
    """Canon minus the ``batched`` engine-provenance flag.

    A resumed sweep honestly reports ``batched: false`` for rows loaded
    from the journal — exactly as a resumed *local* run does (the
    existing resume tests pin ``rows``, not provenance) — so resume
    comparisons cover the data: artifact, rows, failures.
    """
    return json.dumps(
        {
            name: {k: v for k, v in doc.items() if k != "batched"}
            for name, doc in documents.items()
        },
        sort_keys=True,
    )


def write_plan(tmp_path, faults: dict) -> str:
    path = tmp_path / "fault-plan.json"
    path.write_text(json.dumps({"faults": faults}))
    return str(path)


@pytest.fixture
def local_docs(tmp_path):
    """The fault-free serial ground truth for NAMES x SOCS."""
    store = TraceStore(tmp_path / "local-traces")
    return sweep_all(NAMES, socs=SOCS, store=store, jobs=1)


class TestFleetFaults:
    def test_worker_killed_mid_sweep_retries_on_sibling(
        self, tmp_path, make_fleet, local_docs
    ):
        plan = write_plan(
            tmp_path, {"tensorflow.gemm_unpacked": ["kill"]}
        )
        harness = make_fleet(2, env_extra={"REPRO_FAULT_PLAN": plan})
        store = TraceStore(tmp_path / "fleet-traces")
        with strict_mode(False), recording() as rec:
            documents = sweep_all(
                NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                pool_factory=fleet_pool_factory(harness.manifest()),
            )
            assert rec.counters.get("core.resilience.retries") >= 1
        assert canon(documents) == canon(local_docs)

    def test_whole_fleet_dead_quarantines_and_degrades(
        self, tmp_path, make_fleet
    ):
        harness = make_fleet(2)
        harness.kill_worker(0)
        harness.kill_worker(1)
        store = TraceStore(tmp_path / "fleet-traces")
        with strict_mode(False), recording() as rec:
            documents = sweep_all(
                NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                pool_factory=fleet_pool_factory(harness.manifest()),
            )
            assert rec.counters.get("core.resilience.quarantined") == len(NAMES)
        # Degraded aggregates: every workload contributes a failure
        # document instead of aborting or hanging the sweep.
        for name in NAMES:
            assert documents[name]["rows"] == []
            (failure,) = documents[name]["failures"]
            assert failure["config"] == "*"
            assert failure["attempts"] == FAST.max_attempts
            assert "dead" in failure["error"]

    def test_gateway_restart_then_resume_is_bit_identical(
        self, tmp_path, make_fleet, local_docs
    ):
        # Phase 1 quarantines one workload (its fault plan always
        # raises) while the other completes and journals.
        plan = write_plan(
            tmp_path,
            {"tensorflow.gemm_unpacked": ["raise:outage"] * FAST.max_attempts},
        )
        harness = make_fleet(
            2, env_extra={"REPRO_FAULT_PLAN": plan}, gateway=True
        )
        store = TraceStore(tmp_path / "fleet-traces")
        checkpoint = str(tmp_path / "sweep.ckpt")
        manifest = harness.manifest(with_gateway=True)
        with strict_mode(False):
            phase1 = sweep_all(
                NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                checkpoint=checkpoint,
                pool_factory=fleet_pool_factory(manifest),
            )
        assert phase1["tensorflow.gemm_unpacked"]["rows"] == []
        assert canon(phase1["chrome.compositing_linear"]) == canon(
            local_docs["chrome.compositing_linear"]
        )

        # Restart the gateway on the same port, then resume: the
        # journaled workload replays from its checkpoint, the
        # quarantined one (fault plan now exhausted) computes fresh.
        old_port = harness.gateway[1]
        harness.kill_gateway()
        assert harness.start_gateway(port=old_port) == old_port
        with strict_mode(False), recording() as rec:
            phase2 = sweep_all(
                NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                checkpoint=checkpoint, resume=True,
                pool_factory=fleet_pool_factory(manifest),
            )
            assert rec.counters.get("core.resilience.resumed") >= 1
        assert canon_data(phase2) == canon_data(local_docs)
        # The freshly-computed workload (not resumed) still reports the
        # batch engine, like the local baseline.
        assert phase2["tensorflow.gemm_unpacked"]["batched"] is True

    def test_hung_worker_times_out_and_requeues(
        self, tmp_path, make_fleet, local_docs
    ):
        plan = write_plan(
            tmp_path, {"tensorflow.gemm_unpacked": ["hang:60"]}
        )
        harness = make_fleet(2, env_extra={"REPRO_FAULT_PLAN": plan})
        store = TraceStore(tmp_path / "fleet-traces")
        policy = RetryPolicy(
            max_attempts=3, backoff_base_s=0.05, jitter=0.0, timeout_s=3.0
        )
        with strict_mode(False), recording() as rec:
            documents = sweep_all(
                NAMES, socs=SOCS, store=store, jobs=2, retry_policy=policy,
                pool_factory=fleet_pool_factory(harness.manifest()),
            )
            assert rec.counters.get("core.resilience.timeouts") >= 1
        assert canon(documents) == canon(local_docs)

    def test_shared_cache_short_circuits_second_client(
        self, tmp_path, make_fleet, local_docs
    ):
        harness = make_fleet(2, gateway=True)
        gateway_url = "http://127.0.0.1:%d" % harness.gateway[1]
        store = TraceStore(tmp_path / "fleet-traces")
        name = "tensorflow.gemm_unpacked"
        factory = fleet_pool_factory(harness.manifest(with_gateway=True))

        # Client 1 computes over the fleet and publishes to the shared
        # cache at the gateway.
        with recording() as rec:
            first = run_sweep(
                name, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                cache=RemoteMemoCache(gateway_url), pool_factory=factory,
            )
            assert rec.counters.get("fleet.cache.puts") >= 1
        assert canon(first) == canon(local_docs[name])

        # Every worker dies; a second client still succeeds, because the
        # gateway's cache answers before any job is ever dispatched.
        harness.kill_worker(0)
        harness.kill_worker(1)
        with recording() as rec:
            second = run_sweep(
                name, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                cache=RemoteMemoCache(gateway_url), pool_factory=factory,
            )
            assert rec.counters.get("fleet.cache.hits") >= 1
        assert canon(second) == canon(first)
