"""Dispatcher tests: weighted rotation, eviction, revival."""

from __future__ import annotations

import time

import pytest

from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.manifest import FleetManifest
from repro.fleet.wire import FleetNoWorkersError
from repro.obs import recording
from tests.fleet.conftest import inprocess_manifest


def _manifest(ports_weights, **overrides):
    doc = {
        "workers": [
            {"host": "127.0.0.1", "port": port, "weight": weight}
            for port, weight in ports_weights
        ],
        "probe_interval_s": 0.1,
    }
    doc.update(overrides)
    return FleetManifest.from_dict(doc)


class TestWeightedRoundRobin:
    def test_equal_weights_alternate(self):
        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)]))
        picks = [dispatcher.pick().port for _ in range(6)]
        assert picks == [1, 2, 1, 2, 1, 2]

    def test_smooth_weighting_interleaves(self):
        # Classic smooth-WRR: weight 2:1 yields A B A, not A A B.
        dispatcher = FleetDispatcher(_manifest([(1, 2), (2, 1)]))
        picks = [dispatcher.pick().port for _ in range(6)]
        assert picks == [1, 2, 1, 1, 2, 1]
        assert picks.count(1) == 4 and picks.count(2) == 2

    def test_rotation_is_deterministic(self):
        a = FleetDispatcher(_manifest([(1, 3), (2, 2), (3, 1)]))
        b = FleetDispatcher(_manifest([(1, 3), (2, 2), (3, 1)]))
        assert [a.pick().port for _ in range(12)] == [
            b.pick().port for _ in range(12)
        ]


class TestEviction:
    def test_failed_worker_is_skipped(self):
        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)]))
        first = dispatcher.pick()
        dispatcher.report_failure(first)
        assert all(
            dispatcher.pick().port != first.port for _ in range(6)
        )
        assert [spec.port for spec in dispatcher.alive_workers()] != []

    def test_all_dead_raises_no_workers(self):
        # Ports point at nothing, so revival probes fail fast too.
        manifest = _manifest([(1, 1), (2, 1)], probe_interval_s=1e9)
        dispatcher = FleetDispatcher(manifest)
        with recording() as rec:
            for spec in list(dispatcher.alive_workers()):
                dispatcher.report_failure(spec)
            with pytest.raises(FleetNoWorkersError):
                dispatcher.pick()
            assert rec.counters.get("fleet.dispatch.no_workers") == 1
            assert rec.counters.get("fleet.dispatch.evicted") == 2

    def test_double_report_evicts_once(self):
        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)]))
        spec = dispatcher.pick()
        with recording() as rec:
            dispatcher.report_failure(spec)
            dispatcher.report_failure(spec)
            assert rec.counters.get("fleet.dispatch.evicted") == 1


class TestRevival:
    def test_restarted_worker_rejoins_after_probe_interval(self, worker_servers):
        (server,) = worker_servers(1)
        manifest = inprocess_manifest([server], probe_interval_s=0.05)
        dispatcher = FleetDispatcher(manifest)
        spec = dispatcher.pick()
        dispatcher.report_failure(spec)
        with pytest.raises(FleetNoWorkersError):
            dispatcher.pick()
        time.sleep(0.1)  # past the probe interval; /health answers again
        with recording() as rec:
            assert dispatcher.pick() == spec
            assert rec.counters.get("fleet.dispatch.revived") == 1

    def test_dead_worker_stays_dead_after_probe(self):
        manifest = _manifest([(1, 1)], probe_interval_s=0.01)
        dispatcher = FleetDispatcher(manifest)
        dispatcher.report_failure(dispatcher.pick())
        time.sleep(0.05)
        with pytest.raises(FleetNoWorkersError):
            dispatcher.pick()
