"""Dispatcher tests: weighted rotation, eviction, revival."""

from __future__ import annotations

import time

import pytest

from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.manifest import FleetManifest
from repro.fleet.wire import FleetNoWorkersError
from repro.obs import recording
from tests.fleet.conftest import inprocess_manifest


def _manifest(ports_weights, **overrides):
    doc = {
        "workers": [
            {"host": "127.0.0.1", "port": port, "weight": weight}
            for port, weight in ports_weights
        ],
        "probe_interval_s": 0.1,
    }
    doc.update(overrides)
    return FleetManifest.from_dict(doc)


class TestWeightedRoundRobin:
    def test_equal_weights_alternate(self):
        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)]))
        picks = [dispatcher.pick().port for _ in range(6)]
        assert picks == [1, 2, 1, 2, 1, 2]

    def test_smooth_weighting_interleaves(self):
        # Classic smooth-WRR: weight 2:1 yields A B A, not A A B.
        dispatcher = FleetDispatcher(_manifest([(1, 2), (2, 1)]))
        picks = [dispatcher.pick().port for _ in range(6)]
        assert picks == [1, 2, 1, 1, 2, 1]
        assert picks.count(1) == 4 and picks.count(2) == 2

    def test_rotation_is_deterministic(self):
        a = FleetDispatcher(_manifest([(1, 3), (2, 2), (3, 1)]))
        b = FleetDispatcher(_manifest([(1, 3), (2, 2), (3, 1)]))
        assert [a.pick().port for _ in range(12)] == [
            b.pick().port for _ in range(12)
        ]


class TestEviction:
    def test_failed_worker_is_skipped(self):
        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)]))
        first = dispatcher.pick()
        dispatcher.report_failure(first)
        assert all(
            dispatcher.pick().port != first.port for _ in range(6)
        )
        assert [spec.port for spec in dispatcher.alive_workers()] != []

    def test_all_dead_raises_no_workers(self):
        # Ports point at nothing, so revival probes fail fast too.
        manifest = _manifest([(1, 1), (2, 1)], probe_interval_s=1e9)
        dispatcher = FleetDispatcher(manifest)
        with recording() as rec:
            for spec in list(dispatcher.alive_workers()):
                dispatcher.report_failure(spec)
            with pytest.raises(FleetNoWorkersError):
                dispatcher.pick()
            assert rec.counters.get("fleet.dispatch.no_workers") == 1
            assert rec.counters.get("fleet.dispatch.evicted") == 2

    def test_double_report_evicts_once(self):
        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)]))
        spec = dispatcher.pick()
        with recording() as rec:
            dispatcher.report_failure(spec)
            dispatcher.report_failure(spec)
            assert rec.counters.get("fleet.dispatch.evicted") == 1


class TestRevival:
    def test_restarted_worker_rejoins_after_probe_interval(self, worker_servers):
        (server,) = worker_servers(1)
        manifest = inprocess_manifest([server], probe_interval_s=0.05)
        dispatcher = FleetDispatcher(manifest)
        spec = dispatcher.pick()
        dispatcher.report_failure(spec)
        with pytest.raises(FleetNoWorkersError):
            dispatcher.pick()
        time.sleep(0.1)  # past the probe interval; /health answers again
        with recording() as rec:
            assert dispatcher.pick() == spec
            assert rec.counters.get("fleet.dispatch.revived") == 1

    def test_dead_worker_stays_dead_after_probe(self):
        manifest = _manifest([(1, 1)], probe_interval_s=0.01)
        dispatcher = FleetDispatcher(manifest)
        dispatcher.report_failure(dispatcher.pick())
        time.sleep(0.05)
        with pytest.raises(FleetNoWorkersError):
            dispatcher.pick()

    def test_version_skewed_worker_stays_evicted(self, worker_servers, monkeypatch):
        # A worker restarted on a divergent tree answers /health fine,
        # but handing it jobs would 409 every one — keep it evicted.
        (server,) = worker_servers(1)
        manifest = inprocess_manifest([server], probe_interval_s=0.05)
        dispatcher = FleetDispatcher(manifest)
        spec = dispatcher.pick()
        dispatcher.report_failure(spec)
        monkeypatch.setattr(
            "repro.fleet.dispatch.code_version_hash", lambda: "somebody-elses-tree"
        )
        time.sleep(0.1)
        with recording() as rec:
            with pytest.raises(FleetNoWorkersError):
                dispatcher.pick()
            assert rec.counters.get("fleet.dispatch.version_skew") == 1
        # Versions re-converge (e.g. the worker restarts on the synced
        # tree): the next probe revives it.
        monkeypatch.undo()
        time.sleep(0.1)
        assert dispatcher.pick() == spec

    def test_draining_worker_is_not_revived(self, worker_servers):
        (server,) = worker_servers(1, drain_grace_s=60.0)
        # Park a job so the drain keeps the server alive and answering
        # /health with draining=true for the duration of the test.
        from repro.core.memo import code_version_hash as real_hash
        from repro.fleet.wire import PROTOCOL, encode_obj, http_json

        url = "http://127.0.0.1:%d" % server.port
        status, _doc = http_json(
            "POST",
            url + "/run",
            {
                "protocol": PROTOCOL,
                "version": real_hash(),
                "init": None,
                "fn": encode_obj(time.sleep),
                "args": encode_obj((30,)),
                "kwargs": encode_obj({}),
            },
        )
        assert status == 200
        status, _doc = http_json("POST", url + "/drain", {})
        assert status == 200
        manifest = inprocess_manifest([server], probe_interval_s=0.05)
        dispatcher = FleetDispatcher(manifest)
        dispatcher.report_failure(dispatcher.pick())
        time.sleep(0.1)
        with pytest.raises(FleetNoWorkersError):
            dispatcher.pick()


class TestElasticNodes:
    def test_add_worker_joins_rotation(self):
        dispatcher = FleetDispatcher(_manifest([(1, 1)]))
        from repro.fleet.manifest import WorkerSpec

        dispatcher.add_worker(WorkerSpec(host="127.0.0.1", port=2))
        picks = [dispatcher.pick().port for _ in range(4)]
        assert sorted(set(picks)) == [1, 2]

    def test_readd_revives_and_updates_weight(self):
        from repro.fleet.manifest import WorkerSpec

        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)], probe_interval_s=1e9))
        spec = [s for s in dispatcher.alive_workers() if s.port == 1][0]
        dispatcher.report_failure(spec)
        assert all(dispatcher.pick().port == 2 for _ in range(3))
        # Re-registration revives immediately — no probe interval wait.
        dispatcher.add_worker(WorkerSpec(host="127.0.0.1", port=1, weight=2))
        picks = [dispatcher.pick().port for _ in range(6)]
        assert picks.count(1) == 4 and picks.count(2) == 2

    def test_remove_worker_leaves_rotation_entirely(self):
        from repro.fleet.manifest import WorkerSpec

        dispatcher = FleetDispatcher(_manifest([(1, 1), (2, 1)]))
        dispatcher.remove_worker(WorkerSpec(host="127.0.0.1", port=1))
        assert [s.port for s in dispatcher.alive_workers()] == [2]
        assert all(dispatcher.pick().port == 2 for _ in range(4))
        # Removing the last node makes the fleet empty, not revivable.
        dispatcher.remove_worker(WorkerSpec(host="127.0.0.1", port=2))
        with pytest.raises(FleetNoWorkersError):
            dispatcher.pick()

    def test_remove_unknown_worker_is_noop(self):
        from repro.fleet.manifest import WorkerSpec

        dispatcher = FleetDispatcher(_manifest([(1, 1)]))
        with recording() as rec:
            dispatcher.remove_worker(WorkerSpec(host="127.0.0.1", port=99))
            assert rec.counters.get("fleet.dispatch.removed") == 0
        assert [s.port for s in dispatcher.alive_workers()] == [1]
