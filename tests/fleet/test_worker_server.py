"""Protocol tests against an in-process WorkerServer."""

from __future__ import annotations

import time

from repro.core.memo import code_version_hash
from repro.fleet.wire import PROTOCOL, decode_obj, encode_obj, http_json


def _envelope(fn, *args, init=None, **kwargs):
    return {
        "protocol": PROTOCOL,
        "version": code_version_hash(),
        "init": init,
        "fn": encode_obj(fn),
        "args": encode_obj(args),
        "kwargs": encode_obj(kwargs),
    }


def _poll(url, job, timeout_s: float = 10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, record = http_json("GET", "%s/result?job=%s" % (url, job))
        assert status == 200
        if record["status"] != "pending":
            return record
        time.sleep(0.01)
    raise AssertionError("job %s still pending after %gs" % (job, timeout_s))


def _double(x):
    return 2 * x


def _boom(message):
    raise KeyError(message)


def _nap(seconds):
    time.sleep(seconds)
    return "rested"


_INIT_WITNESS = []


def _record_init(tag):
    _INIT_WITNESS.append(tag)


class TestWorkerServer:
    def test_health_reports_identity(self, worker_servers):
        (server,) = worker_servers(1)
        status, doc = http_json("GET", "http://127.0.0.1:%d/health" % server.port)
        assert status == 200
        assert doc["ok"] is True
        assert doc["role"] == "worker"
        assert doc["busy"] is False
        assert doc["slots"] == 1
        assert doc["version"] == code_version_hash()
        assert doc["protocol"] == PROTOCOL

    def test_run_and_result_round_trip(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        status, doc = http_json("POST", url + "/run", _envelope(_double, 21))
        assert status == 200
        record = _poll(url, doc["job"])
        assert record["status"] == "done"
        assert decode_obj(record["value"]) == 42

    def test_remote_exception_ships_original_type(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        status, doc = http_json("POST", url + "/run", _envelope(_boom, "gone"))
        assert status == 200
        record = _poll(url, doc["job"])
        assert record["status"] == "error"
        exc = decode_obj(record["error"])
        assert isinstance(exc, KeyError)
        assert exc.args == ("gone",)
        assert "gone" in record["repr"]

    def test_single_slot_rejects_busy_with_503(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        status, first = http_json("POST", url + "/run", _envelope(_nap, 0.5))
        assert status == 200
        status, doc = http_json("POST", url + "/run", _envelope(_double, 1))
        assert status == 503
        assert doc["error"] == "busy"
        # The slot frees once the first job finishes.
        assert _poll(url, first["job"])["status"] == "done"
        status, doc = http_json("POST", url + "/run", _envelope(_double, 3))
        assert status == 200
        assert decode_obj(_poll(url, doc["job"])["value"]) == 6

    def test_version_mismatch_is_409(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        envelope = _envelope(_double, 1)
        envelope["version"] = "somebody-elses-tree"
        status, doc = http_json("POST", url + "/run", envelope)
        assert status == 409
        assert "version mismatch" in doc["error"]
        assert doc["version"] == code_version_hash()

    def test_wrong_protocol_is_400_and_unknown_paths_404(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        envelope = _envelope(_double, 1)
        envelope["protocol"] = "repro-fleet-job/v999"
        status, _doc = http_json("POST", url + "/run", envelope)
        assert status == 400
        status, _doc = http_json("GET", url + "/result?job=nope")
        assert status == 404
        status, _doc = http_json("GET", url + "/nope")
        assert status == 404

    def test_result_fetch_evicts_the_record(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        status, doc = http_json("POST", url + "/run", _envelope(_double, 21))
        assert status == 200
        record = _poll(url, doc["job"])
        assert decode_obj(record["value"]) == 42
        # Single consumer: the fetch handed the result over, the record
        # is gone, and the job table stays bounded.
        status, _doc = http_json("GET", "%s/result?job=%s" % (url, doc["job"]))
        assert status == 404
        assert server.state.jobs == {}

    def test_unfetched_results_expire_by_ttl(self, worker_servers):
        from repro.obs.recorder import recording

        with recording() as recorder:
            (server,) = worker_servers(1, jobs_ttl_s=0.2)
            url = "http://127.0.0.1:%d" % server.port
            status, doc = http_json("POST", url + "/run", _envelope(_double, 21))
            assert status == 200
            # Wait for completion WITHOUT fetching the result — the
            # abandoned-client path (client timed out and re-placed).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _status, health = http_json("GET", url + "/health")
                if health["completed"] >= 1:
                    break
                time.sleep(0.01)
            time.sleep(0.3)  # let the TTL lapse
            # Any request sweeps expired records on the way in.
            http_json("GET", url + "/health")
            assert server.state.jobs == {}
            status, _doc = http_json("GET", "%s/result?job=%s" % (url, doc["job"]))
            assert status == 404
            assert recorder.counters.get("fleet.worker.jobs_expired") >= 1

    def test_result_without_job_param_is_400(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        status, doc = http_json("GET", url + "/result")
        assert status == 400
        assert "job" in doc["error"]

    def test_initializer_runs_once_per_fingerprint(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        del _INIT_WITNESS[:]
        init = encode_obj((_record_init, ("alpha",)))
        for _ in range(3):
            status, doc = http_json(
                "POST", url + "/run", _envelope(_double, 1, init=init)
            )
            assert status == 200
            _poll(url, doc["job"])
        assert _INIT_WITNESS == ["alpha"]
        # A different initializer payload re-initializes.
        other = encode_obj((_record_init, ("beta",)))
        status, doc = http_json(
            "POST", url + "/run", _envelope(_double, 1, init=other)
        )
        assert status == 200
        _poll(url, doc["job"])
        assert _INIT_WITNESS == ["alpha", "beta"]
