"""Elastic-membership chaos suite: join, drain, lease expiry, rehydration.

The ResilientMap contract from ``test_fleet_faults`` extended to fleets
whose membership changes *during* the sweep:

- a worker registering mid-sweep picks up shards;
- a graceful drain mid-sweep stays bit-identical and uncharged;
- a partitioned (SIGSTOP'd) worker inside a 60s hang is cut loose by
  lease expiry within ~``lease_s``, not after the hang;
- a SIGKILL'd gateway restarted on the same port rehydrates its member
  table from the persisted store and the sweep resumes bit-identically;
- a client with the wrong secret is locked out end-to-end while the
  correctly-signed client sweeps normally.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.analysis.cachesweep import sweep_all
from repro.config import CacheConfig, SocConfig
from repro.core.resilience import RetryPolicy
from repro.fleet.executor import fleet_pool_factory
from repro.obs import recording
from repro.sim.artifact import TraceStore
from repro.validate import strict_mode
from tests.fleet.conftest import FleetHarness, elastic_manifest

NAMES = ["tensorflow.gemm_unpacked", "chrome.compositing_linear"]
SOCS = [
    SocConfig(
        l1=CacheConfig(size_bytes=1024, associativity=2),
        l2=CacheConfig(size_bytes=4096, associativity=4),
    ),
    SocConfig(
        l1=CacheConfig(size_bytes=2048, associativity=4),
        l2=CacheConfig(size_bytes=8192, associativity=8),
    ),
]
FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.05, jitter=0.0)
#: Join-mid-sweep starts with zero workers: generous budget so retries
#: are still in flight when the first member registers.
PATIENT = RetryPolicy(max_attempts=10, backoff_base_s=0.2, jitter=0.0)
SECRET = "elastic-suite-secret"


def canon(document) -> str:
    return json.dumps(document, sort_keys=True)


def canon_data(documents) -> str:
    """Canon minus the ``batched`` engine-provenance flag (resume rows
    honestly report ``batched: false``; see test_fleet_faults)."""
    return json.dumps(
        {
            name: {k: v for k, v in doc.items() if k != "batched"}
            for name, doc in documents.items()
        },
        sort_keys=True,
    )


def write_plan(tmp_path, faults: dict) -> str:
    path = tmp_path / "fault-plan.json"
    path.write_text(json.dumps({"faults": faults}))
    return str(path)


@pytest.fixture
def local_docs(tmp_path):
    """The fault-free serial ground truth for NAMES x SOCS."""
    store = TraceStore(tmp_path / "local-traces")
    return sweep_all(NAMES, socs=SOCS, store=store, jobs=1)


@pytest.fixture
def harness(tmp_path):
    h = FleetHarness(tmp_path)
    yield h
    h.stop()


class TestElasticMembership:
    def test_worker_joining_mid_sweep_picks_up_shards(
        self, tmp_path, harness, local_docs
    ):
        # Gateway with ZERO workers: every early attempt 502s.  A worker
        # registering mid-sweep is the only way this sweep can finish —
        # completion itself proves join-time shard pickup.
        harness.start_gateway(include_workers=False, lease_s=5.0)
        manifest = elastic_manifest(harness.gateway[1], lease_s=5.0)
        store = TraceStore(tmp_path / "fleet-traces")
        results = {}

        def drive():
            with strict_mode(False):
                results["docs"] = sweep_all(
                    NAMES, socs=SOCS, store=store, jobs=2, retry_policy=PATIENT,
                    pool_factory=fleet_pool_factory(manifest),
                )

        sweeper = threading.Thread(target=drive)
        sweeper.start()
        time.sleep(1.0)  # let the fleet-dead attempts start burning
        harness.start_worker(register=True)
        sweeper.join(timeout=180)
        assert not sweeper.is_alive(), "sweep never finished after the join"
        assert canon(results["docs"]) == canon(local_docs)

    def test_drain_mid_sweep_is_bit_identical_and_uncharged(
        self, tmp_path, harness, local_docs
    ):
        # Both workers registered; one gets drained while it chews on a
        # 2s-hang shard.  The drain path must not charge a retry: the
        # draining worker finishes its in-flight shard (results are
        # still collectable), and only *unstarted* placements move to
        # the sibling.
        plan = write_plan(tmp_path, {"tensorflow.gemm_unpacked": ["hang:2"]})
        harness.env.update({"REPRO_FAULT_PLAN": plan})
        harness.start_gateway(include_workers=False, lease_s=10.0)
        harness.start_worker(register=True)
        harness.start_worker(register=True)
        harness.wait_members(2)
        manifest = elastic_manifest(harness.gateway[1], lease_s=10.0)
        store = TraceStore(tmp_path / "fleet-traces")

        stop_drainer = threading.Event()

        def drain_busy_worker():
            # Wait until a worker reports busy (it holds the hung
            # shard), then drain it mid-shard.
            from repro.fleet.wire import FleetTransportError, http_json

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and not stop_drainer.is_set():
                for index, (_proc, port) in enumerate(harness.workers):
                    try:
                        _status, doc = http_json(
                            "GET", "http://127.0.0.1:%d/health" % port, timeout=2.0
                        )
                    except FleetTransportError:
                        continue
                    if doc.get("busy"):
                        harness.drain_worker(index)
                        return index
                time.sleep(0.05)
            return None

        drained = {}
        drainer = threading.Thread(
            target=lambda: drained.update(index=drain_busy_worker())
        )
        drainer.start()
        try:
            with strict_mode(False), recording() as rec:
                documents = sweep_all(
                    NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                    pool_factory=fleet_pool_factory(manifest),
                )
                # Drain is the uncharged path: no retry was consumed.
                assert rec.counters.get("core.resilience.retries") == 0
        finally:
            stop_drainer.set()
            drainer.join(timeout=70)
        assert canon(documents) == canon(local_docs)
        index = drained.get("index")
        assert index is not None, "no worker was ever busy to drain"
        # The drained worker exited 0 (graceful), not a crash code.
        assert harness.wait_worker_exit(index, timeout=60.0) == 0

    def test_lease_expiry_requeues_hung_workers_shard(
        self, tmp_path, harness, local_docs
    ):
        # A worker SIGSTOP'd inside a hang:60 shard is a partition: the
        # process holds the TCP socket but answers nothing and stops
        # renewing.  The lease (1s) must cut it loose and requeue the
        # shard on the sibling LONG before the 60s hang resolves — and
        # well before the 30s transport timeout would.
        plan = write_plan(tmp_path, {"tensorflow.gemm_unpacked": ["hang:60"]})
        harness.env.update({"REPRO_FAULT_PLAN": plan})
        harness.start_gateway(include_workers=False, lease_s=1.0)
        harness.start_worker(register=True)
        harness.start_worker(register=True)
        harness.wait_members(2)
        manifest = elastic_manifest(
            harness.gateway[1], lease_s=1.0, request_timeout_s=30.0
        )
        store = TraceStore(tmp_path / "fleet-traces")

        def freeze_busy_worker():
            # Both tensorflow shards start near-simultaneously and only
            # one of them draws the hang from the fault scoreboard — a
            # worker that is merely *momentarily* busy is computing a
            # normal sub-second shard.  Freeze the worker that stays
            # busy (alone, for 2s straight): that one provably holds
            # the hang.  Freezing the fast sibling instead would queue
            # the whole retried sweep behind the 60s hang.
            from repro.fleet.wire import FleetTransportError, http_json

            busy_since = {}
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                now = time.monotonic()
                busy = []
                for index, (_proc, port) in enumerate(harness.workers):
                    try:
                        _status, doc = http_json(
                            "GET", "http://127.0.0.1:%d/health" % port, timeout=2.0
                        )
                    except FleetTransportError:
                        busy_since.pop(index, None)
                        continue
                    if doc.get("busy"):
                        busy_since.setdefault(index, now)
                        busy.append(index)
                    else:
                        busy_since.pop(index, None)
                if len(busy) == 1 and now - busy_since[busy[0]] >= 2.0:
                    harness.sigstop_worker(busy[0])
                    return busy[0]
                time.sleep(0.05)
            return None

        frozen = {}
        freezer = threading.Thread(
            target=lambda: frozen.update(index=freeze_busy_worker())
        )
        freezer.start()
        start = time.monotonic()
        try:
            with strict_mode(False), recording() as rec:
                documents = sweep_all(
                    NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                    pool_factory=fleet_pool_factory(manifest),
                )
                elapsed = time.monotonic() - start
                # The frozen worker's shard was charged and retried.
                assert rec.counters.get("core.resilience.retries") >= 1
        finally:
            freezer.join(timeout=70)
            if frozen.get("index") is not None:
                harness.sigcont_worker(frozen["index"])
        assert frozen.get("index") is not None, "no worker was ever busy to freeze"
        # Proactive detection: done in a handful of lease periods, not
        # the 60s hang (nor the 30s transport timeout).
        assert elapsed < 25.0, "lease expiry took %.1fs" % elapsed
        assert canon(documents) == canon(local_docs)
        status = harness.gateway_status()
        assert status["counters"].get("fleet.gateway.lease_expired", 0) >= 1

    def test_gateway_restart_rehydrates_membership(
        self, tmp_path, harness, local_docs
    ):
        # Long leases: after the restart the members are rehydrated from
        # the persisted store, not re-learned from renewals.
        harness.start_gateway(include_workers=False, lease_s=120.0)
        harness.start_worker(register=True)
        harness.start_worker(register=True)
        harness.wait_members(2)
        manifest = elastic_manifest(harness.gateway[1], lease_s=120.0)
        store = TraceStore(tmp_path / "fleet-traces")
        checkpoint = str(tmp_path / "sweep.ckpt")

        # ``checkpoint`` is a path *prefix*: multi-workload sweeps derive
        # ``<prefix>.<workload>`` journals, a single-workload sweep uses
        # the path as-is.  Phase 1 sweeps one workload, so point it at
        # the derived path phase 2 will look for.
        with strict_mode(False):
            phase1 = sweep_all(
                [NAMES[0]], socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                checkpoint="%s.%s" % (checkpoint, NAMES[0]),
                pool_factory=fleet_pool_factory(manifest),
            )
        assert canon(phase1[NAMES[0]]) == canon(local_docs[NAMES[0]])

        old_port = harness.gateway[1]
        harness.kill_gateway()
        assert harness.start_gateway(
            port=old_port, include_workers=False, lease_s=120.0
        ) == old_port
        # Immediately after boot — before any renewal could possibly
        # have re-registered anyone (renew cadence is lease/3 = 40s) —
        # the member table is already full: that's rehydration.
        status = harness.gateway_status()
        assert status["membership"]["members"] == 2
        assert status["counters"].get("fleet.membership.rehydrated") == 2

        with strict_mode(False), recording() as rec:
            phase2 = sweep_all(
                NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                checkpoint=checkpoint, resume=True,
                pool_factory=fleet_pool_factory(manifest),
            )
            assert rec.counters.get("core.resilience.resumed") >= 1
        assert canon_data(phase2) == canon_data(local_docs)

    def test_wrong_secret_is_locked_out_everywhere(
        self, tmp_path, harness, local_docs, monkeypatch
    ):
        # The whole fleet shares a secret via the environment; workers
        # and gateway inherit it at spawn.
        harness.env["REPRO_FLEET_SECRET"] = SECRET
        harness.start_gateway(include_workers=False, lease_s=10.0)
        harness.start_worker(register=True)
        harness.start_worker(register=True)
        monkeypatch.setenv("REPRO_FLEET_SECRET", SECRET)
        harness.wait_members(2, secret=SECRET)
        store = TraceStore(tmp_path / "fleet-traces")

        # Correctly-signed client: the sweep is plain and bit-identical.
        manifest = elastic_manifest(harness.gateway[1], lease_s=10.0)
        with strict_mode(False):
            documents = sweep_all(
                NAMES, socs=SOCS, store=store, jobs=2, retry_policy=FAST,
                pool_factory=fleet_pool_factory(manifest),
            )
        assert canon(documents) == canon(local_docs)

        # Wrong-secret client: every placement answers 401, both shards
        # (one per SoC) exhaust their attempts against the fleet and are
        # quarantined; the contained-shard fallback then recomputes them
        # locally, so the sweep never hangs and never trusts the fleet —
        # but also never loses data.
        monkeypatch.setenv("REPRO_FLEET_SECRET", "not-the-fleet-secret")
        with strict_mode(False), recording() as rec:
            locked_out = sweep_all(
                [NAMES[0]],
                socs=SOCS,
                store=TraceStore(tmp_path / "locked-traces"),
                jobs=2,
                retry_policy=FAST,
                pool_factory=fleet_pool_factory(manifest),
            )
            assert rec.counters.get("core.resilience.quarantined") == 2
            assert rec.counters.get("core.runner.shard_fallbacks") == 2
        # The local fallback is bit-identical to the ground truth: the
        # lockout degraded *where* the shards ran, never the data.
        # (canon_data: the fallback honestly reports ``batched: false``.)
        assert canon_data({NAMES[0]: locked_out[NAMES[0]]}) == canon_data(
            {NAMES[0]: local_docs[NAMES[0]]}
        )
        # And the fleet boundary saw (and counted) the rejections.
        status = harness.gateway_status(secret=SECRET)
        assert status["counters"].get("fleet.gateway.unauthorized", 0) >= 1
