"""Unit tests for the gateway-owned membership registry.

These drive :class:`MembershipRegistry` directly with an injectable
clock — lease arithmetic must be provable without sleeping — and a real
:class:`SegmentStore` for the persistence/rehydration contract.
"""

from __future__ import annotations

import pytest

from repro.core.store import SegmentStore
from repro.fleet.membership import (
    MEMBERS_STORE_KEY,
    REMOVAL_RETENTION_S,
    MemberRecord,
    MembershipRegistry,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def record(port: int = 9001, **kwargs) -> MemberRecord:
    return MemberRecord(host="127.0.0.1", port=port, **kwargs)


# ---------------------------------------------------------------------------
# MemberRecord


def test_record_round_trips_through_dict():
    rec = record(weight=3, pid=42, version="abc")
    assert MemberRecord.from_dict(rec.to_dict()) == rec


def test_record_url_and_spec():
    rec = record(9007, weight=2)
    assert rec.url == "http://127.0.0.1:9007"
    assert rec.spec.base_url == rec.url
    assert rec.spec.weight == 2


@pytest.mark.parametrize(
    "doc",
    [
        None,
        "not a dict",
        {},
        {"host": "h"},
        {"port": 1},
        {"host": "h", "port": "nope"},
        {"host": "h", "port": 1, "weight": 0},
    ],
)
def test_record_rejects_malformed(doc):
    with pytest.raises(ValueError):
        MemberRecord.from_dict(doc)


# ---------------------------------------------------------------------------
# Registry lease lifecycle


def test_register_renew_expire_cycle():
    clock = FakeClock()
    registry = MembershipRegistry(lease_s=10.0, clock=clock)
    assert registry.register(record()) is True
    assert len(registry) == 1

    clock.advance(9.0)
    assert registry.expire_due() == []  # lease still has 1s left
    assert registry.renew("127.0.0.1", 9001) is True

    clock.advance(9.0)  # renewed at t+9, so expiry is t+19; now t+18
    assert registry.expire_due() == []

    clock.advance(1.5)
    expired = registry.expire_due()
    assert [r.port for r in expired] == [9001]
    assert len(registry) == 0
    assert registry.removal_reason("http://127.0.0.1:9001") == "lease expired"


def test_renew_unknown_member_fails():
    registry = MembershipRegistry(lease_s=10.0, clock=FakeClock())
    assert registry.renew("127.0.0.1", 9001) is False


def test_reregistration_is_not_a_join():
    registry = MembershipRegistry(lease_s=10.0, clock=FakeClock())
    assert registry.register(record()) is True
    assert registry.register(record()) is False


def test_deregister_records_reason_and_is_idempotent():
    clock = FakeClock()
    registry = MembershipRegistry(lease_s=10.0, clock=clock)
    registry.register(record())
    removed = registry.deregister("127.0.0.1", 9001)
    assert removed is not None and removed.port == 9001
    assert registry.deregister("127.0.0.1", 9001) is None
    assert registry.removal_reason("http://127.0.0.1:9001") == "deregistered"
    assert not registry.is_member("http://127.0.0.1:9001")


def test_register_clears_removal_reason():
    registry = MembershipRegistry(lease_s=10.0, clock=FakeClock())
    registry.register(record())
    registry.deregister("127.0.0.1", 9001)
    registry.register(record())
    assert registry.removal_reason("http://127.0.0.1:9001") is None
    assert registry.is_member("http://127.0.0.1:9001")


def test_removal_reason_expires_after_retention():
    clock = FakeClock()
    registry = MembershipRegistry(lease_s=10.0, clock=clock)
    registry.register(record())
    registry.deregister("127.0.0.1", 9001)
    clock.advance(REMOVAL_RETENTION_S + 1.0)
    assert registry.removal_reason("http://127.0.0.1:9001") is None


def test_members_reports_remaining_lease():
    clock = FakeClock()
    registry = MembershipRegistry(lease_s=10.0, clock=clock)
    registry.register(record())
    clock.advance(4.0)
    [(rec, remaining)] = registry.members()
    assert rec.port == 9001
    assert remaining == pytest.approx(6.0)


# ---------------------------------------------------------------------------
# Persistence / rehydration


def _store(tmp_path):
    return SegmentStore(
        tmp_path, key=MEMBERS_STORE_KEY, prefix="members", flush_every=1, fsync=False
    )


def test_rehydrate_restores_members_with_fresh_leases(tmp_path):
    clock = FakeClock()
    registry = MembershipRegistry(lease_s=10.0, store=_store(tmp_path), clock=clock)
    registry.register(record(9001, weight=2))
    registry.register(record(9002))
    clock.advance(8.0)  # leases nearly spent at crash time
    registry.close()

    clock2 = FakeClock()
    reborn = MembershipRegistry(lease_s=10.0, store=_store(tmp_path), clock=clock2)
    records = reborn.rehydrate()
    assert sorted(r.port for r in records) == [9001, 9002]
    # Fresh leases: full lease_s remaining, not the pre-crash remnants.
    for _rec, remaining in reborn.members():
        assert remaining == pytest.approx(10.0)
    by_port = {r.port: r for r in records}
    assert by_port[9001].weight == 2
    reborn.close()


def test_rehydrate_skips_tombstones(tmp_path):
    registry = MembershipRegistry(
        lease_s=10.0, store=_store(tmp_path), clock=FakeClock()
    )
    registry.register(record(9001))
    registry.register(record(9002))
    registry.deregister("127.0.0.1", 9001)
    registry.close()

    reborn = MembershipRegistry(
        lease_s=10.0, store=_store(tmp_path), clock=FakeClock()
    )
    assert [r.port for r in reborn.rehydrate()] == [9002]
    reborn.close()


def test_expiry_tombstones_persist(tmp_path):
    clock = FakeClock()
    registry = MembershipRegistry(lease_s=5.0, store=_store(tmp_path), clock=clock)
    registry.register(record(9001))
    clock.advance(6.0)
    assert [r.port for r in registry.expire_due()] == [9001]
    registry.close()

    reborn = MembershipRegistry(
        lease_s=5.0, store=_store(tmp_path), clock=FakeClock()
    )
    assert reborn.rehydrate() == []
    reborn.close()
