"""Unit tests for the fleet manifest and wire encoding."""

from __future__ import annotations

import json
import math

import pytest

from repro.fleet.manifest import FleetManifest, WorkerSpec
from repro.fleet.wire import decode_obj, encode_obj


class TestManifest:
    def test_load_full_document(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({
            "gateway": {"host": "127.0.0.1", "port": 8700},
            "workers": [
                {"host": "127.0.0.1", "port": 8701, "weight": 2},
                {"host": "10.0.0.9", "port": 8702},
            ],
            "probe_interval_s": 0.5,
            "poll_interval_s": 0.01,
            "request_timeout_s": 3.0,
        }))
        manifest = FleetManifest.load(path)
        assert manifest.gateway == WorkerSpec("127.0.0.1", 8700)
        assert manifest.workers == [
            WorkerSpec("127.0.0.1", 8701, weight=2),
            WorkerSpec("10.0.0.9", 8702, weight=1),
        ]
        assert manifest.worker_urls() == [
            "http://127.0.0.1:8701", "http://10.0.0.9:8702",
        ]
        assert manifest.probe_interval_s == 0.5
        assert manifest.poll_interval_s == 0.01
        assert manifest.request_timeout_s == 3.0

    def test_gateway_is_optional(self):
        manifest = FleetManifest.from_dict(
            {"workers": [{"host": "h", "port": 1}]}
        )
        assert manifest.gateway is None

    def test_round_trips_through_to_dict(self):
        doc = {
            "gateway": {"host": "g", "port": 9},
            "workers": [{"host": "h", "port": 1, "weight": 3}],
        }
        manifest = FleetManifest.from_dict(doc)
        assert FleetManifest.from_dict(manifest.to_dict()) == manifest

    @pytest.mark.parametrize("doc", [
        {},
        {"workers": []},
        {"workers": "nope"},
        {"workers": [{"host": "h"}]},
        {"workers": [{"port": 1}]},
        {"workers": [{"host": "h", "port": "zesty"}]},
        {"workers": [{"host": "h", "port": 1, "weight": 0}]},
        {"workers": [{"host": "h", "port": 1}], "gateway": {"host": "g"}},
    ])
    def test_malformed_documents_raise_value_error(self, doc):
        with pytest.raises(ValueError):
            FleetManifest.from_dict(doc)

    def test_bad_json_raises_value_error(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            FleetManifest.load(path)

    def test_base_url(self):
        assert WorkerSpec("127.0.0.1", 8701).base_url == "http://127.0.0.1:8701"

    def test_elastic_manifest_needs_no_workers(self):
        # Workers empty or absent is fine as long as a gateway is named;
        # the gateway learns its fleet from registrations.
        for doc in (
            {"workers": [], "gateway": {"host": "g", "port": 1}},
            {"gateway": {"host": "g", "port": 1}},
        ):
            manifest = FleetManifest.from_dict(doc)
            assert manifest.workers == []
            assert manifest.gateway == WorkerSpec("g", 1)

    def test_lease_default_and_validation(self):
        manifest = FleetManifest.from_dict({"workers": [{"host": "h", "port": 1}]})
        assert manifest.lease_s == 10.0
        manifest = FleetManifest.from_dict(
            {"workers": [{"host": "h", "port": 1}], "lease_s": 2.5}
        )
        assert manifest.lease_s == 2.5
        for bad in (0, -1):
            with pytest.raises(ValueError):
                FleetManifest.from_dict(
                    {"workers": [{"host": "h", "port": 1}], "lease_s": bad}
                )

    def test_lease_and_secret_file_round_trip(self):
        doc = {
            "workers": [{"host": "h", "port": 1}],
            "lease_s": 3.0,
            "secret_file": "/tmp/secret",
        }
        manifest = FleetManifest.from_dict(doc)
        assert FleetManifest.from_dict(manifest.to_dict()) == manifest


class TestLoadSecret:
    def _manifest(self, **kwargs):
        return FleetManifest.from_dict(
            dict({"workers": [{"host": "h", "port": 1}]}, **kwargs)
        )

    def test_no_secret_configured_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_SECRET", raising=False)
        assert self._manifest().load_secret() is None

    def test_env_wins_over_secret_file(self, tmp_path, monkeypatch):
        secret_file = tmp_path / "fleet.secret"
        secret_file.write_text("from-file\n")
        manifest = self._manifest(secret_file=str(secret_file))
        monkeypatch.setenv("REPRO_FLEET_SECRET", "from-env")
        assert manifest.load_secret() == "from-env"
        monkeypatch.delenv("REPRO_FLEET_SECRET")
        assert manifest.load_secret() == "from-file"

    def test_missing_or_empty_secret_file_raises(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_SECRET", raising=False)
        with pytest.raises(ValueError):
            self._manifest(secret_file=str(tmp_path / "absent")).load_secret()
        empty = tmp_path / "empty.secret"
        empty.write_text("  \n")
        with pytest.raises(ValueError):
            self._manifest(secret_file=str(empty)).load_secret()


class TestWire:
    def test_round_trips_callables_and_values(self):
        fn = decode_obj(encode_obj(math.sqrt))
        assert fn is math.sqrt
        payload = {"rows": [1, 2.5], "name": "x", "t": (1, 2)}
        assert decode_obj(encode_obj(payload)) == payload

    def test_round_trips_exceptions(self):
        exc = decode_obj(encode_obj(KeyError("missing")))
        assert isinstance(exc, KeyError)
        assert exc.args == ("missing",)
