"""FleetExecutor semantics: the future contract ResilientMap relies on."""

from __future__ import annotations

import time

import pytest

from repro.core.resilience import ResilientMap, RetryPolicy
from repro.fleet.executor import FleetExecutor, fleet_pool_factory
from repro.fleet.manifest import FleetManifest
from repro.fleet.wire import FleetError, FleetNoWorkersError
from repro.validate import strict_mode
from tests.fleet.conftest import inprocess_manifest


def _triple(x):
    return 3 * x


def _lose(key):
    raise KeyError(key)


def _nap(seconds):
    time.sleep(seconds)
    return "rested"


FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.01, jitter=0.0)


class TestFutures:
    def test_submit_resolves_result(self, worker_servers):
        servers = worker_servers(1)
        executor = FleetExecutor(inprocess_manifest(servers))
        try:
            assert executor.submit(_triple, 14).result(timeout=10) == 42
        finally:
            executor.shutdown()

    def test_remote_exception_is_original_type(self, worker_servers):
        servers = worker_servers(1)
        executor = FleetExecutor(inprocess_manifest(servers))
        try:
            future = executor.submit(_lose, "token")
            with pytest.raises(KeyError, match="token"):
                future.result(timeout=10)
        finally:
            executor.shutdown()

    def test_dead_fleet_raises_no_workers_into_future(self):
        manifest = FleetManifest.from_dict({
            "workers": [{"host": "127.0.0.1", "port": 1}],
            "probe_interval_s": 1e9,
            "poll_interval_s": 0.01,
        })
        executor = FleetExecutor(manifest)
        try:
            future = executor.submit(_triple, 1)
            with pytest.raises(FleetNoWorkersError):
                future.result(timeout=10)
        finally:
            executor.shutdown()

    def test_kill_aborts_inflight_poll_threads(self, worker_servers):
        servers = worker_servers(1)
        executor = FleetExecutor(inprocess_manifest(servers))
        future = executor.submit(_nap, 30.0)
        time.sleep(0.1)  # let the job land on the worker
        executor.kill()
        with pytest.raises(FleetError, match="torn down"):
            future.result(timeout=10)
        assert executor.processes() == []
        executor.shutdown(wait=True)

    def test_one_slot_serializes_submissions(self, worker_servers):
        servers = worker_servers(1)
        executor = FleetExecutor(inprocess_manifest(servers))
        try:
            futures = [executor.submit(_triple, n) for n in range(4)]
            assert [f.result(timeout=20) for f in futures] == [0, 3, 6, 9]
        finally:
            executor.shutdown()


class TestResilientMapIntegration:
    def test_map_over_fleet_matches_local(self, worker_servers):
        servers = worker_servers(2)
        factory = fleet_pool_factory(inprocess_manifest(servers))
        values, failures = ResilientMap(
            _triple, [1, 2, 3, 4, 5], policy=FAST, jobs=2, pool_factory=factory
        ).run()
        assert values == [3, 6, 9, 12, 15]
        assert failures == []

    def test_dead_fleet_quarantines_instead_of_hanging(self):
        manifest = FleetManifest.from_dict({
            "workers": [
                {"host": "127.0.0.1", "port": 1},
                {"host": "127.0.0.1", "port": 2},
            ],
            "probe_interval_s": 1e9,
            "poll_interval_s": 0.01,
        })
        with strict_mode(False):
            values, failures = ResilientMap(
                _triple, [1, 2, 3], names=["a", "b", "c"], policy=FAST,
                jobs=2, pool_factory=fleet_pool_factory(manifest),
            ).run()
        assert values == [None, None, None]
        assert {f.target for f in failures} == {"a", "b", "c"}
        assert all(f.attempts == FAST.max_attempts for f in failures)
        assert all("dead" in f.error for f in failures)

    def test_gateway_path_round_trips(self, worker_servers, tmp_path):
        import threading

        from repro.fleet.gateway import GatewayServer

        servers = worker_servers(2)
        manifest = inprocess_manifest(servers)
        gateway = GatewayServer(
            manifest, "127.0.0.1", 0, cache_dir=tmp_path / "cache"
        )
        threading.Thread(
            target=gateway.serve_forever, kwargs={"poll_interval": 0.02},
            daemon=True,
        ).start()
        try:
            routed = inprocess_manifest(servers, gateway_port=gateway.port)
            values, failures = ResilientMap(
                _triple, [1, 2, 3, 4], policy=FAST, jobs=2,
                pool_factory=fleet_pool_factory(routed),
            ).run()
            assert values == [3, 6, 9, 12]
            assert failures == []
        finally:
            gateway.shutdown()
            gateway.server_close()
