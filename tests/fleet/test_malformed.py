"""Hostile-input handling on worker and gateway routes.

A fleet endpoint on a shared machine sees truncated bodies, garbage
headers, and half-requests.  The contract: every malformed request gets
a clean 4xx JSON answer — never a traceback, never a hung handler, and
never a poisoned execution slot (the next well-formed request must
succeed).
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.core.memo import code_version_hash
from repro.fleet.wire import PROTOCOL, decode_obj, encode_obj, http_json
from tests.fleet.conftest import elastic_manifest


def _raw_request(port: int, text: bytes, timeout: float = 10.0) -> bytes:
    """Send raw bytes, half-close, read the full response."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(text)
        # Half-close: the server sees EOF instead of blocking on a body
        # that will never arrive, and we can still read its answer.
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def _status_of(response: bytes) -> int:
    return int(response.split(b" ", 2)[1])


def _post(port: int, path: str, body: bytes, headers=()) -> bytes:
    lines = [
        b"POST " + path.encode() + b" HTTP/1.1",
        b"Host: 127.0.0.1",
        b"Connection: close",
    ]
    lines += [h.encode() for h in headers]
    return _raw_request(
        port, b"\r\n".join(lines) + b"\r\n\r\n" + body
    )


def _double(x):
    return 2 * x


def _run_ok(port: int) -> None:
    """A well-formed job still round-trips — the slot was never hung."""
    envelope = {
        "protocol": PROTOCOL,
        "version": code_version_hash(),
        "init": None,
        "fn": encode_obj(_double),
        "args": encode_obj((4,)),
        "kwargs": encode_obj({}),
    }
    url = "http://127.0.0.1:%d" % port
    status, doc = http_json("POST", url + "/run", envelope)
    assert status == 200
    import time

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        status, record = http_json("GET", "%s/result?job=%s" % (url, doc["job"]))
        assert status == 200
        if record["status"] != "pending":
            break
        time.sleep(0.01)
    assert decode_obj(record["value"]) == 8


# ---------------------------------------------------------------------------
# Worker routes


class TestWorkerMalformed:
    def test_bad_json_body_is_400(self, worker_servers):
        (server,) = worker_servers(1)
        body = b"{not json"
        response = _post(
            server.port, "/run", body,
            headers=["Content-Length: %d" % len(body)],
        )
        assert _status_of(response) == 400
        _run_ok(server.port)

    def test_truncated_body_is_400_not_a_hang(self, worker_servers):
        (server,) = worker_servers(1)
        # Claim 1000 bytes, deliver 10, half-close: the read sees EOF.
        response = _post(
            server.port, "/run", b"0123456789",
            headers=["Content-Length: 1000"],
        )
        assert _status_of(response) == 400
        _run_ok(server.port)

    def test_garbage_content_length_is_400(self, worker_servers):
        (server,) = worker_servers(1)
        response = _post(
            server.port, "/run", b"{}",
            headers=["Content-Length: banana"],
        )
        assert _status_of(response) == 400
        _run_ok(server.port)

    def test_negative_content_length_is_400(self, worker_servers):
        (server,) = worker_servers(1)
        response = _post(
            server.port, "/run", b"", headers=["Content-Length: -5"]
        )
        assert _status_of(response) == 400
        _run_ok(server.port)

    def test_absurd_content_length_is_400(self, worker_servers):
        (server,) = worker_servers(1)
        response = _post(
            server.port, "/run", b"",
            headers=["Content-Length: 99999999999999"],
        )
        assert _status_of(response) == 400
        _run_ok(server.port)

    def test_non_dict_envelope_is_400(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        status, doc = http_json("POST", url + "/run", [1, 2, 3])
        assert status == 400
        assert "envelope" in doc["error"]
        _run_ok(server.port)


# ---------------------------------------------------------------------------
# Gateway routes


class TestGatewayMalformed:
    @pytest.fixture
    def gateway(self, gateway_server):
        return gateway_server(elastic_manifest(0))

    def test_bad_json_to_register_is_400(self, gateway):
        body = b"\xff\xfe not utf8 json"
        response = _post(
            gateway.port, "/register", body,
            headers=["Content-Length: %d" % len(body)],
        )
        assert _status_of(response) == 400

    def test_truncated_register_body_is_400(self, gateway):
        response = _post(
            gateway.port, "/register", b"{", headers=["Content-Length: 500"]
        )
        assert _status_of(response) == 400

    @pytest.mark.parametrize(
        "payload",
        [
            [1, 2],
            {"host": "h"},
            {"port": 80},
            {"host": "h", "port": "x"},
            {"host": "h", "port": 80, "weight": 0},
        ],
    )
    def test_register_rejects_bad_records(self, gateway, payload):
        url = "http://127.0.0.1:%d" % gateway.port
        status, _doc = http_json("POST", url + "/register", payload)
        assert status == 400
        assert len(gateway.membership) == 0

    @pytest.mark.parametrize("path", ["/renew", "/deregister"])
    @pytest.mark.parametrize(
        "payload", [None, [1], {}, {"host": "h"}, {"host": "h", "port": "x"}]
    )
    def test_renew_deregister_reject_bad_payloads(self, gateway, path, payload):
        url = "http://127.0.0.1:%d" % gateway.port
        status, _doc = http_json("POST", url + path, payload)
        assert status == 400

    def test_result_proxy_requires_both_params(self, gateway):
        url = "http://127.0.0.1:%d" % gateway.port
        for query in ("", "?worker=http%3A%2F%2Fx", "?job=y"):
            status, doc = http_json("GET", url + "/result" + query)
            assert status == 400
            assert "worker" in doc["error"] and "job" in doc["error"]

    def test_cache_get_requires_key(self, gateway):
        url = "http://127.0.0.1:%d" % gateway.port
        status, doc = http_json("GET", url + "/cache/get")
        assert status == 400
        assert "key" in doc["error"]

    def test_cache_put_requires_key(self, gateway):
        url = "http://127.0.0.1:%d" % gateway.port
        for payload in (None, [1], {}, {"value": 3}):
            status, _doc = http_json("POST", url + "/cache/put", payload)
            assert status == 400

    def test_run_with_non_dict_envelope_is_400(self, gateway):
        url = "http://127.0.0.1:%d" % gateway.port
        status, doc = http_json("POST", url + "/run", "just a string")
        assert status == 400
        assert "envelope" in doc["error"]

    def test_gateway_still_serves_after_garbage(self, gateway):
        response = _post(
            gateway.port, "/run", b"ga<rb>age", headers=["Content-Length: 9"]
        )
        assert _status_of(response) == 400
        url = "http://127.0.0.1:%d" % gateway.port
        status, doc = http_json("GET", url + "/health")
        assert status == 200 and doc["ok"]
